(* The document-generation service: request in, response out, as fast as
   repeat traffic allows.

   Three content-hash-keyed LRU caches hold the artifacts that are
   expensive to rebuild per request — parsed templates, imported models,
   and Xquery.Engine.compile'd programs (the xq engine's dispatch core
   above all). One mutex guards all three: contention is negligible next
   to generation work, and the lock doubles as the happens-before edge
   that publishes a tree parsed by one domain to every other. Cached
   values are read-only by construction — the engines copy template
   nodes, never mutate them — so cross-domain sharing is safe. The one
   piece of node state written on the read path, the lazily built
   document-order numbering, is precomputed below before a tree enters
   the cache (and Node.renumber's atomic valid flag keeps even a lazy
   rebuild publication-safe), so queries over a shared tree never race.

   Batches fan out over Pool (work-stealing across OCaml 5 domains).
   Each request is error-isolated: parse failures, generation failures,
   blown deadlines, and stray exceptions all land in that request's
   response, never in its neighbours'.

   Requests are resource-governed. A request deadline is wired into the
   evaluator's own budget machinery (Xquery.Context.limits) so a runaway
   query is preempted mid-walk, not merely noticed at the next phase
   boundary; fuel / recursion-depth / node-allocation budgets from the
   config ride along in the same limits record. Failures get three
   layers of containment: declared-transient failures retry with
   exponential backoff, fast-evaluator faults degrade to one seed-
   evaluator re-run, and a template whose generation keeps failing is
   quarantined (content-hash circuit breaker) for a cooldown rather than
   allowed to burn budget on every batch. The Fault module injects all
   four failure modes deterministically for tests. *)

module Lru = Lru
module Pool = Pool
module Fault = Fault
module N = Xml_base.Node
module Spec = Docgen.Spec

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type template_source =
  | Template_xml of string (* parsed + whitespace-stripped, cached by content hash *)
  | Template_node of N.t (* pre-parsed; bypasses the cache *)

type model_source =
  | Model_xml of { metamodel : Awb.Metamodel.t; xml : string } (* imported, cached *)
  | Model_value of Awb.Model.t (* pre-built; bypasses the cache *)

type request = {
  id : string;
  template : template_source;
  model : model_source;
  engine : Docgen.engine;
  backend : Spec.query_backend option;
  deadline : float option; (* seconds from submission *)
  level : Spec.level; (* Full, or Skeleton under brownout *)
}

let request ?(engine = `Host) ?backend ?deadline ?(level = Spec.Full) ~id ~template
    ~model () =
  { id; template; model; engine; backend; deadline; level }

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type error =
  | Template_error of string
  | Model_error of string
  | Generation_failed of { code : string; message : string; location : string }
  | Resource_exhausted of { resource : Xquery.Errors.resource; message : string }
  | Deadline_exceeded of { elapsed_s : float; deadline_s : float }
  | Quarantined of { template : string; retry_after_s : float }
  | Internal_error of string

let error_to_string = function
  | Template_error m -> "template error: " ^ m
  | Model_error m -> "model error: " ^ m
  | Generation_failed { code; message; location } ->
    let code = if code = "" then "" else Printf.sprintf " [%s]" code in
    if location = "" then Printf.sprintf "generation failed%s: %s" code message
    else Printf.sprintf "generation failed%s at %s: %s" code location message
  | Resource_exhausted { resource; message } ->
    Printf.sprintf "%s: %s" (Xquery.Errors.resource_code resource) message
  | Deadline_exceeded { elapsed_s; deadline_s } ->
    Printf.sprintf "deadline exceeded: %.1f ms elapsed against a %.1f ms budget"
      (elapsed_s *. 1000.) (deadline_s *. 1000.)
  | Quarantined { template; retry_after_s } ->
    Printf.sprintf "template %s quarantined; retry in %.1f s" template retry_after_s
  | Internal_error m -> "internal error: " ^ m

type timings = {
  template_s : float;
  model_s : float;
  generate_s : float;
  serialize_s : float;
  total_s : float;
}

type output = {
  document : string;
  problems : string list;
  stats : Spec.stats;
  engine_used : Docgen.engine;
  timings : timings;
}

type response = { request_id : string; result : (output, error) result }

(* ------------------------------------------------------------------ *)
(* Configuration and state                                             *)
(* ------------------------------------------------------------------ *)

type config = {
  domains : int; (* default width of run_batch *)
  mode : Xquery.Engine.Exec_opts.mode;
      (* execution mode for XQuery-backed work: Fast (default) or Plan
         (compile-to-plan executor); Seed pins the reference algorithms.
         A fast-path fault still degrades the failing request to Seed. *)
  cache_capacity : int; (* entries per artifact cache; 0 disables caching *)
  default_deadline : float option; (* seconds; a per-request deadline wins *)
  fuel : int option; (* evaluator step budget per attempt *)
  max_depth : int option; (* user-function recursion depth *)
  max_nodes : int option; (* constructed-node budget per attempt *)
  retries : int; (* extra attempts for declared-transient failures *)
  backoff_s : float; (* base of the exponential retry backoff *)
  backoff_cap_s : float; (* ceiling of one backoff sleep, jitter included *)
  quarantine_after : int; (* consecutive failures that trip the breaker; 0 disables *)
  quarantine_cooldown_s : float; (* how long a tripped template stays out *)
  result_cache_cap : int;
      (* completed generations kept for stale-while-revalidate; 0 disables *)
  fault : Fault.config option; (* deterministic fault injection; None in production *)
}

let default_config =
  {
    domains = 1;
    mode = Xquery.Engine.Exec_opts.Fast;
    cache_capacity = 128;
    default_deadline = None;
    fuel = None;
    max_depth = None;
    max_nodes = None;
    retries = 2;
    backoff_s = 0.001;
    backoff_cap_s = 0.25;
    quarantine_after = 0;
    quarantine_cooldown_s = 30.;
    result_cache_cap = 0;
    fault = None;
  }

type counters = {
  requests : int;
  succeeded : int;
  failed : int;
  deadline_failures : int;
  resource_failures : int;
  retries : int;
  fast_fallbacks : int;
  quarantine_trips : int;
  quarantine_rejections : int;
  quarantine_releases : int;
  batches : int;
  steals : int;
  template_hits : int;
  template_misses : int;
  model_hits : int;
  model_misses : int;
  query_hits : int;
  query_misses : int;
  stylesheet_hits : int;
  stylesheet_misses : int;
  result_hits : int;
  result_misses : int;
  result_stores : int;
  plan_compiles : int;
  plan_hits : int;
  plan_execs : int;
  plan_parallel_fragments : int;
  evictions : int;
  opt_lets_eliminated : int;
  opt_constants_folded : int;
  opt_count_rewrites : int;
  opt_paths_hoisted : int;
  template_s : float;
  model_s : float;
  generate_s : float;
  serialize_s : float;
}

type phase_totals = {
  mutable acc_template_s : float;
  mutable acc_model_s : float;
  mutable acc_generate_s : float;
  mutable acc_serialize_s : float;
}

(* Per-template circuit-breaker state, keyed by template content hash.
   [streak] counts consecutive generation failures; once it reaches
   [quarantine_after] the template sits out until the monotonic instant
   [until]. All access is under the service mutex. *)
type breaker = { mutable streak : int; mutable until : float }

(* One stale-while-revalidate cache entry: a finished Full-level
   generation, with the monotonic instant it was stored and the last
   time a background refresh was claimed for it (so a storm of stale
   hits enqueues one refresh, not thousands). *)
type cached_result = {
  output : output;
  stored_ns : int;
  mutable refresh_claimed_ns : int;
}

type t = {
  config : config;
  mutex : Mutex.t;
  templates : N.t Lru.t;
  models : Awb.Model.t Lru.t;
  queries : Xquery.Engine.compiled Lru.t;
  stylesheets : Xslt.stylesheet Lru.t;
  results : cached_result Lru.t;
  mutable value_model_keys : (Awb.Model.t * string) list;
      (* identity keys for pre-built Model_value models (no content to
         hash); bounded — beyond the cap such requests are just not
         result-cached *)
  quarantine : (string, breaker) Hashtbl.t;
  inflight : (int, Xquery.Context.limits) Hashtbl.t;
      (* the limits record of every generation attempt currently running,
         keyed by a fresh token; lets [preempt_inflight] (the server's
         graceful drain) tighten deadlines on work already in progress *)
  mutable inflight_next : int;
  mutable preempt_ns : int;
      (* sticky preemption deadline, 0 = none. Once [preempt_inflight]
         has run, any attempt registered afterwards is tightened to this
         at registration — without it, an attempt racing the preempt
         sweep (popped from a queue before drain, registered after)
         would keep an unbounded deadline and stall the drain. *)
  mutable requests : int;
  mutable succeeded : int;
  mutable failed : int;
  mutable deadline_failures : int;
  mutable resource_failures : int;
  mutable retries : int;
  mutable fast_fallbacks : int;
  mutable quarantine_trips : int;
  mutable quarantine_rejections : int;
  mutable quarantine_releases : int;
  mutable result_hits : int;
  mutable result_misses : int;
  mutable result_stores : int;
  mutable plan_compiles : int;
  mutable plan_hits : int;
  mutable plan_execs : int;
  mutable plan_parallel_fragments : int;
  mutable batches : int;
  mutable steals : int;
  totals : phase_totals;
  opt_totals : Xquery.Optimizer.stats;
      (* optimizer pass hits, accumulated on query-cache misses: what the
         rewriter actually did to the queries this service compiled *)
}

let create ?(config = default_config) () =
  {
    config;
    mutex = Mutex.create ();
    templates = Lru.create ~capacity:config.cache_capacity;
    models = Lru.create ~capacity:config.cache_capacity;
    queries = Lru.create ~capacity:config.cache_capacity;
    stylesheets = Lru.create ~capacity:config.cache_capacity;
    results = Lru.create ~capacity:config.result_cache_cap;
    value_model_keys = [];
    quarantine = Hashtbl.create 16;
    inflight = Hashtbl.create 16;
    inflight_next = 0;
    preempt_ns = 0;
    requests = 0;
    succeeded = 0;
    failed = 0;
    deadline_failures = 0;
    resource_failures = 0;
    retries = 0;
    fast_fallbacks = 0;
    quarantine_trips = 0;
    quarantine_rejections = 0;
    quarantine_releases = 0;
    result_hits = 0;
    result_misses = 0;
    result_stores = 0;
    plan_compiles = 0;
    plan_hits = 0;
    plan_execs = 0;
    plan_parallel_fragments = 0;
    batches = 0;
    steals = 0;
    totals =
      { acc_template_s = 0.; acc_model_s = 0.; acc_generate_s = 0.; acc_serialize_s = 0. };
    opt_totals = Xquery.Optimizer.new_stats ();
  }

let config t = t.config

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Find-or-compute. The computation runs OUTSIDE the lock so a cold
   parse on one domain never serializes the others; the worst case is
   two domains computing the same artifact once, last add wins. *)
let cached t lru key compute =
  match with_lock t (fun () -> Lru.find lru key) with
  | Some v -> v
  | None ->
    let v = compute () in
    with_lock t (fun () -> Lru.add lru key v);
    v

let digest s = Digest.to_hex (Digest.string s)

(* ------------------------------------------------------------------ *)
(* Cached artifact access                                              *)
(* ------------------------------------------------------------------ *)

let template_of_source t = function
  | Template_node n -> n
  | Template_xml xml ->
    cached t t.templates ("tpl:" ^ digest xml) (fun () ->
        let tpl = Xml_base.Parser.strip_whitespace (Xml_base.Parser.parse_string xml) in
        (* Number the tree before it is published: every domain that
           queries the shared template then finds the document-order
           cache warm and the read path stays write-free. *)
        N.prepare_document_order tpl;
        tpl)

let model_of_source t = function
  | Model_value m -> m
  | Model_xml { metamodel; xml } ->
    cached t t.models
      (Printf.sprintf "model:%s:%s" (Awb.Metamodel.name metamodel) (digest xml))
      (fun () -> Awb.Xml_io.import_string metamodel xml)

(* Fold one freshly compiled program's optimizer stats into the service
   totals. Called from inside a [cached] compute, so no lock is held. *)
let record_opt_stats t (compiled : Xquery.Engine.compiled) =
  match compiled.Xquery.Engine.opt_stats with
  | None -> ()
  | Some (s : Xquery.Optimizer.stats) ->
    with_lock t (fun () ->
        let o = t.opt_totals in
        o.Xquery.Optimizer.lets_eliminated <-
          o.Xquery.Optimizer.lets_eliminated + s.Xquery.Optimizer.lets_eliminated;
        o.Xquery.Optimizer.traces_eliminated <-
          o.Xquery.Optimizer.traces_eliminated + s.Xquery.Optimizer.traces_eliminated;
        o.Xquery.Optimizer.constants_folded <-
          o.Xquery.Optimizer.constants_folded + s.Xquery.Optimizer.constants_folded;
        o.Xquery.Optimizer.count_cmp_rewrites <-
          o.Xquery.Optimizer.count_cmp_rewrites + s.Xquery.Optimizer.count_cmp_rewrites;
        o.Xquery.Optimizer.paths_hoisted <-
          o.Xquery.Optimizer.paths_hoisted + s.Xquery.Optimizer.paths_hoisted)

let compile_query t src =
  try
    Ok
      (cached t t.queries ("xq:" ^ digest src) (fun () ->
           let c = Xquery.Engine.compile src in
           record_opt_stats t c;
           c))
  with Xquery.Errors.Error _ as e -> Error (Printexc.to_string e)

(* The xq engine's dispatch core, compiled once and cached like any
   other query artifact. *)
let xq_core t =
  cached t t.queries
    ("xq:" ^ digest Docgen.Xq_engine.query_source)
    (fun () ->
      let c = Docgen.Xq_engine.compile () in
      record_opt_stats t c;
      c)

let clear_caches t =
  with_lock t (fun () ->
      Lru.clear t.templates;
      Lru.clear t.models;
      Lru.clear t.queries;
      Lru.clear t.stylesheets;
      Lru.clear t.results)

(* Zero-downtime reload: drop every compiled artifact and close every
   quarantine breaker, so the next request re-parses templates from
   their current sources with a clean failure history. The front end
   wires this to SIGHUP in single-process mode; sharded mode restarts
   backend processes instead, which is this plus a fresh heap. *)
let reload t =
  clear_caches t;
  with_lock t (fun () -> Hashtbl.reset t.quarantine)

(* Worker pool for the plan executor's data-parallel fragments: wired up
   only when the service owns more than one domain and the work runs in
   Plan mode. The executor decides per-fragment whether the loop is safe
   and big enough to split; each invocation here is one such fragment. *)
let plan_pool t ~mode =
  if t.config.domains > 1 && mode = Xquery.Engine.Exec_opts.Plan then
    Some
      (fun (tasks : (unit -> unit) array) ->
        with_lock t (fun () ->
            t.plan_parallel_fragments <- t.plan_parallel_fragments + 1);
        ignore (Pool.run ~domains:t.config.domains tasks))
  else None

(* Plan-cache accounting for one Plan-mode run of [compiled]: the plan is
   memoized on the compiled record, so "already lowered" is a cache hit
   in the same sense as the artifact LRUs. *)
let note_plan_run t compiled =
  with_lock t (fun () ->
      if Xquery.Engine.plan_cached compiled then t.plan_hits <- t.plan_hits + 1
      else t.plan_compiles <- t.plan_compiles + 1;
      t.plan_execs <- t.plan_execs + 1)

(* ------------------------------------------------------------------ *)
(* Stale-while-revalidate result cache                                 *)
(* ------------------------------------------------------------------ *)

(* A finished generation is identified by everything that determines its
   bytes: template content, model content, engine, and query backend.
   Deadlines and budgets shape *whether* a run finishes, not what a
   finished run produced, so they stay out of the key. *)

let max_value_model_keys = 32

let value_model_key t (m : Awb.Model.t) =
  (* Caller holds the lock. Physical identity: a pre-built model has no
     serialized content to hash, but the same value resubmitted is the
     same model. *)
  match List.find_opt (fun (m', _) -> m' == m) t.value_model_keys with
  | Some (_, k) -> Some k
  | None ->
    if List.length t.value_model_keys >= max_value_model_keys then None
    else begin
      let k = Printf.sprintf "mv:%d" (List.length t.value_model_keys) in
      t.value_model_keys <- (m, k) :: t.value_model_keys;
      Some k
    end

let result_key t (req : request) =
  (* Caller holds the lock (for the Model_value identity registry). *)
  if t.config.result_cache_cap <= 0 then None
  else
    match req.template with
    | Template_node _ -> None (* no content hash; mirrors the quarantine rule *)
    | Template_xml xml -> (
      let model_key =
        match req.model with
        | Model_xml { metamodel; xml } ->
          Some (Printf.sprintf "mx:%s:%s" (Awb.Metamodel.name metamodel) (digest xml))
        | Model_value m -> value_model_key t m
      in
      match model_key with
      | None -> None
      | Some mk ->
        let backend =
          match req.backend with
          | None -> "-"
          | Some Spec.Native_queries -> "native"
          | Some Spec.Xquery_queries -> "xquery"
        in
        Some
          (Printf.sprintf "res:%s:%s:%s:%s" (digest xml) mk
             (Docgen.engine_name req.engine) backend))

(* A stale hit: the cached output plus its age in seconds. Counted
   against the service's own hit/miss counters, not the LRU's. *)
let lookup_result t (req : request) =
  with_lock t (fun () ->
      match result_key t req with
      | None -> None
      | Some key -> (
        match Lru.find t.results key with
        | Some e ->
          t.result_hits <- t.result_hits + 1;
          Some (e.output, Clock.s_of_ns (Clock.now_ns () - e.stored_ns))
        | None ->
          t.result_misses <- t.result_misses + 1;
          None))

(* How long one background-refresh claim suppresses further claims for
   the same entry. A successful refresh replaces the entry (resetting
   the claim); a refresh that dies just lets the claim lapse. *)
let refresh_claim_cooldown_s = 10.

(* First-claim-wins dedup for background refreshes: true means the
   caller should enqueue a refresh for this request, false means one is
   already on its way (or there is nothing cached to refresh). *)
let claim_refresh t (req : request) =
  with_lock t (fun () ->
      match result_key t req with
      | None -> false
      | Some key -> (
        match Lru.find t.results key with
        | None -> false
        | Some e ->
          let now_ns = Clock.now_ns () in
          if now_ns - e.refresh_claimed_ns > Clock.ns_of_s refresh_claim_cooldown_s
          then begin
            e.refresh_claimed_ns <- now_ns;
            true
          end
          else false))

(* Only completed Full-level generations enter the cache: a skeleton is
   an emergency answer, never something to re-serve as "the" document. *)
let store_result t (req : request) (out : output) =
  if req.level = Spec.Full then
    with_lock t (fun () ->
        match result_key t req with
        | None -> ()
        | Some key ->
          t.result_stores <- t.result_stores + 1;
          Lru.add t.results key
            { output = out; stored_ns = Clock.now_ns (); refresh_claimed_ns = 0 })

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

exception Fail of error

(* Monotonic seconds. Deadlines measured against the wall clock jump
   with NTP slews; these never go backwards. *)
let now () = Clock.now ()

(* Engines never raise budget exceptions across their API: a trip comes
   back as a <generation-failed> document whose <code> child carries the
   resource:* taxonomy. Rebuild the structured error from it here. *)
let generation_failure ~t0 ~deadline (result : Spec.result) =
  if N.is_element result.Spec.document && N.name result.Spec.document = "generation-failed"
  then
    let get child =
      match N.child_element result.Spec.document child with
      | Some c -> N.string_value c
      | None -> ""
    in
    let code = get "code" in
    match Xquery.Errors.resource_of_code code with
    | Some Xquery.Errors.Deadline ->
      Some
        (Deadline_exceeded
           { elapsed_s = now () -. t0; deadline_s = Option.value deadline ~default:0. })
    | Some resource -> Some (Resource_exhausted { resource; message = get "message" })
    | None ->
      Some (Generation_failed { code; message = get "message"; location = get "location" })
  else None

(* ------------------------------------------------------------------ *)
(* Quarantine (per-template circuit breaker)                           *)
(* ------------------------------------------------------------------ *)

(* Quarantine is content-hash keyed, so it applies to Template_xml
   sources (the cached, repeat-traffic case the breaker exists for);
   pre-parsed Template_node requests bypass it like they bypass the
   cache. *)
let quarantine_key = function
  | Template_xml xml -> Some (digest xml)
  | Template_node _ -> None

(* Gate a request on its template's breaker. Raises [Fail (Quarantined ...)]
   while the cooldown runs; the first request after the cooldown closes
   the breaker again (counted as a release) and proceeds. *)
let quarantine_check t key =
  match key with
  | None -> ()
  | Some key ->
    if t.config.quarantine_after > 0 then
      with_lock t (fun () ->
          match Hashtbl.find_opt t.quarantine key with
          | Some b when b.streak >= t.config.quarantine_after ->
            let remaining = b.until -. now () in
            if remaining > 0. then begin
              t.quarantine_rejections <- t.quarantine_rejections + 1;
              raise (Fail (Quarantined { template = key; retry_after_s = remaining }))
            end
            else begin
              b.streak <- 0;
              t.quarantine_releases <- t.quarantine_releases + 1
            end
          | _ -> ())

(* Front-end pre-check: how long an XML template's breaker stays open,
   without running anything. Lets the HTTP server answer 429 at
   admission time, before the request ever costs a queue slot or a
   worker. A rejection here is counted like one from the normal path. *)
let quarantine_remaining t ~template_xml =
  if t.config.quarantine_after <= 0 then None
  else
    let key = digest template_xml in
    with_lock t (fun () ->
        match Hashtbl.find_opt t.quarantine key with
        | Some b when b.streak >= t.config.quarantine_after ->
          let remaining = b.until -. now () in
          if remaining > 0. then begin
            t.quarantine_rejections <- t.quarantine_rejections + 1;
            Some remaining
          end
          else None
        | _ -> None)

(* Generation-phase failures advance the breaker; a success closes it.
   Input-side failures (bad template XML, bad model) don't count — they
   never reach generation, so they say nothing about the template's
   behaviour under budget. *)
let quarantine_note t key result =
  match key with
  | None -> ()
  | Some key ->
    if t.config.quarantine_after > 0 then
      with_lock t (fun () ->
          let counts =
            match result with
            | Ok _ | Error (Template_error _ | Model_error _ | Quarantined _) -> false
            | Error
                ( Generation_failed _ | Resource_exhausted _ | Deadline_exceeded _
                | Internal_error _ ) ->
              true
          in
          match (Hashtbl.find_opt t.quarantine key, counts, result) with
          | None, false, _ -> ()
          | Some b, false, Ok _ -> b.streak <- 0
          | Some _, false, _ -> ()
          | entry, true, _ ->
            let b =
              match entry with
              | Some b -> b
              | None ->
                let b = { streak = 0; until = 0. } in
                Hashtbl.replace t.quarantine key b;
                b
            in
            b.streak <- b.streak + 1;
            if b.streak = t.config.quarantine_after then begin
              b.until <- now () +. t.config.quarantine_cooldown_s;
              t.quarantine_trips <- t.quarantine_trips + 1
            end)

(* One request, start-to-finish, on whichever domain picked it up. [t0]
   is the (monotonic) submission time the deadline counts from. The
   deadline is enforced twice over: checks at every phase boundary here,
   and — the part that matters for runaway queries — the same absolute
   instant wired into the evaluator's own limits, so generation is
   preempted mid-walk by the amortized budget check. *)
let execute t ~t0 (req : request) : response * timings =
  let deadline =
    match req.deadline with Some _ as d -> d | None -> t.config.default_deadline
  in
  let check_deadline () =
    match deadline with
    | Some d ->
      let elapsed_s = now () -. t0 in
      if elapsed_s > d then raise (Fail (Deadline_exceeded { elapsed_s; deadline_s = d }))
    | None -> ()
  in
  (* Fault-injection selections: pure functions of (seed, request id),
     fixed before the attempt loop so a replay is bit-for-bit identical
     no matter which domain runs the request. *)
  let inj kind =
    match t.config.fault with
    | Some f -> Fault.fires f kind ~key:req.id ~attempt:0
    | None -> false
  in
  let inj_deadline = inj Fault.Deadline
  and inj_fuel = inj Fault.Fuel
  and inj_transient = inj Fault.Transient
  and inj_fast = inj Fault.Fast_path in
  let transient_attempts =
    match t.config.fault with Some f -> f.Fault.transient_attempts | None -> 0
  in
  (* Fresh budgets per attempt — a retry must not inherit the fuel its
     predecessor burned. The deadline stays absolute across attempts:
     the caller's patience does not reset with ours. Always a concrete
     record (unlimited fields when unconfigured): every attempt is
     registered in the in-flight table so [preempt_inflight] can reach
     it, budgets or not. *)
  let limits_for () =
    let deadline_ns =
      if inj_deadline then Some (Clock.now_ns ()) (* already behind us *)
      else Option.map (fun d -> int_of_float ((t0 +. d) *. 1e9)) deadline
    in
    let fuel = if inj_fuel then Some 64 else t.config.fuel in
    Xquery.Context.make_limits ?fuel ?max_depth:t.config.max_depth
      ?max_nodes:t.config.max_nodes ?deadline_ns ()
  in
  let qkey = quarantine_key req.template in
  let tpl_s = ref 0. and model_s = ref 0. and gen_s = ref 0. and ser_s = ref 0. in
  let timed cell mk_error f =
    check_deadline ();
    let s = now () in
    let v =
      try f ()
      with
      | Fail _ as e -> raise e
      | Xml_base.Parser.Parse_error { line; col; message } ->
        raise (Fail (mk_error (Printf.sprintf "line %d col %d: %s" line col message)))
      | Failure m | Invalid_argument m -> raise (Fail (mk_error m))
    in
    cell := !cell +. (now () -. s);
    v
  in
  let started = now () in
  let result =
    try
      quarantine_check t qkey;
      let template =
        timed tpl_s (fun m -> Template_error m) (fun () -> template_of_source t req.template)
      in
      let model =
        timed model_s (fun m -> Model_error m) (fun () -> model_of_source t req.model)
      in
      let gen =
        timed gen_s
          (fun m -> Generation_failed { code = ""; message = m; location = "" })
          (fun () ->
            let run_once ~fast_eval =
              let limits = limits_for () in
              let token =
                with_lock t (fun () ->
                    if
                      t.preempt_ns <> 0
                      && limits.Xquery.Context.deadline_ns > t.preempt_ns
                    then limits.Xquery.Context.deadline_ns <- t.preempt_ns;
                    let id = t.inflight_next in
                    t.inflight_next <- id + 1;
                    Hashtbl.replace t.inflight id limits;
                    id)
              in
              (* The seed re-run pins Seed; otherwise the config mode
                 decides (Fast by default, Plan for the compiled
                 executor). *)
              let mode =
                match fast_eval with
                | Some false -> Xquery.Engine.Exec_opts.Seed
                | Some true -> Xquery.Engine.Exec_opts.Fast
                | None -> t.config.mode
              in
              let level =
                match req.level with
                | Spec.Full -> Xquery.Engine.Exec_opts.Full
                | Spec.Skeleton -> Xquery.Engine.Exec_opts.Skeleton
              in
              let opts =
                Xquery.Engine.Exec_opts.make ~mode ~limits ~level
                  ?pool:(plan_pool t ~mode) ()
              in
              Fun.protect
                ~finally:(fun () -> with_lock t (fun () -> Hashtbl.remove t.inflight token))
                (fun () ->
                  match req.engine with
                  | `Xq ->
                    let core = xq_core t in
                    if mode = Xquery.Engine.Exec_opts.Plan then note_plan_run t core;
                    Docgen.Xq_engine.generate_spec ?backend:req.backend ~compiled:core
                      ~opts model ~template
                  | (`Host | `Functional) as engine ->
                    Docgen.run ?backend:req.backend ~engine ~opts model ~template)
            in
            (* The attempt loop: transient failures retry with
               exponential backoff (bounded by config.retries); a fast-
               evaluator fault gets exactly one re-run on the seed
               evaluator. Budget trips come back as documents, not
               exceptions, so they fall straight through. *)
            let rec attempt n ~on_seed =
              check_deadline ();
              match
                if inj_transient && n < transient_attempts then
                  raise (Fault.Transient "injected transient generation failure");
                if inj_fast && not on_seed then
                  raise (Fault.Fast_path_fault "injected fast-path fault");
                run_once ~fast_eval:(if on_seed then Some false else None)
              with
              | result -> result
              | exception (Fail _ as e) -> raise e
              | exception Xquery.Errors.Error { code; message } ->
                raise (Fail (Generation_failed { code; message; location = "" }))
              | exception Fault.Transient _ when n < t.config.retries ->
                with_lock t (fun () -> t.retries <- t.retries + 1);
                (* Capped exponential backoff with decorrelated jitter.
                   Pure exponential backoff synchronizes: every request
                   that failed in the same burst retries at the same
                   instant and the herd thunders again. The jitter draw
                   is a pure function of (fault seed, request id,
                   attempt), so different requests desynchronize while a
                   seeded governance test still replays byte-for-byte. *)
                let ceiling = Float.min t.config.backoff_cap_s
                    (t.config.backoff_s *. (2. ** float_of_int n))
                in
                let seed =
                  match t.config.fault with Some f -> f.Fault.seed | None -> 0
                in
                let u = Fault.jitter ~seed ~key:req.id ~attempt:n in
                Unix.sleepf (ceiling *. (0.5 +. (0.5 *. u)));
                attempt (n + 1) ~on_seed
              | exception Fault.Transient msg ->
                raise
                  (Fail
                     (Generation_failed
                        { code = "transient"; message = msg; location = "" }))
              | exception _ when not on_seed ->
                (* Graceful degradation: an internal fault while the
                   fast evaluator is eligible gets one re-run pinned to
                   the seed evaluator before the request is failed. *)
                with_lock t (fun () -> t.fast_fallbacks <- t.fast_fallbacks + 1);
                attempt n ~on_seed:true
              | exception Fault.Fast_path_fault msg -> raise (Fail (Internal_error msg))
            in
            attempt 0 ~on_seed:false)
      in
      match generation_failure ~t0 ~deadline gen with
      | Some err -> Error err
      | None ->
        let document =
          timed ser_s
            (fun m -> Internal_error m)
            (fun () -> Xml_base.Serialize.to_string gen.Spec.document)
        in
        (* A deadline blown during serialization still counts. *)
        check_deadline ();
        Ok
          {
            document;
            problems = gen.Spec.problems;
            stats = gen.Spec.stats;
            engine_used = req.engine;
            timings =
              {
                template_s = !tpl_s;
                model_s = !model_s;
                generate_s = !gen_s;
                serialize_s = !ser_s;
                total_s = now () -. started;
              };
          }
    with
    | Fail e -> Error e
    | e -> Error (Internal_error (Printexc.to_string e))
  in
  quarantine_note t qkey result;
  (match result with Ok out -> store_result t req out | Error _ -> ());
  let timings =
    {
      template_s = !tpl_s;
      model_s = !model_s;
      generate_s = !gen_s;
      serialize_s = !ser_s;
      total_s = now () -. started;
    }
  in
  ({ request_id = req.id; result }, timings)

(* Fold one finished request into the service counters; caller holds no
   lock. *)
let record t (responses : (response * timings) list) =
  with_lock t (fun () ->
      List.iter
        (fun (resp, (tm : timings)) ->
          t.requests <- t.requests + 1;
          (match resp.result with
          | Ok _ -> t.succeeded <- t.succeeded + 1
          | Error (Deadline_exceeded _) ->
            t.failed <- t.failed + 1;
            t.deadline_failures <- t.deadline_failures + 1
          | Error (Resource_exhausted _) ->
            t.failed <- t.failed + 1;
            t.resource_failures <- t.resource_failures + 1
          | Error _ -> t.failed <- t.failed + 1);
          t.totals.acc_template_s <- t.totals.acc_template_s +. tm.template_s;
          t.totals.acc_model_s <- t.totals.acc_model_s +. tm.model_s;
          t.totals.acc_generate_s <- t.totals.acc_generate_s +. tm.generate_s;
          t.totals.acc_serialize_s <- t.totals.acc_serialize_s +. tm.serialize_s)
        responses)

let run t req =
  let pair = execute t ~t0:(now ()) req in
  record t [ pair ];
  fst pair

let run_batch ?domains t (reqs : request list) : response list =
  let domains =
    match domains with Some d -> max 1 d | None -> max 1 t.config.domains
  in
  let t0 = now () in
  let tasks = Array.of_list (List.map (fun r () -> execute t ~t0 r) reqs) in
  let results, pstats = Pool.run ~domains tasks in
  with_lock t (fun () ->
      t.batches <- t.batches + 1;
      t.steals <- t.steals + pstats.Pool.steals);
  let ids = Array.of_list (List.map (fun r -> r.id) reqs) in
  let pairs =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Ok pair -> pair
           | Error e ->
             (* Pool already isolates task exceptions, and execute never
                raises; belt and braces. *)
             ( { request_id = ids.(i); result = Error (Internal_error (Printexc.to_string e)) },
               {
                 template_s = 0.;
                 model_s = 0.;
                 generate_s = 0.;
                 serialize_s = 0.;
                 total_s = 0.;
               } ))
         results)
  in
  record t pairs;
  List.map fst pairs

(* ------------------------------------------------------------------ *)
(* Bare XQuery execution (the shell's path into the service)           *)
(* ------------------------------------------------------------------ *)

(* One-shot XQuery execution with the same machinery document requests
   get: compiled-query cache, resource governance with in-flight
   registration, per-query quarantine, and one seed-evaluator re-run on
   an internal fault. *)
let run_query t ?(compat = Xquery.Context.default_compat) ?(typed_mode = false)
    ?(optimize = true) ?context_item ?(vars = []) ?mode ?doc_resolver src :
    (Xquery.Value.sequence, error) result =
  let mode = Option.value mode ~default:t.config.mode in
  let t0 = now () in
  let qkey = Some ("q:" ^ digest src) in
  let deadline = t.config.default_deadline in
  let classify = function
    | Fail e -> e
    | Xquery.Errors.Error { code; message } ->
      Generation_failed { code; message; location = "" }
    | Xquery.Errors.Resource_exhausted { resource = Xquery.Errors.Deadline; _ } ->
      Deadline_exceeded
        { elapsed_s = now () -. t0; deadline_s = Option.value deadline ~default:0. }
    | Xquery.Errors.Resource_exhausted { resource; limit; used } ->
      Resource_exhausted
        { resource; message = Xquery.Errors.resource_message resource ~limit ~used }
    | e -> Internal_error (Printexc.to_string e)
  in
  let deterministic = function
    | Fail _ | Xquery.Errors.Error _ | Xquery.Errors.Resource_exhausted _ -> true
    | _ -> false
  in
  let result =
    try
      quarantine_check t qkey;
      let compiled =
        (* The cache key carries every flag that changes what [compile]
           produces, so a galax-compat program never answers a
           default-compat request. *)
        let key =
          Printf.sprintf "xq:%d:%b:%b:%s" (Hashtbl.hash compat) typed_mode optimize
            (digest src)
        in
        cached t t.queries key (fun () ->
            let c = Xquery.Engine.compile ~compat ~typed_mode ~optimize src in
            record_opt_stats t c;
            c)
      in
      let run_attempt mode =
        let limits =
          Xquery.Context.make_limits ?fuel:t.config.fuel ?max_depth:t.config.max_depth
            ?max_nodes:t.config.max_nodes
            ?deadline_ns:
              (Option.map (fun d -> int_of_float ((t0 +. d) *. 1e9)) deadline)
            ()
        in
        let token =
          with_lock t (fun () ->
              if t.preempt_ns <> 0 && limits.Xquery.Context.deadline_ns > t.preempt_ns
              then limits.Xquery.Context.deadline_ns <- t.preempt_ns;
              let id = t.inflight_next in
              t.inflight_next <- id + 1;
              Hashtbl.replace t.inflight id limits;
              id)
        in
        Fun.protect
          ~finally:(fun () -> with_lock t (fun () -> Hashtbl.remove t.inflight token))
          (fun () ->
            if mode = Xquery.Engine.Exec_opts.Plan then note_plan_run t compiled;
            let opts =
              Xquery.Engine.Exec_opts.make ~mode ~limits ?context_item ~vars
                ?doc_resolver ?pool:(plan_pool t ~mode) ()
            in
            Xquery.Engine.run ~opts compiled)
      in
      match run_attempt mode with
      | v -> Ok v
      | exception e when deterministic e -> Error (classify e)
      | exception _ when mode <> Xquery.Engine.Exec_opts.Seed ->
        (* Same degradation as document generation: one re-run pinned to
           the seed evaluator before the query is failed. *)
        with_lock t (fun () -> t.fast_fallbacks <- t.fast_fallbacks + 1);
        (match run_attempt Xquery.Engine.Exec_opts.Seed with
        | v -> Ok v
        | exception e -> Error (classify e))
      | exception e -> Error (classify e)
    with
    | Fail e -> Error e
    | e -> Error (classify e)
  in
  quarantine_note t qkey result;
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      match result with
      | Ok _ -> t.succeeded <- t.succeeded + 1
      | Error (Deadline_exceeded _) ->
        t.failed <- t.failed + 1;
        t.deadline_failures <- t.deadline_failures + 1
      | Error (Resource_exhausted _) ->
        t.failed <- t.failed + 1;
        t.resource_failures <- t.resource_failures + 1
      | Error _ -> t.failed <- t.failed + 1);
  result

(* ------------------------------------------------------------------ *)
(* XSLT stylesheets                                                    *)
(* ------------------------------------------------------------------ *)

let compile_stylesheet t xml =
  try
    Ok
      (cached t t.stylesheets ("xsl:" ^ digest xml) (fun () ->
           Xslt.compile (Xml_base.Parser.parse_string xml)))
  with
  | Xslt.Error m -> Error (Template_error m)
  | Xml_base.Parser.Parse_error { line; col; message } ->
    Error (Template_error (Printf.sprintf "line %d col %d: %s" line col message))

(* Apply a stylesheet (compiled through the cache) to a source tree.
   Quarantine is keyed by stylesheet content hash, and the configured
   default deadline is enforced coarsely — checked after the transform —
   since the XSLT engine has no mid-walk budget hook of its own. *)
let apply_stylesheet t ~stylesheet_xml source =
  let qkey = Some ("xsl:" ^ digest stylesheet_xml) in
  let t0 = now () in
  let result =
    try
      quarantine_check t qkey;
      match compile_stylesheet t stylesheet_xml with
      | Error e -> Error e
      | Ok sheet -> (
        match Xslt.apply sheet source with
        | nodes -> Ok nodes
        | exception Xslt.Error m ->
          Error (Generation_failed { code = ""; message = m; location = "" })
        | exception Xquery.Errors.Error { code; message } ->
          Error (Generation_failed { code; message; location = "" }))
    with Fail e -> Error e
  in
  let result =
    match (result, t.config.default_deadline) with
    | Ok _, Some d when now () -. t0 > d ->
      Error (Deadline_exceeded { elapsed_s = now () -. t0; deadline_s = d })
    | r, _ -> r
  in
  quarantine_note t qkey result;
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      match result with
      | Ok _ -> t.succeeded <- t.succeeded + 1
      | Error (Deadline_exceeded _) ->
        t.failed <- t.failed + 1;
        t.deadline_failures <- t.deadline_failures + 1
      | Error _ -> t.failed <- t.failed + 1);
  result

(* ------------------------------------------------------------------ *)
(* Drain hook                                                          *)
(* ------------------------------------------------------------------ *)

(* Tighten every in-flight generation's deadline to at most
   [deadline_ns]. The write is a plain int store into a limits record a
   worker domain is reading: the evaluator's slow check (every ~1k
   steps) picks it up, so the evaluation trips resource:deadline within
   one check interval and surfaces as a structured Deadline_exceeded.
   This is the server's graceful-drain abort path; it never cancels
   anything outright, it only moves the moment the evaluator's own
   governance preempts the work. *)
let preempt_inflight t ~deadline_ns =
  with_lock t (fun () ->
      (* Sticky: attempts that register after this call (they may already
         have been dequeued by a server worker) are tightened at
         registration, closing the race between the sweep below and a
         concurrent [run]. Repeated calls keep the tightest deadline. *)
      t.preempt_ns <-
        (if t.preempt_ns = 0 then deadline_ns else min t.preempt_ns deadline_ns);
      Hashtbl.fold
        (fun _ (l : Xquery.Context.limits) n ->
          if l.Xquery.Context.deadline_ns > deadline_ns then begin
            l.Xquery.Context.deadline_ns <- deadline_ns;
            n + 1
          end
          else n)
        t.inflight 0)

let inflight_count t = with_lock t (fun () -> Hashtbl.length t.inflight)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counters t : counters =
  with_lock t (fun () ->
      {
        requests = t.requests;
        succeeded = t.succeeded;
        failed = t.failed;
        deadline_failures = t.deadline_failures;
        resource_failures = t.resource_failures;
        retries = t.retries;
        fast_fallbacks = t.fast_fallbacks;
        quarantine_trips = t.quarantine_trips;
        quarantine_rejections = t.quarantine_rejections;
        quarantine_releases = t.quarantine_releases;
        batches = t.batches;
        steals = t.steals;
        template_hits = Lru.hits t.templates;
        template_misses = Lru.misses t.templates;
        model_hits = Lru.hits t.models;
        model_misses = Lru.misses t.models;
        query_hits = Lru.hits t.queries;
        query_misses = Lru.misses t.queries;
        stylesheet_hits = Lru.hits t.stylesheets;
        stylesheet_misses = Lru.misses t.stylesheets;
        result_hits = t.result_hits;
        result_misses = t.result_misses;
        result_stores = t.result_stores;
        plan_compiles = t.plan_compiles;
        plan_hits = t.plan_hits;
        plan_execs = t.plan_execs;
        plan_parallel_fragments = t.plan_parallel_fragments;
        evictions =
          Lru.evictions t.templates + Lru.evictions t.models + Lru.evictions t.queries
          + Lru.evictions t.stylesheets + Lru.evictions t.results;
        opt_lets_eliminated = t.opt_totals.Xquery.Optimizer.lets_eliminated;
        opt_constants_folded = t.opt_totals.Xquery.Optimizer.constants_folded;
        opt_count_rewrites = t.opt_totals.Xquery.Optimizer.count_cmp_rewrites;
        opt_paths_hoisted = t.opt_totals.Xquery.Optimizer.paths_hoisted;
        template_s = t.totals.acc_template_s;
        model_s = t.totals.acc_model_s;
        generate_s = t.totals.acc_generate_s;
        serialize_s = t.totals.acc_serialize_s;
      })

let reset_counters t =
  with_lock t (fun () ->
      t.requests <- 0;
      t.succeeded <- 0;
      t.failed <- 0;
      t.deadline_failures <- 0;
      t.resource_failures <- 0;
      t.retries <- 0;
      t.fast_fallbacks <- 0;
      t.quarantine_trips <- 0;
      t.quarantine_rejections <- 0;
      t.quarantine_releases <- 0;
      t.result_hits <- 0;
      t.result_misses <- 0;
      t.result_stores <- 0;
      t.plan_compiles <- 0;
      t.plan_hits <- 0;
      t.plan_execs <- 0;
      t.plan_parallel_fragments <- 0;
      t.batches <- 0;
      t.steals <- 0;
      Lru.reset_counters t.templates;
      Lru.reset_counters t.models;
      Lru.reset_counters t.queries;
      Lru.reset_counters t.stylesheets;
      Lru.reset_counters t.results;
      t.opt_totals.Xquery.Optimizer.lets_eliminated <- 0;
      t.opt_totals.Xquery.Optimizer.traces_eliminated <- 0;
      t.opt_totals.Xquery.Optimizer.constants_folded <- 0;
      t.opt_totals.Xquery.Optimizer.count_cmp_rewrites <- 0;
      t.opt_totals.Xquery.Optimizer.paths_hoisted <- 0;
      t.totals.acc_template_s <- 0.;
      t.totals.acc_model_s <- 0.;
      t.totals.acc_generate_s <- 0.;
      t.totals.acc_serialize_s <- 0.)

(* Prometheus metric names admit only [a-zA-Z0-9_:]; anything else in a
   name would corrupt the whole exposition for every scraper. Applied to
   every name emitted below, so a future counter with a hostile name
   degrades to underscores instead of breaking /metrics. *)
let sanitize_metric_name name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
    name

(* Prometheus text exposition (version 0.0.4): "# HELP", "# TYPE", then
   one sample per line. Shared by the HTTP server's /metrics endpoint
   and awbserve --metrics; test_server scrapes and re-parses every line
   it emits. *)
let counters_to_prometheus ?(labels = []) (c : counters) =
  let b = Buffer.create 4096 in
  (* Labels (e.g. shard="2" on a sharded backend's exposition) go on the
     sample line only — HELP/TYPE stay label-free so a front end can
     concatenate several shards' expositions and dedup the metadata. *)
  let label_suffix =
    match labels with
    | [] -> ""
    | kvs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_metric_name k) v)
             kvs)
      ^ "}"
  in
  let sample ?(typ = "counter") name help value =
    let name = sanitize_metric_name name in
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    Buffer.add_string b (Printf.sprintf "%s%s %s\n" name label_suffix value)
  in
  let int_sample name help v = sample name help (string_of_int v) in
  let seconds name help v = sample name help (Printf.sprintf "%.6f" v) in
  int_sample "lopsided_service_requests_total" "Requests the service has finished." c.requests;
  int_sample "lopsided_service_succeeded_total" "Requests that produced a document." c.succeeded;
  int_sample "lopsided_service_failed_total" "Requests that ended in an error." c.failed;
  int_sample "lopsided_service_deadline_failures_total"
    "Requests preempted by their deadline." c.deadline_failures;
  int_sample "lopsided_service_resource_failures_total"
    "Requests stopped by a non-deadline resource budget." c.resource_failures;
  int_sample "lopsided_service_retries_total" "Transient-failure retries performed."
    c.retries;
  int_sample "lopsided_service_fast_fallbacks_total"
    "Fast-evaluator faults degraded to the seed evaluator." c.fast_fallbacks;
  int_sample "lopsided_service_quarantine_trips_total" "Template circuit breakers opened."
    c.quarantine_trips;
  int_sample "lopsided_service_quarantine_rejections_total"
    "Requests refused while a breaker was open." c.quarantine_rejections;
  int_sample "lopsided_service_quarantine_releases_total"
    "Breakers closed again after cooldown." c.quarantine_releases;
  int_sample "lopsided_service_batches_total" "Batches served." c.batches;
  int_sample "lopsided_service_steals_total" "Work-stealing steals across batches." c.steals;
  int_sample "lopsided_service_template_cache_hits_total" "Template cache hits."
    c.template_hits;
  int_sample "lopsided_service_template_cache_misses_total" "Template cache misses."
    c.template_misses;
  int_sample "lopsided_service_model_cache_hits_total" "Model cache hits." c.model_hits;
  int_sample "lopsided_service_model_cache_misses_total" "Model cache misses."
    c.model_misses;
  int_sample "lopsided_service_query_cache_hits_total" "Compiled-query cache hits."
    c.query_hits;
  int_sample "lopsided_service_query_cache_misses_total" "Compiled-query cache misses."
    c.query_misses;
  int_sample "lopsided_service_stylesheet_cache_hits_total" "Compiled-stylesheet cache hits."
    c.stylesheet_hits;
  int_sample "lopsided_service_stylesheet_cache_misses_total"
    "Compiled-stylesheet cache misses." c.stylesheet_misses;
  int_sample "lopsided_service_plan_compiles_total"
    "Physical plans lowered (plan-cache misses)." c.plan_compiles;
  int_sample "lopsided_service_plan_hits_total"
    "Plan-mode runs served by an already-lowered plan." c.plan_hits;
  int_sample "lopsided_service_plan_execs_total" "Plan-executor runs started." c.plan_execs;
  int_sample "lopsided_service_plan_parallel_fragments_total"
    "Plan loop fragments fanned across domains." c.plan_parallel_fragments;
  int_sample "lopsided_service_result_cache_hits_total"
    "Stale-while-revalidate result cache hits." c.result_hits;
  int_sample "lopsided_service_result_cache_misses_total"
    "Stale-while-revalidate result cache misses." c.result_misses;
  int_sample "lopsided_service_result_cache_stores_total"
    "Completed generations stored in the result cache." c.result_stores;
  int_sample "lopsided_service_cache_evictions_total" "Evictions summed over the caches."
    c.evictions;
  int_sample "lopsided_service_opt_lets_eliminated_total" "Optimizer: lets eliminated."
    c.opt_lets_eliminated;
  int_sample "lopsided_service_opt_constants_folded_total" "Optimizer: constants folded."
    c.opt_constants_folded;
  int_sample "lopsided_service_opt_count_rewrites_total"
    "Optimizer: count comparisons rewritten." c.opt_count_rewrites;
  int_sample "lopsided_service_opt_paths_hoisted_total"
    "Optimizer: loop-invariant paths hoisted." c.opt_paths_hoisted;
  seconds "lopsided_service_template_seconds_total" "Time spent parsing templates."
    c.template_s;
  seconds "lopsided_service_model_seconds_total" "Time spent importing models." c.model_s;
  seconds "lopsided_service_generate_seconds_total" "Time spent generating documents."
    c.generate_s;
  seconds "lopsided_service_serialize_seconds_total" "Time spent serializing documents."
    c.serialize_s;
  Buffer.contents b

let pp_counters fmt (c : counters) =
  Format.fprintf fmt
    "@[<v>requests: %d (%d ok, %d failed, %d deadline, %d resource)@,\
     resilience: %d retries, %d fast fallbacks, quarantine %d trips / %d rejections / %d \
     releases@,\
     batches: %d (steals: %d)@,\
     template cache: %d hits / %d misses@,\
     model cache: %d hits / %d misses@,\
     query cache: %d hits / %d misses@,\
     stylesheet cache: %d hits / %d misses@,\
     result cache: %d hits / %d misses / %d stores@,\
     plans: %d compiled, %d cache hits, %d runs, %d parallel fragments@,\
     evictions: %d@,\
     optimizer: %d lets eliminated, %d constants folded, %d count rewrites, %d paths \
     hoisted@,\
     phase totals: template %.3f ms, model %.3f ms, generate %.3f ms, serialize %.3f ms@]"
    c.requests c.succeeded c.failed c.deadline_failures c.resource_failures c.retries
    c.fast_fallbacks c.quarantine_trips c.quarantine_rejections c.quarantine_releases
    c.batches c.steals c.template_hits
    c.template_misses c.model_hits c.model_misses c.query_hits c.query_misses
    c.stylesheet_hits c.stylesheet_misses
    c.result_hits c.result_misses c.result_stores
    c.plan_compiles c.plan_hits c.plan_execs c.plan_parallel_fragments c.evictions
    c.opt_lets_eliminated c.opt_constants_folded c.opt_count_rewrites c.opt_paths_hoisted
    (c.template_s *. 1000.) (c.model_s *. 1000.) (c.generate_s *. 1000.)
    (c.serialize_s *. 1000.)
