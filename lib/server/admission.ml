(* The bounded queue between the acceptor and the worker domains.

   Plain mutex + condition variable: pushes are non-blocking (a full
   queue is the caller's cue to shed), pops block. Closing wakes every
   blocked popper; poppers drain the remaining items before seeing
   None, so close alone never drops accepted work — drain uses [flush]
   first when it wants the queued-but-unstarted requests back to answer
   them 503. *)

type 'a t = {
  capacity : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  mutable is_closed : bool;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    is_closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t x =
  with_lock t (fun () ->
      if t.is_closed || Queue.length t.items >= t.capacity then `Shed
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        `Accepted
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.is_closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let flush t =
  with_lock t (fun () ->
      let out = List.of_seq (Queue.to_seq t.items) in
      Queue.clear t.items;
      out)

let depth t = with_lock t (fun () -> Queue.length t.items)
let closed t = with_lock t (fun () -> t.is_closed)
