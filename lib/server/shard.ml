(* Horizontal sharding: one front process, N backend worker processes.

   The front consistent-hash routes each generate body (template +
   model content — exactly what the Service layer's content-hash caches
   key on) to a backend over a Unix-domain socket, so every shard's
   template/model/plan/result caches stay warm on its slice of the key
   space. Process boundaries, not threads: a backend that dies takes
   only its own caches with it, the supervisor respawns it, and the
   router fails the in-flight keys over to ring successors meanwhile.

   Backends are spawned by fork+exec of the host binary itself
   ([Sys.executable_name] with a [--shard-backend] argv marker and the
   spec in an environment variable) — never by fork alone, which is not
   survivable from a multi-domain, multi-thread OCaml front process.
   Any binary that calls {!maybe_run_backend} first thing in main can
   host a backend, so the server, the tests, and the bench all spawn
   clusters without knowing each other's paths.

   Wire protocol: Frame's length-prefixed, CRC32-trailed binary frames
   (see frame.ml for the framing itself), one per message:

     payload  = op byte, op-specific fields
     'P' ping     -> 'P'
     'M' metrics  -> 'M' + prometheus text (shard-labeled)
     'D' drain    -> 'D' ack; backend finishes in-flight frames and exits 0
     'G' generate = u8 level, u32 deadline-ms (0 = none),
                    lp id, lp engine, lp body
               -> 'G' + u16 status, u16 nheaders, (lp key, lp value)*, lp body
     'N' nack     <- the peer's frame arrived with a bad CRC; carries a
                     reason. Answered in place of desyncing the stream.

   where lp s = u32 length + bytes. Strings cross the boundary verbatim;
   there is nothing to escape and nothing to re-parse.

   Resilience, front side: per-shard circuit breakers (Breaker) gate
   routing before the ring walk, a deterministic chaos plane (Chaos)
   can be interposed on data-plane frames, and optionally a hedge fires
   the in-flight generate at the ring successor once the primary
   overstays the p95-latency estimate. *)

let spec_env = "AWBSERVE_SHARD_SPEC"
let backend_flag = "--shard-backend"

exception Protocol_error = Frame.Protocol_error

let perr = Frame.perr
let add_u8 = Frame.add_u8
let add_u16 = Frame.add_u16
let add_u32 = Frame.add_u32
let add_lp = Frame.add_lp
let get_u8 = Frame.get_u8
let get_u16 = Frame.get_u16
let get_u32 = Frame.get_u32
let get_lp = Frame.get_lp
let send_frame = Frame.send_frame
let recv_frame = Frame.recv_frame

(* ------------------------------------------------------------------ *)
(* Generate request / response payloads                                *)
(* ------------------------------------------------------------------ *)

let level_code = function Docgen.Spec.Full -> 0 | Docgen.Spec.Skeleton -> 1
let level_of_code = function 1 -> Docgen.Spec.Skeleton | _ -> Docgen.Spec.Full

let encode_generate ~id ~engine ~level ~deadline_ms ~body =
  let b = Buffer.create (String.length body + 64) in
  Buffer.add_char b 'G';
  add_u8 b (level_code level);
  add_u32 b deadline_ms;
  add_lp b id;
  add_lp b engine;
  add_lp b body;
  Buffer.contents b

let encode_reply ~status ~headers ~body =
  let b = Buffer.create (String.length body + 128) in
  Buffer.add_char b 'G';
  add_u16 b status;
  add_u16 b (List.length headers);
  List.iter
    (fun (k, v) ->
      add_lp b k;
      add_lp b v)
    headers;
  add_lp b body;
  Buffer.contents b

let decode_reply payload =
  let pos = ref 0 in
  (match get_u8 payload pos with
  | c when c = Char.code 'G' -> ()
  | c -> perr "unexpected reply op %c" (Char.chr c));
  let status = get_u16 payload pos in
  let nheaders = get_u16 payload pos in
  let headers =
    List.init nheaders (fun _ ->
        let k = get_lp payload pos in
        let v = get_lp payload pos in
        (k, v))
  in
  let body = get_lp payload pos in
  (status, headers, body)

(* ------------------------------------------------------------------ *)
(* Backend spec (crosses the exec boundary via the environment)        *)
(* ------------------------------------------------------------------ *)

type spec = {
  sp_socket : string;
  sp_id : int;
  sp_cache_capacity : int;
  sp_result_cache_cap : int;
  sp_model : string;  (* "banking" | "glass" | "file:<path>" *)
}

let spec_to_string sp =
  String.concat "\n"
    [
      "sock=" ^ sp.sp_socket;
      "id=" ^ string_of_int sp.sp_id;
      "cache=" ^ string_of_int sp.sp_cache_capacity;
      "result_cache=" ^ string_of_int sp.sp_result_cache_cap;
      "model=" ^ sp.sp_model;
    ]

let spec_of_string s =
  let kv =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.index_opt line '=' with
           | None -> None
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) ))
  in
  let get k = try List.assoc k kv with Not_found -> failwith ("shard spec missing " ^ k) in
  {
    sp_socket = get "sock";
    sp_id = int_of_string (get "id");
    sp_cache_capacity = int_of_string (get "cache");
    sp_result_cache_cap = int_of_string (get "result_cache");
    sp_model = get "model";
  }

let model_of_spec = function
  | "banking" -> Service.Model_value (Awb.Samples.banking_model ())
  | "glass" -> Service.Model_value (Awb.Samples.glass_model ())
  | s when String.length s > 5 && String.sub s 0 5 = "file:" ->
    let path = String.sub s 5 (String.length s - 5) in
    let ic = open_in_bin path in
    let xml =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Service.Model_xml { metamodel = Awb.Samples.it_architecture; xml }
  | s -> failwith ("unknown shard model spec " ^ s)

(* ------------------------------------------------------------------ *)
(* Backend process                                                     *)
(* ------------------------------------------------------------------ *)

(* Serve one generate frame against the shard-local service. The model
   comes from the composite body when present (the cache-locality path)
   and falls back to the spec's configured model. *)
let backend_generate svc ~fallback_model payload pos =
  let level = level_of_code (get_u8 payload pos) in
  let deadline_ms = get_u32 payload pos in
  let id = get_lp payload pos in
  let engine_name = get_lp payload pos in
  let body = get_lp payload pos in
  match Docgen.engine_of_string engine_name with
  | Error m ->
    encode_reply ~status:400
      ~headers:[ ("Content-Type", "application/json") ]
      ~body:(Http.error_body ~code:"bad-request" ~message:m ~request_id:id)
  | Ok engine -> (
    let template_xml, model_xml = Composite.split body in
    let model =
      match model_xml with
      | Some xml -> Service.Model_xml { metamodel = Awb.Samples.it_architecture; xml }
      | None -> fallback_model
    in
    let deadline = if deadline_ms = 0 then None else Some (float_of_int deadline_ms /. 1000.) in
    let sreq =
      Service.request ~engine ?deadline ~level ~id
        ~template:(Service.Template_xml template_xml) ~model ()
    in
    match (Service.run svc sreq).Service.result with
    | Ok out ->
      let headers =
        ("Content-Type", "application/xml")
        :: ("X-Engine", Docgen.engine_name out.Service.engine_used)
        :: (if level = Docgen.Spec.Skeleton then [ ("X-Degraded", "skeleton") ] else [])
        @
        match out.Service.problems with
        | [] -> []
        | ps -> [ ("X-Problems", string_of_int (List.length ps)) ]
      in
      encode_reply ~status:200 ~headers ~body:out.Service.document
    | Error e ->
      let status, code, message, headers = Service_http.of_error e in
      encode_reply ~status
        ~headers:(("Content-Type", "application/json") :: headers)
        ~body:(Http.error_body ~code ~message ~request_id:id)
    | exception e ->
      encode_reply ~status:500
        ~headers:[ ("Content-Type", "application/json") ]
        ~body:
          (Http.error_body ~code:"internal" ~message:(Printexc.to_string e)
             ~request_id:id))

let backend_main sp =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let drain = Atomic.make false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set drain true));
  let svc =
    Service.create
      ~config:
        {
          Service.default_config with
          Service.cache_capacity = sp.sp_cache_capacity;
          result_cache_cap = sp.sp_result_cache_cap;
        }
      ()
  in
  let fallback_model = model_of_spec sp.sp_model in
  (try Unix.unlink sp.sp_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX sp.sp_socket);
  Unix.listen listen_fd 64;
  (try Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.05 with Unix.Unix_error _ -> ());
  (* Frames currently being served; drain exits only once this is 0. *)
  let inflight = Atomic.make 0 in
  let threads_mutex = Mutex.create () in
  let threads = ref [] in
  (* One thread per front connection. Connections are persistent and
     few (the front pools them), so the thread count stays bounded by
     the front's concurrency; intra-shard parallelism is not the goal —
     the shards themselves are the parallel axis. *)
  let handle_conn fd =
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05 with Unix.Unix_error _ -> ());
    let closing = ref false in
    (try
       while not !closing do
         (* Between frames, EAGAIN is the drain poll; an idle draining
            connection closes here. *)
         match recv_frame ~retry_again:(fun () -> not (Atomic.get drain)) fd with
         | exception (End_of_file | Unix.Unix_error _ | Protocol_error _) ->
           closing := true
         | exception Frame.Crc_mismatch ->
           (* The frame arrived damaged but the length header framed the
              read: the stream is still aligned. Answer a structured
              nack so the front maps this to failover, instead of
              closing and making corruption indistinguishable from a
              crash. *)
           (try send_frame fd (Frame.nack "bad frame crc")
            with Protocol_error _ | Unix.Unix_error _ -> closing := true)
         | payload ->
           Atomic.incr inflight;
           let reply =
             Fun.protect
               ~finally:(fun () -> Atomic.decr inflight)
               (fun () ->
                 let pos = ref 0 in
                 match Char.chr (get_u8 payload pos) with
                 | 'P' -> "P"
                 | 'M' ->
                   "M"
                   ^ Service.counters_to_prometheus
                       ~labels:[ ("shard", string_of_int sp.sp_id) ]
                       (Service.counters svc)
                 | 'D' ->
                   Atomic.set drain true;
                   closing := true;
                   "D"
                 | 'G' -> backend_generate svc ~fallback_model payload pos
                 | c -> perr "unknown op %c" c)
           in
           (try send_frame fd reply with Protocol_error _ | Unix.Unix_error _ -> closing := true)
       done
     with _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  while not (Atomic.get drain) do
    match Unix.accept ~cloexec:true listen_fd with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> if not (Atomic.get drain) then Thread.delay 0.01
    | fd, _ ->
      let th = Thread.create handle_conn fd in
      Mutex.lock threads_mutex;
      threads := th :: !threads;
      Mutex.unlock threads_mutex
  done;
  (* Draining: no new connections; every conn thread exits at its next
     between-frames poll, after finishing the frame it holds. *)
  List.iter Thread.join !threads;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink sp.sp_socket with Unix.Unix_error _ -> ());
  exit 0

let maybe_run_backend () =
  if Array.exists (fun a -> a = backend_flag) Sys.argv then begin
    match Sys.getenv_opt spec_env with
    | None ->
      prerr_endline "shard backend: missing spec environment";
      exit 2
    | Some s -> backend_main (spec_of_string s)
  end

(* ------------------------------------------------------------------ *)
(* The front-process cluster                                           *)
(* ------------------------------------------------------------------ *)

type cluster_config = {
  shards : int;
  replicas : int;  (* virtual nodes per shard on the ring *)
  cache_capacity : int;  (* per-shard artifact cache entries *)
  result_cache_cap : int;
  model_spec : string;
  socket_dir : string option;  (* default: a fresh directory under TMPDIR *)
  probe_interval_s : float;
  call_timeout_s : float;  (* response wait with no request deadline *)
  drain_timeout_s : float;  (* rolling restart: wait for in-flight, then for exit *)
  chaos : Chaos.config option;  (* fault plane on data-plane frames *)
  breaker : Breaker.config;  (* per-shard circuit breaker thresholds *)
  hedge : bool;  (* re-issue slow generates to the ring successor *)
  hedge_min_delay_s : float;  (* floor under the p95-EWMA hedge delay *)
}

let default_cluster_config =
  {
    shards = 4;
    replicas = 64;
    cache_capacity = 128;
    result_cache_cap = 0;
    model_spec = "banking";
    socket_dir = None;
    probe_interval_s = 0.1;
    call_timeout_s = 300.;
    drain_timeout_s = 30.;
    chaos = None;
    breaker = Breaker.default_config;
    hedge = false;
    hedge_min_delay_s = 0.05;
  }

type shard = {
  sid : int;
  spath : string;
  mutable spid : int;
  shealthy : bool Atomic.t;
  sdraining : bool Atomic.t;
  sinflight : int Atomic.t;
  sbreaker : Breaker.t;
  schaos_seq : int Atomic.t;  (* data-plane frame counter for the chaos schedule *)
  smutex : Mutex.t;
  mutable sidle : Unix.file_descr list;  (* pooled connections *)
}

type t = {
  cfg : cluster_config;
  dir : string;
  router : Router.t;
  members : shard array;
  failovers : int Atomic.t;
  restarts : int Atomic.t;
  reloads : int Atomic.t;
  hedges : int Atomic.t;
  hedge_wins : int Atomic.t;
  unavailable : int Atomic.t;  (* 503s answered because no shard could take the request *)
  p95_s : float Atomic.t;  (* EWMA p95 of successful call latency, drives the hedge delay *)
  stop : bool Atomic.t;
  mutable probe_thread : Thread.t option;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let with_pool_lock s f =
  Mutex.lock s.smutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.smutex) f

let pool_take s =
  with_pool_lock s (fun () ->
      match s.sidle with
      | [] -> None
      | fd :: rest ->
        s.sidle <- rest;
        Some fd)

let pool_put s fd =
  if Atomic.get s.shealthy then
    with_pool_lock s (fun () -> s.sidle <- fd :: s.sidle)
  else close_quiet fd

let pool_clear s =
  let fds = with_pool_lock s (fun () -> let l = s.sidle in s.sidle <- []; l) in
  List.iter close_quiet fds

let connect s ~timeout_s =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.
   with Unix.Unix_error _ -> ());
  match Unix.connect fd (Unix.ADDR_UNIX s.spath) with
  | () -> fd
  | exception e ->
    close_quiet fd;
    raise e

(* Send one data-plane frame under the chaos verdict for its sequence
   number, and read the reply. Each fault is enacted on the real
   socket: a dropped frame never leaves and the caller waits out its
   receive timeout exactly as it would for a lost datagram; a truncated
   frame leaves the backend holding a half-read (our close turns that
   into EOF); a corrupted frame keeps its now-stale CRC trailer so the
   backend's integrity check — not luck — catches it. *)
let chaos_send_recv c s fd payload =
  let seq = Atomic.fetch_and_add s.schaos_seq 1 in
  match Chaos.decide c ~shard:s.sid ~seq with
  | Chaos.Pass ->
    send_frame fd payload;
    recv_frame fd
  | Chaos.Delay d ->
    Thread.delay d;
    send_frame fd payload;
    recv_frame fd
  | Chaos.Stall st ->
    (* The frame hangs in flight: the backend sees it late, and a
       hedge (or the caller's timeout) covers the gap meanwhile. *)
    Thread.delay st;
    send_frame fd payload;
    recv_frame fd
  | Chaos.Drop ->
    (* Nothing is sent; the reply never comes. recv burns the socket
       receive timeout and surfaces EAGAIN, like any silent loss. *)
    recv_frame fd
  | Chaos.Truncate ->
    let wire = Frame.encode payload in
    Frame.send_all fd (String.sub wire 0 (String.length wire / 2));
    (* The rest never arrives. Raising here makes the caller close the
       socket, so the backend's half-read ends in EOF, not a hang. *)
    perr "chaos: frame truncated in flight"
  | Chaos.Corrupt ->
    let wire = Bytes.of_string (Frame.encode payload) in
    let off =
      Frame.payload_offset
      + Chaos.corrupt_offset c ~shard:s.sid ~seq ~len:(String.length payload)
    in
    Bytes.set wire off (Char.chr (Char.code (Bytes.get wire off) lxor 0xff));
    Frame.send_all fd (Bytes.unsafe_to_string wire);
    recv_frame fd
  | Chaos.Duplicate ->
    (* At-least-once delivery: the backend serves the frame twice (its
       replies queue in order on the connection); the duplicate's reply
       is drained so the stream stays aligned and the caller still sees
       exactly one response. *)
    send_frame fd payload;
    send_frame fd payload;
    let reply = recv_frame fd in
    (try ignore (recv_frame fd) with _ -> ());
    reply

(* One request/response exchange. A pooled connection may be stale
   (backend restarted since it was pooled): on failure over a pooled
   conn, retry once over a fresh one before declaring the shard down.
   [chaos] opts the exchange into the fault plane — only data-plane
   generates do; pings, metrics, drains, and health probes are exempt
   so the supervisor's view stays truthful. A nack reply (the backend
   detected a damaged frame) raises {!Frame.Nacked}: the exchange
   protocol-succeeded but the payload was lost in flight, and the
   connection is retired rather than recycled. *)
let call ?(chaos = false) t s payload ~timeout_s =
  let exchange fd =
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s with Unix.Unix_error _ -> ());
    let reply =
      match t.cfg.chaos with
      | Some c when chaos && Chaos.enabled c -> chaos_send_recv c s fd payload
      | _ ->
        send_frame fd payload;
        recv_frame fd
    in
    match Frame.nack_reason reply with
    | Some reason -> raise (Frame.Nacked reason)
    | None -> reply
  in
  (* Only connection-staleness symptoms earn the in-call retry: a
     pooled socket whose backend has since restarted fails with EOF or
     a reset on first use, and a fresh connect genuinely fixes that.
     Everything else — a nack, a damaged reply, a receive timeout —
     happened on a live connection and must surface to the failover and
     breaker layers, not be silently absorbed here (retrying a timeout
     would also double the caller's wait). *)
  let stale_conn = function
    | End_of_file -> true
    | Unix.Unix_error
        ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ENOTCONN | Unix.EBADF), _, _)
      ->
      true
    | _ -> false
  in
  match pool_take s with
  | Some fd -> (
    match exchange fd with
    | reply ->
      pool_put s fd;
      reply
    | exception e when stale_conn e ->
      close_quiet fd;
      let fd = connect s ~timeout_s:(Float.min timeout_s t.cfg.call_timeout_s) in
      (match exchange fd with
      | reply ->
        pool_put s fd;
        reply
      | exception e ->
        close_quiet fd;
        raise e)
    | exception e ->
      close_quiet fd;
      raise e)
  | None -> (
    let fd = connect s ~timeout_s in
    match exchange fd with
    | reply ->
      pool_put s fd;
      reply
    | exception e ->
      close_quiet fd;
      raise e)

let ping t s ~timeout_s =
  match call t s "P" ~timeout_s with "P" -> true | _ -> false | exception _ -> false

let spawn_backend t s =
  let sp =
    {
      sp_socket = s.spath;
      sp_id = s.sid;
      sp_cache_capacity = t.cfg.cache_capacity;
      sp_result_cache_cap = t.cfg.result_cache_cap;
      sp_model = t.cfg.model_spec;
    }
  in
  let exe = Sys.executable_name in
  let env =
    (* Strip any inherited spec binding: duplicate entries would leave
       getenv in the child answering with the stale (first) one. *)
    let prefix = spec_env ^ "=" in
    let plen = String.length prefix in
    Array.append
      (Array.of_list
         (List.filter
            (fun kv -> not (String.length kv >= plen && String.sub kv 0 plen = prefix))
            (Array.to_list (Unix.environment ()))))
      [| prefix ^ spec_to_string sp |]
  in
  let pid =
    Unix.create_process_env exe [| exe; backend_flag |] env Unix.stdin Unix.stdout
      Unix.stderr
  in
  s.spid <- pid

(* The half-open work probe. Ping proves the backend's event loop is
   alive; only a real (tiny) generate against its fallback model proves
   the service underneath still does work. Health restoration requires
   both — a process that answers pings but wedges on generation must
   not flap back to healthy, take a slice of traffic, time it all out,
   and go unhealthy again, over and over. *)
let probe_template = "<document><p>shard probe</p></document>"

let probe_generate t s =
  let payload =
    encode_generate ~id:"__probe__" ~engine:"host" ~level:Docgen.Spec.Full
      ~deadline_ms:2000 ~body:probe_template
  in
  match decode_reply (call t s payload ~timeout_s:3.) with
  | status, _, _ -> status < 500
  | exception _ -> false

let restore_health t s =
  if ping t s ~timeout_s:1. && probe_generate t s then begin
    Atomic.set s.shealthy true;
    (* The successful work probe is exactly the breaker's half-open
       admission test: close the circuit with it. *)
    Breaker.record_success s.sbreaker;
    true
  end
  else false

let wait_healthy t s ~timeout_s =
  let deadline = Clock.now () +. timeout_s in
  let rec go () =
    if restore_health t s then true
    else if Clock.now () > deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* Reap and respawn dead backends; re-probe unhealthy ones. Runs every
   [probe_interval_s]; a shard being rolled (sdraining) is left alone —
   rolling_restart owns its lifecycle. *)
let probe_loop t =
  while not (Atomic.get t.stop) do
    Thread.delay t.cfg.probe_interval_s;
    if not (Atomic.get t.stop) then
      Array.iter
        (fun s ->
          if not (Atomic.get s.sdraining) then begin
            (match Unix.waitpid [ Unix.WNOHANG ] s.spid with
            | 0, _ -> ()
            | _ ->
              (* The backend died (crash, OOM, kill -9). Everything it
                 held is gone; open the breaker outright (no need to
                 count failures against a corpse), respawn, and let the
                 ring's failover cover its keys until the work probe
                 passes again. *)
              Atomic.set s.shealthy false;
              Breaker.force_open s.sbreaker ~now:(Clock.now ());
              pool_clear s;
              if not (Atomic.get t.stop) then begin
                Atomic.incr t.restarts;
                spawn_backend t s
              end
            | exception Unix.Unix_error _ -> ());
            if not (Atomic.get s.shealthy) then ignore (restore_health t s)
          end)
        t.members
  done

let start ?(config = default_cluster_config) () =
  (* The front writes to backend sockets that can die at any moment
     (that's the whole failover story); a write to a killed backend must
     surface as EPIPE, not terminate the process. Server.start also sets
     this, but Shard.start must be safe standalone (tests, embedding). *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir =
    match config.socket_dir with
    | Some d ->
      if not (Sys.file_exists d) then Unix.mkdir d 0o700;
      d
    | None ->
      let d =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "awb-shards-%d" (Unix.getpid ()))
      in
      if not (Sys.file_exists d) then Unix.mkdir d 0o700;
      d
  in
  let n = max 1 config.shards in
  let members =
    Array.init n (fun i ->
        {
          sid = i;
          spath = Filename.concat dir (Printf.sprintf "shard-%d.sock" i);
          spid = -1;
          shealthy = Atomic.make false;
          sdraining = Atomic.make false;
          sinflight = Atomic.make 0;
          sbreaker = Breaker.create ~config:config.breaker ();
          schaos_seq = Atomic.make 0;
          smutex = Mutex.create ();
          sidle = [];
        })
  in
  let t =
    {
      cfg = config;
      dir;
      router = Router.create ~replicas:config.replicas (List.init n (fun i -> i));
      members;
      failovers = Atomic.make 0;
      restarts = Atomic.make 0;
      reloads = Atomic.make 0;
      hedges = Atomic.make 0;
      hedge_wins = Atomic.make 0;
      unavailable = Atomic.make 0;
      p95_s = Atomic.make (max 0.001 config.hedge_min_delay_s);
      stop = Atomic.make false;
      probe_thread = None;
    }
  in
  Array.iter (fun s -> spawn_backend t s) members;
  Array.iter
    (fun s ->
      if not (wait_healthy t s ~timeout_s:15.) then
        failwith (Printf.sprintf "shard %d did not come up" s.sid))
    members;
  t.probe_thread <- Some (Thread.create (fun () -> probe_loop t) ());
  t

let shard_count t = Array.length t.members
let failovers t = Atomic.get t.failovers
let restarts t = Atomic.get t.restarts
let reloads t = Atomic.get t.reloads
let hedges t = Atomic.get t.hedges
let hedge_wins t = Atomic.get t.hedge_wins
let unavailable t = Atomic.get t.unavailable
let breaker_states t = Array.map (fun s -> Breaker.state_code s.sbreaker) t.members
let pids t = Array.map (fun s -> s.spid) t.members
let healthy_count t =
  Array.fold_left (fun acc s -> if Atomic.get s.shealthy then acc + 1 else acc) 0 t.members

let is_timeout_exn = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) -> true
  | _ -> false

(* Frugal streaming p95: on each successful-call latency, step the
   estimate up hard when the sample exceeds it and down softly when it
   doesn't (19:1, the 95th-percentile balance point). Cheap, lock-free,
   and good enough to aim a hedge delay — this is a trigger threshold,
   not a reported statistic. *)
let observe_latency t dt =
  let rec go () =
    let cur = Atomic.get t.p95_s in
    let step = Float.max 0.0005 (cur *. 0.05) in
    let next =
      if dt > cur then cur +. (step *. 0.95) else Float.max 0.001 (cur -. (step *. 0.05))
    in
    if not (Atomic.compare_and_set t.p95_s cur next) then go ()
  in
  go ()

(* One routed attempt against shard [sid], with breaker bookkeeping:
   every outcome — including a hedge loser's — feeds the shard's
   breaker, so the trip thresholds see the true failure stream. *)
let attempt_call t sid payload ~timeout_s =
  let s = t.members.(sid) in
  Atomic.incr s.sinflight;
  let t0 = Clock.now () in
  let result =
    Fun.protect
      ~finally:(fun () -> Atomic.decr s.sinflight)
      (fun () -> try Ok (call ~chaos:true t s payload ~timeout_s) with e -> Error e)
  in
  (match result with
  | Ok _ ->
    Breaker.record_success s.sbreaker;
    observe_latency t (Clock.now () -. t0)
  | Error e ->
    Breaker.record_failure s.sbreaker ~timeout:(is_timeout_exn e) ~now:(Clock.now ()) ());
  result

(* Hedged attempt: first response wins. The primary gets the hedge
   delay (p95 EWMA, floored at the configured minimum) to answer; past
   that — or the moment it fails — the same payload goes to the ring
   successor, and whichever attempt completes with Ok first is the
   answer. The loser is not interrupted: its thread runs to its own
   timeout, its outcome still feeds its shard's breaker, and its reply
   is simply discarded ([hedges] counts fired hedges, [hedge_wins] the
   ones whose reply was used). *)
let hedged_call t sid ~route_key ~payload ~timeout_s ~excluded =
  let mutex = Mutex.create () in
  let results = ref [] in
  let snapshot () =
    Mutex.lock mutex;
    let r = !results in
    Mutex.unlock mutex;
    r
  in
  let launch tag hid =
    ignore
      (Thread.create
         (fun () ->
           let r = attempt_call t hid payload ~timeout_s in
           Mutex.lock mutex;
           results := (tag, r) :: !results;
           Mutex.unlock mutex)
         ())
  in
  let launched = ref 1 in
  launch `Primary sid;
  let hedge_delay = Float.max t.cfg.hedge_min_delay_s (Atomic.get t.p95_s) in
  let t0 = Clock.now () in
  let hard_deadline = t0 +. timeout_s +. 1. in
  while snapshot () = [] && Clock.now () -. t0 < hedge_delay do
    Thread.delay 0.002
  done;
  (match snapshot () with
  | (_, Ok _) :: _ -> () (* the primary answered inside the hedge delay *)
  | _ -> (
    match
      Router.route_excluding t.router ~exclude:(fun i -> i = sid || excluded i) route_key
    with
    | Some hid when Breaker.try_probe t.members.(hid).sbreaker ~now:(Clock.now ()) ->
      Atomic.incr t.hedges;
      incr launched;
      launch `Hedge hid
    | _ -> () (* nowhere to hedge; ride the primary out *)))
  ;
  let rec settle () =
    let r = snapshot () in
    match List.find_opt (fun (_, res) -> Result.is_ok res) r with
    | Some (tag, res) ->
      if tag = `Hedge then Atomic.incr t.hedge_wins;
      res
    | None ->
      if List.length r >= !launched then
        match r with (_, e) :: _ -> e | [] -> assert false
      else if Clock.now () > hard_deadline then
        Error (Unix.Unix_error (Unix.ETIMEDOUT, "hedged_call", ""))
      else begin
        Thread.delay 0.002;
        settle ()
      end
  in
  settle ()

(* Route and forward one generate. The breaker gates routing before the
   ring walk (an Open shard is skipped without spending a request on
   it; a Half-open shard admits exactly one probe). Failover: a shard
   that errors mid-exchange is marked unhealthy (the probe thread
   restores it after a successful work probe) and the request retries
   on the next ring successor — safe because generation is read-only.
   The response is (status, headers, body), ready for the front end to
   decorate and write. *)
let generate t ~id ~engine ~level ~deadline_ms ~body =
  let timeout_s =
    if deadline_ms = 0 then t.cfg.call_timeout_s
    else Float.min t.cfg.call_timeout_s ((float_of_int deadline_ms /. 1000.) +. 5.)
  in
  let payload = encode_generate ~id ~engine ~level ~deadline_ms ~body in
  (* Route on the model section, digested: the ring must see the same
     key for every request against the same model regardless of
     template, and the FNV ring hash walks its input byte by byte in
     boxed Int64 arithmetic — feeding it a raw multi-hundred-kilobyte
     body costs milliseconds per request where a 16-byte MD5 is free. *)
  let route_key =
    match Composite.split body with
    | _, Some model -> Digest.string model
    | _, None -> body
  in
  let failed = Array.make (Array.length t.members) false in
  let excluded sid =
    failed.(sid)
    || (not (Atomic.get t.members.(sid).shealthy))
    || Atomic.get t.members.(sid).sdraining
    || Breaker.blocked t.members.(sid).sbreaker ~now:(Clock.now ())
  in
  let no_shards message =
    (* Counted so end-of-run conservation can account for every 503 the
       tier answered: these come from routing, not the admission queue. *)
    Atomic.incr t.unavailable;
    Service_http.unavailable ~code:"no-shards" ~message ~request_id:id ~retry_after_s:1.
  in
  let rec attempt tries =
    if tries >= Array.length t.members then no_shards "every shard failed"
    else
      match Router.route_excluding t.router ~exclude:excluded route_key with
      | None -> no_shards "no healthy shard available"
      | Some sid -> (
        let s = t.members.(sid) in
        if not (Breaker.try_probe s.sbreaker ~now:(Clock.now ())) then begin
          (* Lost the half-open probe slot to a concurrent request:
             leave the breaker alone and walk on. *)
          failed.(sid) <- true;
          attempt (tries + 1)
        end
        else
          let result =
            if t.cfg.hedge && Array.length t.members > 1 then
              hedged_call t sid ~route_key ~payload ~timeout_s ~excluded
            else attempt_call t sid payload ~timeout_s
          in
          match result with
          | Ok reply -> decode_reply reply
          | Error _ ->
            Atomic.set s.shealthy false;
            pool_clear s;
            failed.(sid) <- true;
            Atomic.incr t.failovers;
            attempt (tries + 1))
  in
  attempt 0

(* Aggregated /metrics: each shard's exposition arrives already
   shard-labeled on its sample lines; concatenating them repeats the
   HELP/TYPE metadata, which is deduplicated here (first one wins). *)
let dedup_metadata text =
  let seen = Hashtbl.create 64 in
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         if String.length line > 0 && line.[0] = '#' then
           if Hashtbl.mem seen line then false
           else begin
             Hashtbl.add seen line ();
             true
           end
         else true)
  |> String.concat "\n"

let metrics t =
  let parts =
    Array.to_list t.members
    |> List.filter_map (fun s ->
           if not (Atomic.get s.shealthy) then None
           else
             match call t s "M" ~timeout_s:2. with
             | reply when String.length reply > 0 && reply.[0] = 'M' ->
               Some (String.sub reply 1 (String.length reply - 1))
             | _ -> None
             | exception _ -> None)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b (dedup_metadata (String.concat "" parts));
  Buffer.add_string b
    "# HELP lopsided_shard_healthy 1 when the shard passes ping and work probes.\n";
  Buffer.add_string b "# TYPE lopsided_shard_healthy gauge\n";
  Array.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "lopsided_shard_healthy{shard=\"%d\"} %d\n" s.sid
           (if Atomic.get s.shealthy then 1 else 0)))
    t.members;
  Buffer.add_string b
    "# HELP lopsided_shard_breaker_state Circuit breaker: 0 closed, 1 open, 2 half-open.\n";
  Buffer.add_string b "# TYPE lopsided_shard_breaker_state gauge\n";
  Array.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "lopsided_shard_breaker_state{shard=\"%d\"} %d\n" s.sid
           (Breaker.state_code s.sbreaker)))
    t.members;
  let counter name help v =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n# TYPE %s counter\n%s %d\n" name help name name v)
  in
  counter "lopsided_shard_failovers_total"
    "Generates re-routed to a ring successor after a shard failed." (failovers t);
  counter "lopsided_shard_restarts_total"
    "Backend processes respawned by the supervisor after dying." (restarts t);
  counter "lopsided_shard_reloads_total"
    "Backend processes cycled by a rolling restart." (reloads t);
  counter "lopsided_shard_hedges_total"
    "Hedge requests fired at a ring successor after the hedge delay." (hedges t);
  counter "lopsided_shard_hedge_wins_total"
    "Hedged generates whose hedge reply arrived first and was used." (hedge_wins t);
  counter "lopsided_shard_unavailable_total"
    "Generates answered 503 because no shard could take the request." (unavailable t);
  Buffer.contents b

let wait_exit ?(timeout_s = 10.) pid =
  let deadline = Clock.now () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Clock.now () > deadline then false
      else begin
        Thread.delay 0.01;
        go ()
      end
    | _ -> true
    | exception Unix.Unix_error _ -> true
  in
  go ()

let send_drain s =
  (* Best effort over a fresh connection: pooled conns may be held by
     in-flight exchanges on other threads. *)
  match connect s ~timeout_s:2. with
  | fd ->
    (try
       send_frame fd "D";
       ignore (recv_frame fd)
     with _ -> ());
    close_quiet fd
  | exception _ -> ()

let kill_quiet pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let stop_backend t s =
  send_drain s;
  pool_clear s;
  if not (wait_exit ~timeout_s:t.cfg.drain_timeout_s s.spid) then begin
    kill_quiet s.spid Sys.sigterm;
    if not (wait_exit ~timeout_s:2. s.spid) then begin
      kill_quiet s.spid Sys.sigkill;
      ignore (wait_exit ~timeout_s:2. s.spid)
    end
  end

(* Zero-downtime reload: cycle one shard at a time. While a shard is
   down its keys fail over to ring successors (~1/N of traffic sees a
   cold cache, briefly); the rest of the fleet keeps its warm caches.
   Each old process finishes its in-flight work before exiting: routing
   stops first, then we wait for the front-side in-flight count to hit
   zero, and the backend's own drain finishes any frame already on a
   connection. *)
let rolling_restart t =
  Array.iter
    (fun s ->
      Atomic.set s.sdraining true;
      (* New requests stopped routing here the instant sdraining went
         true; wait for the ones already being exchanged. *)
      let deadline = Clock.now () +. t.cfg.drain_timeout_s in
      while Atomic.get s.sinflight > 0 && Clock.now () < deadline do
        Thread.delay 0.01
      done;
      Atomic.set s.shealthy false;
      stop_backend t s;
      spawn_backend t s;
      Atomic.incr t.reloads;
      ignore (wait_healthy t s ~timeout_s:15.);
      Atomic.set s.sdraining false)
    t.members

let shutdown t =
  if Atomic.compare_and_set t.stop false true then begin
    (match t.probe_thread with Some th -> Thread.join th | None -> ());
    t.probe_thread <- None;
    Array.iter
      (fun s ->
        Atomic.set s.sdraining true;
        Atomic.set s.shealthy false;
        stop_backend t s;
        try Unix.unlink s.spath with Unix.Unix_error _ | Sys_error _ -> ())
      t.members;
    try Unix.rmdir t.dir with Unix.Unix_error _ | Sys_error _ -> ()
  end
