(* A pool of reusable Buffer.t values.

   Keep-alive turns the per-request parse and serialize buffers from
   throwaway allocations into connection-lifetime scratch space: a
   buffer is checked out when a connection is accepted, cleared (not
   reallocated) between the requests it serves, and returned when the
   connection closes. The pool is a plain mutex-guarded stack — checkout
   is a pop, checkin a push — with two safety valves: buffers that grew
   past [max_buffer_bytes] are dropped instead of hoarded (one 4 MiB
   response must not pin 4 MiB forever), and the idle stack is capped at
   [max_idle] so a burst of ten thousand connections doesn't leave ten
   thousand buffers behind. *)

type t = {
  initial_size : int;
  max_idle : int;
  max_buffer_bytes : int;
  mutex : Mutex.t;
  mutable idle : Buffer.t list;
  mutable idle_count : int;
  created : int Atomic.t;
  reused : int Atomic.t;
  dropped : int Atomic.t;
}

let create ?(initial_size = 4096) ?(max_idle = 256) ?(max_buffer_bytes = 1 lsl 20) () =
  {
    initial_size;
    max_idle;
    max_buffer_bytes;
    mutex = Mutex.create ();
    idle = [];
    idle_count = 0;
    created = Atomic.make 0;
    reused = Atomic.make 0;
    dropped = Atomic.make 0;
  }

let checkout t =
  Mutex.lock t.mutex;
  let b =
    match t.idle with
    | b :: rest ->
      t.idle <- rest;
      t.idle_count <- t.idle_count - 1;
      Some b
    | [] -> None
  in
  Mutex.unlock t.mutex;
  match b with
  | Some b ->
    Atomic.incr t.reused;
    Buffer.clear b;
    b
  | None ->
    Atomic.incr t.created;
    Buffer.create t.initial_size

let checkin t b =
  (* Buffer.clear keeps the underlying bytes, which is the whole point —
     but a buffer that ballooned serving one huge response is cheaper to
     rebuild than to keep. *)
  if Buffer.length b <= t.max_buffer_bytes then begin
    Buffer.clear b;
    Mutex.lock t.mutex;
    if t.idle_count < t.max_idle then begin
      t.idle <- b :: t.idle;
      t.idle_count <- t.idle_count + 1;
      Mutex.unlock t.mutex
    end
    else begin
      Mutex.unlock t.mutex;
      Atomic.incr t.dropped
    end
  end
  else Atomic.incr t.dropped

let with_buf t f =
  let b = checkout t in
  Fun.protect ~finally:(fun () -> checkin t b) (fun () -> f b)

let created t = Atomic.get t.created
let reused t = Atomic.get t.reused
let dropped t = Atomic.get t.dropped

let idle t =
  Mutex.lock t.mutex;
  let n = t.idle_count in
  Mutex.unlock t.mutex;
  n
