(** The bounded in-flight queue between the acceptor and the workers.

    This is where load shedding becomes explicit: {!push} never blocks
    and never grows the queue past its capacity — a full queue answers
    [`Shed]` immediately and the acceptor turns that into
    [503 + Retry-After]. Without the bound, overload shows up as
    unbounded queueing delay (every request "accepted", none finishing
    in time); with it, excess load is refused at the door and the
    requests that are admitted see bounded latency. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val push : 'a t -> 'a -> [ `Accepted | `Shed ]
(** Non-blocking. [`Shed] when the queue is at capacity or closed. *)

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed and
    empty ([None], the worker's signal to exit). *)

val close : 'a t -> unit
(** No further pushes are accepted; blocked and future {!pop}s drain
    what remains, then return [None]. *)

val flush : 'a t -> 'a list
(** Atomically remove and return everything queued but not yet popped
    (drain answers these with 503). Oldest first. *)

val depth : 'a t -> int
(** Current queue depth (gauge). *)

val closed : 'a t -> bool
