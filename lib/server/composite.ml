(* Composite request bodies: a template plus the model it should
   generate against, in one POST.

     <docgen-request><template>...</template><model>...</model></docgen-request>

   A plain body (anything not starting with the marker) is a bare
   template generating against the server's configured model — the PR-4
   wire format, unchanged. The split is deliberately string-level, not
   an XML parse: the sharded front process routes on the raw body and
   must never pay a parse before admission, and the backend wants the
   two payloads verbatim so the Service layer's content-hash caches see
   exactly the bytes the client sent. *)

let open_tag = "<docgen-request>"
let close_tag = "</docgen-request>"
let tpl_open = "<template>"
let tpl_close = "</template>"
let model_open = "<model>"
let model_close = "</model>"

let is_composite body =
  String.length body >= String.length open_tag
  && String.sub body 0 (String.length open_tag) = open_tag

(* First occurrence of [needle] in [hay] at or after [from]. Bodies run
   to hundreds of kilobytes and this sits on the per-request path twice
   (shard routing on the front, split on the backend), so candidate
   positions come from [String.index_from_opt] — memchr under the hood —
   rather than a per-byte OCaml loop, and the verify step never
   allocates. *)
let find_from hay needle from =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then if from <= nh then Some from else None
  else begin
    let c0 = needle.[0] in
    let rec verify i j =
      j >= nn
      || String.unsafe_get hay (i + j) = String.unsafe_get needle j && verify i (j + 1)
    in
    let rec go i =
      if i + nn > nh then None
      else
        match String.index_from_opt hay i c0 with
        | None -> None
        | Some i when i + nn > nh -> None
        | Some i -> if verify i 1 then Some i else go (i + 1)
    in
    go from
  end

let between hay ~after opening closing =
  match find_from hay opening after with
  | None -> None
  | Some i -> (
    let start = i + String.length opening in
    match find_from hay closing start with
    | None -> None
    | Some j -> Some (String.sub hay start (j - start), j + String.length closing))

let split body =
  if not (is_composite body) then (body, None)
  else
    match between body ~after:(String.length open_tag) tpl_open tpl_close with
    | None -> (body, None) (* malformed; let the template parser report it *)
    | Some (tpl, rest) -> (
      match between body ~after:rest model_open model_close with
      | None -> (tpl, None)
      | Some (model, _) -> (tpl, Some model))

let build ~template ~model =
  String.concat ""
    [ open_tag; tpl_open; template; tpl_close; model_open; model; model_close; close_tag ]
