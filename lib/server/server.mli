(** The overload-resilient HTTP/1.1 front end over the {!Service} layer.

    Dependency-free: plain [Unix] sockets, OCaml domains for workers,
    one acceptor thread plus a small reader pool. The acceptor never
    reads from a client — accepted connections go through a bounded
    queue to the readers, each of which parses under a whole-request
    deadline — so a slow or drip-feeding client can never stall
    admission, health checks, or the drain trigger. Overload behaviour
    is the design center, not an afterthought:

    - {b Admission control.} Every [POST /generate] passes a per-client
      token bucket (429 + [Retry-After] when a peer floods), then an
      admission-time quarantine check (429 without costing a worker when
      the template's circuit breaker is open), then a fixed-capacity
      queue. A full queue answers [503 + Retry-After] immediately —
      latency for admitted requests stays bounded instead of collapsing
      for everyone.
    - {b Governance end-to-end.} The [X-Deadline-Ms] header (or the
      configured default) becomes the evaluator's own deadline, covering
      queue wait; resource errors come back as structured JSON bodies
      carrying the [resource:*] code (422/504).
    - {b Connection efficiency.} With [keepalive] on, connections are
      persistent HTTP/1.1: a per-connection request loop with pipelined
      overshoot carried between parses, one pooled parse/serialize
      buffer per connection (cleared, never reallocated), responses
      written head+body in a single [write], and an idle watcher that
      parks quiet connections so readers only ever touch sockets with
      bytes. Off by default — one request per connection, exactly the
      pre-PR-7 wire behaviour.
    - {b Sharding.} Pass a {!Shard.t} cluster to {!create} and generate
      bodies are consistent-hash routed to backend worker processes over
      Unix-domain sockets, keeping each backend's Service caches warm on
      its slice of the key space. [/metrics] aggregates the shard-labeled
      expositions; drain shuts the cluster down; [SIGHUP] rolls it.
    - {b Lifecycle.} [SIGTERM] (or {!drain}) stops admitting, answers
      queued requests 503, tightens every in-flight evaluation's
      deadline to the drain deadline via {!Service.preempt_inflight},
      and exits cleanly. A crashed worker domain is restarted by the
      supervisor ([worker_restarts] counter) instead of taking the
      process down. [/healthz] is liveness; [/readyz] flips during drain
      and when the windowed shed rate crosses a threshold; [/metrics] is
      Prometheus text. *)

module Http = Http
module Token_bucket = Token_bucket
module Admission = Admission
module Metrics = Metrics
module Brownout = Brownout
module Fair_queue = Fair_queue
module Buffer_pool = Buffer_pool
module Router = Router
module Shard = Shard
module Composite = Composite
module Service_http = Service_http
module Frame = Frame
module Chaos = Chaos
module Breaker = Breaker
module Recorder = Recorder
module Store = Store

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  max_inflight : int;  (** worker domains executing requests *)
  queue_cap : int;  (** admission queue capacity; beyond it, shed *)
  tenant_cap : int;
      (** per-tenant bulkhead within the admission queue (tenant =
          [X-Tenant] header, else peer address); a tenant past its cap
          gets its own 429s while other tenants keep their queue space.
          Clamped to [queue_cap]; the default ([max_int]) disables the
          bulkhead, i.e. the PR-4 single global FIFO. *)
  rate : float;  (** per-peer token-bucket refill, requests/s; 0 disables *)
  burst : float;  (** per-peer bucket size *)
  default_deadline_s : float option;
      (** generation deadline when the client sends no [X-Deadline-Ms] *)
  drain_deadline_s : float;
      (** how long {!drain} lets in-flight requests finish before their
          deadlines are tightened to "now" *)
  shed_unready_threshold : float;
      (** [/readyz] flips to 503 when the shed fraction over the metrics
          window reaches this *)
  io_timeout_s : float;  (** socket receive/send timeout per connection *)
  max_body_bytes : int;
  default_engine : Docgen.engine;
  model : Service.model_source option;
      (** the model requests generate against when the body carries no
          inline [<model>] section; [None] = banking sample *)
  fault : Service.Fault.config option;
      (** server-side fault injection; the [Crash] kind and the
          [load_signal] brownout override are read here (the service's
          own config covers the rest) *)
  brownout : Brownout.config option;
      (** graceful-degradation controller; [None] (the default)
          disables brownout entirely — the server sheds exactly as
          PR 4 did. When enabled, Degraded mode serves stale cache
          hits ([Warning: 110], [X-Degraded: stale]) and generates
          skeletons on misses ([X-Degraded: skeleton]); Critical mode
          serves only cache hits and sheds the rest. *)
  keepalive : bool;
      (** persistent HTTP/1.1 connections; off (one request per
          connection) by default *)
  idle_timeout_s : float;
      (** keep-alive: close a connection parked this long between
          requests *)
  max_conn_requests : int;
      (** keep-alive: answer at most this many requests per connection,
          then [Connection: close] — bounds how long one client can pin
          a pooled buffer *)
  recorder : Recorder.t option;
      (** when set, every admitted request ([/generate] and store
          writes/queries) is captured into this ring (method, path,
          tenant, deadline, body, monotonic timestamp) for later
          replay — the [--record] flag *)
  store : Store.t option;
      (** the crash-safe persistent collection store behind
          [PUT/GET/DELETE /collections/:name/docs/:id] and
          [POST /collections/:name/query] (where [doc()] resolves
          against the named collection). Reads are answered inline;
          writes and queries pass through admission — drain, rate
          limit, critical-brownout shed, fair-queue bulkheads,
          recorder capture. [None] (the default) answers the store
          routes 503 [no-store]. *)
  repl : Store.Replica.t option;
      (** when set, the store routes are served by this replicated
          cluster instead of [store]: PUT/DELETE are acknowledged only
          after a write quorum of backends has fsync'd the record
          (503 [store:unavailable] + Retry-After short of quorum), and
          reads follow the primary through failover. Shut down with the
          server's drain. *)
  scrub_interval_s : float;
      (** > 0 runs one incremental online-scrub pass against the local
          [store] on this cadence from a background thread —
          checksum-verifying live segments and quarantining rot — the
          [--scrub-interval] flag. Replicated backends scrub
          themselves; see {!Store.Replica.config}. *)
}

val default_config : config
(** Loopback, ephemeral port, 4 workers, queue 64, no tenant bulkhead,
    rate limiting off, no default deadline, 5 s drain, readyz threshold
    0.9, 2 s socket timeouts, 4 MiB bodies, host engine, banking model,
    no faults, brownout off, keep-alive off (5 s idle, 1000 requests
    per connection when enabled). *)

type t

val create : ?config:config -> ?cluster:Shard.t -> Service.t -> t
(** With [?cluster], generate work is forwarded to the shard backends
    (the local service still answers stale-cache lookups and brownout
    checks); the server takes ownership — {!drain} shuts the cluster
    down. *)

val config : t -> config

val start : t -> unit
(** Bind, listen, spawn the workers, the readers, the supervisor, the
    idle watcher (keep-alive only), and the acceptor; returns once the
    server is accepting. Also ignores [SIGPIPE] process-wide: a peer
    that hangs up before its response is written must surface as a
    catchable [EPIPE], not a fatal signal. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val ready : t -> bool
(** What [/readyz] reports: not draining, shed rate under threshold. *)

val draining : t -> bool

val drain : t -> unit
(** Graceful drain: stop admitting work (readyz flips immediately),
    answer everything queued-but-unstarted with 503, let in-flight
    requests run up to [drain_deadline_s] (their evaluator deadlines are
    tightened, so overruns die with a structured [resource:deadline]),
    close idle keep-alive connections, shut down the shard cluster if
    one was attached, then stop every thread and close the listener.
    Idempotent; blocks until the server is fully stopped. *)

val stopped : t -> bool

val await : t -> unit
(** Block until the server has fully stopped (i.e. a drain completed). *)

val install_sigterm : t -> unit
(** Route [SIGTERM] to {!drain}: the handler sets a flag, the acceptor
    notices within its poll interval and drains on a separate thread.
    Call at most once per process; the handler owns the signal. *)

val install_sighup : t -> unit
(** Route [SIGHUP] to {!reload} the same way (flag, acceptor poll,
    separate thread). *)

val reload : t -> unit
(** Zero-downtime reload. Sharded: {!Shard.rolling_restart} — backends
    cycle one at a time with their key slice failing over, no dropped
    requests. Single-process: {!Service.reload} — compiled-artifact
    caches cleared, quarantine breakers closed. *)

val metrics : t -> Metrics.t
val service : t -> Service.t
val cluster : t -> Shard.t option
val queue_depth : t -> int
val inflight : t -> int

val mode : t -> Brownout.mode
(** One brownout-controller step against the live load signals (or the
    {!Service.Fault} [load_signal] override), returning the resulting
    mode. [Normal] always when brownout is off. [/metrics] calls this
    too, so scraping alone observes recovery. *)

val current_mode : t -> Brownout.mode
(** The mode as last evaluated, without stepping the controller — what
    the [X-Service-Mode] response header reports. *)

val metrics_body : t -> string
(** The full [/metrics] payload: service exposition + server exposition
    (+ the aggregated shard exposition in cluster mode). *)
