(** The brownout controller: steps the server through
    [Normal -> Degraded -> Critical] on a composite load signal, with
    hysteresis against flapping.

    The signal is the max of admission-queue occupancy, the windowed
    shed fraction, and the p95 service-time estimate over its target —
    all in [0, 1]-ish units where 1 means "saturated". Two anti-flap
    mechanisms: enter thresholds sit well above exit thresholds, and a
    transition needs several consecutive qualifying observations.

    Deterministic by construction: every evaluation takes an explicit
    monotonic [now], and the whole signal can be overridden (the
    {!Service.Fault} [load_signal] hook) so tests force any transition
    sequence without sleeping or generating load. *)

type mode = Normal | Degraded | Critical

val mode_name : mode -> string
(** ["normal"] / ["degraded"] / ["critical"] — the [X-Service-Mode]
    header values. *)

val mode_index : mode -> int
(** 0 / 1 / 2 — the [/metrics] gauge value. *)

type config = {
  degraded_enter : float;  (** signal at or above this pushes toward Degraded *)
  degraded_exit : float;  (** signal at or below this pulls Degraded back to Normal *)
  critical_enter : float;
  critical_exit : float;
  up_consecutive : int;  (** qualifying observations needed to escalate *)
  down_consecutive : int;  (** qualifying observations needed to recover *)
  eval_interval_s : float;
      (** minimum spacing between controller steps; [<= 0] evaluates on
          every call (deterministic tests) *)
  p95_target_s : float;  (** service time treated as "signal = 1.0" *)
}

val default_config : config
(** Enter Degraded at 0.75, exit at 0.35; enter Critical at 0.92, exit
    at 0.6; 2 observations up, 8 down; 200 ms evaluation spacing; 1 s
    p95 target. *)

type t

val create : config -> t
(** Starts in [Normal]. *)

val mode : t -> mode
(** The current mode, without evaluating. *)

val transitions : t -> int
(** Mode changes since creation. *)

val observe_service_time : t -> float -> unit
(** Feed one completed request's service time (seconds). Maintains an
    asymmetric EWMA (fast rise, slow decay) used as the p95 estimate in
    the composite signal. *)

val p95_estimate_s : t -> float

val note :
  t ->
  ?override:float ->
  queue_occupancy:float ->
  shed_fraction:float ->
  now:float ->
  unit ->
  mode
(** One controller step at monotonic time [now] (rate-limited by
    [eval_interval_s]); returns the possibly-updated mode. [override],
    when given, replaces the computed composite signal entirely — the
    deterministic-test hook. *)
