(* The brownout controller: a three-mode load governor with hysteresis.

   The server feeds it a composite load signal — the max of admission-
   queue occupancy, the windowed shed fraction, and p95 service time
   against a target — and it steps Normal -> Degraded -> Critical and
   back. Two defenses against flapping: separate enter/exit thresholds
   (a mode entered at 0.75 is not left until the signal falls to 0.35),
   and consecutive-observation counts (one spiky sample moves nothing).

   Everything is driven by explicit [now] values from the monotonic
   clock, and the signal can be overridden wholesale (the Fault
   load_signal hook), so tests walk the whole mode ladder with zero
   sleeps and zero real load. *)

type mode = Normal | Degraded | Critical

let mode_name = function
  | Normal -> "normal"
  | Degraded -> "degraded"
  | Critical -> "critical"

let mode_index = function Normal -> 0 | Degraded -> 1 | Critical -> 2

type config = {
  degraded_enter : float;
  degraded_exit : float;
  critical_enter : float;
  critical_exit : float;
  up_consecutive : int;
  down_consecutive : int;
  eval_interval_s : float;
  p95_target_s : float;
}

let default_config =
  {
    degraded_enter = 0.75;
    degraded_exit = 0.35;
    critical_enter = 0.92;
    critical_exit = 0.6;
    up_consecutive = 2;
    down_consecutive = 8;
    eval_interval_s = 0.2;
    p95_target_s = 1.0;
  }

type t = {
  config : config;
  mutex : Mutex.t;
  mutable mode : mode;
  mutable up_streak : int;
  mutable down_streak : int;
  mutable last_eval : float; (* monotonic; neg_infinity = never *)
  mutable p95_ewma_s : float;
  mutable sampled_since_eval : bool;
  mutable transitions : int;
}

let create config =
  {
    config;
    mutex = Mutex.create ();
    mode = Normal;
    up_streak = 0;
    down_streak = 0;
    last_eval = neg_infinity;
    p95_ewma_s = 0.;
    sampled_since_eval = false;
    transitions = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let mode t = with_lock t (fun () -> t.mode)
let transitions t = with_lock t (fun () -> t.transitions)

(* Asymmetric EWMA as a p95 stand-in: jump fast when a sample exceeds
   the estimate (bad news should register within a few requests), decay
   slowly otherwise. With rise 0.3 / decay 0.05 the estimate sits near
   the upper tail of the recent service-time distribution — a cheap p95
   approximation that needs no histogram and no clock reads beyond the
   sample itself. *)
let observe_service_time t dt_s =
  with_lock t (fun () ->
      let q = t.p95_ewma_s in
      let alpha = if dt_s > q then 0.3 else 0.05 in
      t.p95_ewma_s <- q +. (alpha *. (dt_s -. q));
      t.sampled_since_eval <- true)

let p95_estimate_s t = with_lock t (fun () -> t.p95_ewma_s)

(* One controller step. Rate-limited by eval_interval_s (<= 0 evaluates
   every call — what the deterministic tests use); between evaluations
   the current mode is simply reported. *)
let note t ?override ~queue_occupancy ~shed_fraction ~now () =
  with_lock t (fun () ->
      if
        t.config.eval_interval_s > 0.
        && now -. t.last_eval < t.config.eval_interval_s
      then t.mode
      else begin
        t.last_eval <- now;
        (* An evaluation window with no completed work carries no
           evidence of slowness, and a frozen estimate would hold the
           controller above its exit threshold forever once traffic
           stops (stale hits and sheds never reach a worker). Decay it
           toward zero — gradually, so a brief completion gap under
           heavy queueing does not erase a real signal. *)
        if not t.sampled_since_eval then t.p95_ewma_s <- t.p95_ewma_s *. 0.8;
        t.sampled_since_eval <- false;
        let signal =
          match override with
          | Some x -> x
          | None ->
            Float.max queue_occupancy
              (Float.max shed_fraction
                 (if t.config.p95_target_s > 0. then
                    t.p95_ewma_s /. t.config.p95_target_s
                  else 0.))
        in
        let switch m =
          t.mode <- m;
          t.transitions <- t.transitions + 1;
          t.up_streak <- 0;
          t.down_streak <- 0
        in
        (* Worse-than-enter observations feed the up streak, better-than-
           exit observations the down streak; anything in the hysteresis
           band resets both (the mode is holding). *)
        (match t.mode with
        | Normal ->
          if signal >= t.config.degraded_enter then begin
            t.up_streak <- t.up_streak + 1;
            t.down_streak <- 0;
            if t.up_streak >= t.config.up_consecutive then switch Degraded
          end
          else begin
            t.up_streak <- 0;
            t.down_streak <- 0
          end
        | Degraded ->
          if signal >= t.config.critical_enter then begin
            t.up_streak <- t.up_streak + 1;
            t.down_streak <- 0;
            if t.up_streak >= t.config.up_consecutive then switch Critical
          end
          else if signal <= t.config.degraded_exit then begin
            t.down_streak <- t.down_streak + 1;
            t.up_streak <- 0;
            if t.down_streak >= t.config.down_consecutive then switch Normal
          end
          else begin
            t.up_streak <- 0;
            t.down_streak <- 0
          end
        | Critical ->
          if signal <= t.config.critical_exit then begin
            t.down_streak <- t.down_streak + 1;
            if t.down_streak >= t.config.down_consecutive then switch Degraded
          end
          else t.down_streak <- 0);
        t.mode
      end)
