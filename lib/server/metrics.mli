(** Server-side counters: what the front end did with traffic before
    (or instead of) handing it to the service.

    All counters are atomics — the acceptor, the workers, and the
    supervisor all write concurrently. The shed-rate window feeds the
    readiness endpoint: when the fraction of admission decisions that
    were sheds crosses a threshold over the last window, [/readyz]
    reports not-ready so a load balancer steers new traffic away while
    the instance digests its queue. *)

type t

val create : ?window_s:float -> unit -> t
(** [window_s] is the shed-rate observation window (default 2 s). *)

(** {1 Counters} *)

(** [incr_accepted] — requests admitted to the queue. *)
val incr_accepted : t -> unit

(** [incr_shed] — 503s for a full queue (or drain flush). *)
val incr_shed : t -> unit

(** [incr_rate_limited] — 429s from the token bucket. *)
val incr_rate_limited : t -> unit

(** [incr_quarantine_429] — 429s from the admission-time breaker check. *)
val incr_quarantine_429 : t -> unit

(** [incr_drained] — queued requests flushed with 503 during drain. *)
val incr_drained : t -> unit

val incr_worker_restarts : t -> unit

(** [incr_bad_requests] — 400s from the parser. *)
val incr_bad_requests : t -> unit

(** [incr_stale_served] — stale result-cache hits served under brownout. *)
val incr_stale_served : t -> unit

(** [incr_skeletons] — skeleton-level generations served under brownout. *)
val incr_skeletons : t -> unit

(** [incr_refreshes] — background stale-while-revalidate jobs enqueued. *)
val incr_refreshes : t -> unit

(** [incr_tenant_rejected] — 429s from a full per-tenant bulkhead. *)
val incr_tenant_rejected : t -> unit

(** [incr_keepalive_reused] — requests served on a reused (keep-alive)
    connection rather than a fresh accept. *)
val incr_keepalive_reused : t -> unit

(** [incr_recorded] — admitted requests captured into the replay ring. *)
val incr_recorded : t -> unit

(** [incr_store_refused] — store requests answered 503 by the store tier
    itself: I/O error, quarantined data, or (replicated) no write
    quorum. Counted so the recorder's shed-conservation check covers
    store-tier refusals too. *)
val incr_store_refused : t -> unit

val accepted : t -> int
val shed : t -> int
val rate_limited : t -> int
val quarantine_429 : t -> int
val drained : t -> int
val worker_restarts : t -> int
val bad_requests : t -> int
val stale_served : t -> int
val skeletons : t -> int
val refreshes : t -> int
val tenant_rejected : t -> int
val keepalive_reused : t -> int
val recorded : t -> int
val store_refused : t -> int

(** {1 Shed-rate window} *)

val shed_fraction : t -> now:float -> float
(** Fraction of admission decisions in the most recent completed window
    that were sheds; 0 when the window saw no decisions. *)

(** {1 Completion rate and Retry-After} *)

val note_completion : t -> now:float -> unit
(** Record one finished generation at monotonic [now]; feeds the
    completion-rate window. *)

val completion_rate : t -> now:float -> float
(** Completions per second over the most recent completed window; decays
    to 0 after two windows of silence. *)

val retry_after_estimate_s : t -> queue_depth:int -> now:float -> float
(** Estimated seconds for the queue to drain at the recent completion
    rate, clamped to [[1, 30]]; 1 when no completion rate is known. *)

(** {1 Per-tenant counters} *)

val note_tenant : t -> tenant:string -> outcome:[ `Served | `Shed ] -> unit
(** Count one admission outcome against [tenant]. At most
    {!max_tracked_tenants} distinct labels are kept; past that the
    traffic lands on ["_other"]. *)

val tenant_counts : t -> (string * int * int) list
(** [(tenant, served, shed)] triples, sorted by tenant. *)

val max_tracked_tenants : int

val to_prometheus :
  t -> ?mode:int -> queue_depth:int -> inflight:int -> ready:bool -> unit -> string
(** Prometheus text exposition of every server counter plus the
    [queue_depth], [inflight], brownout [mode] (default 0) and readiness
    gauges, named [lopsided_server_*]; per-tenant counters are emitted
    as [{tenant="..."}]-labeled samples with label values escaped. *)
