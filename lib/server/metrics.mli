(** Server-side counters: what the front end did with traffic before
    (or instead of) handing it to the service.

    All counters are atomics — the acceptor, the workers, and the
    supervisor all write concurrently. The shed-rate window feeds the
    readiness endpoint: when the fraction of admission decisions that
    were sheds crosses a threshold over the last window, [/readyz]
    reports not-ready so a load balancer steers new traffic away while
    the instance digests its queue. *)

type t

val create : ?window_s:float -> unit -> t
(** [window_s] is the shed-rate observation window (default 2 s). *)

(** {1 Counters} *)

(** [incr_accepted] — requests admitted to the queue. *)
val incr_accepted : t -> unit

(** [incr_shed] — 503s for a full queue (or drain flush). *)
val incr_shed : t -> unit

(** [incr_rate_limited] — 429s from the token bucket. *)
val incr_rate_limited : t -> unit

(** [incr_quarantine_429] — 429s from the admission-time breaker check. *)
val incr_quarantine_429 : t -> unit

(** [incr_drained] — queued requests flushed with 503 during drain. *)
val incr_drained : t -> unit

val incr_worker_restarts : t -> unit

(** [incr_bad_requests] — 400s from the parser. *)
val incr_bad_requests : t -> unit

val accepted : t -> int
val shed : t -> int
val rate_limited : t -> int
val quarantine_429 : t -> int
val drained : t -> int
val worker_restarts : t -> int
val bad_requests : t -> int

(** {1 Shed-rate window} *)

val shed_fraction : t -> now:float -> float
(** Fraction of admission decisions in the most recent completed window
    that were sheds; 0 when the window saw no decisions. *)

val to_prometheus : t -> queue_depth:int -> inflight:int -> ready:bool -> string
(** Prometheus text exposition of every server counter plus the
    [queue_depth] and [inflight] gauges and the readiness flag, named
    [lopsided_server_*]. *)
