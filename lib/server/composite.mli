(** Composite request bodies: template + model in one POST.

    [<docgen-request><template>...</template><model>...</model></docgen-request>]

    lets a client generate against a per-request model instead of the
    server's configured one — and gives the sharded front process a
    routing key that covers both template and model content without
    parsing anything. Plain bodies pass through untouched. *)

val is_composite : string -> bool
(** True when the body starts with the [<docgen-request>] marker. *)

val split : string -> string * string option
(** [(template_xml, model_xml option)]. A non-composite body comes back
    as [(body, None)]; a composite without a [<model>] section yields
    its template and [None]. String-level — no XML parse, payloads
    returned verbatim so content-hash caches key on the client's exact
    bytes. *)

val build : template:string -> model:string -> string
(** Assemble a composite body (clients, bench, tests). *)
