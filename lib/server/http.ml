(* Minimal HTTP/1.1 over raw Unix file descriptors.

   The server speaks a deliberately small dialect: Content-Length bodies
   only (no chunked uploads), persistent connections with pipelined
   request reading — recv may overshoot one request into the next, and
   the overshoot is handed back to the caller as the head of the next
   request rather than dropped or rejected. What it is NOT casual about
   is hostile input: headers and bodies have hard byte caps, reads
   honour the socket's receive timeout (so a slow-loris sender is cut
   off by the kernel, not waited on forever), and every malformed shape
   lands in Bad_request rather than an exception salad. *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
  version : string;
}

exception Bad_request of string
exception Timeout

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* The socket receive timeout bounds each individual recv, but a client
   trickling one byte per interval would still hold the reading thread
   for timeout x bytes. [check_deadline] is consulted before every recv
   so the whole request — head and body together — gets one total
   budget. *)
let check_deadline = function
  | Some d when Clock.now_ns () > d -> raise Timeout
  | _ -> ()

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

let query_param req name = List.assoc_opt name req.query

let wants_keep_alive req =
  (* HTTP/1.1 defaults to persistent; 1.0 must opt in. Either way an
     explicit Connection header wins. *)
  match header req "connection" with
  | Some v -> (
    match String.lowercase_ascii (String.trim v) with
    | "close" -> false
    | "keep-alive" -> true
    | _ -> req.version = "HTTP/1.1")
  | None -> req.version = "HTTP/1.1"

(* ------------------------------------------------------------------ *)
(* Percent decoding                                                    *)
(* ------------------------------------------------------------------ *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> bad "invalid percent escape"

let percent_decode ?(plus_is_space = false) s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n ->
      Buffer.add_char b (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
      i := !i + 2
    | '%' -> bad "truncated percent escape"
    | '+' when plus_is_space -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (percent_decode ~plus_is_space:true kv, "")
             | Some i ->
               Some
                 ( percent_decode ~plus_is_space:true (String.sub kv 0 i),
                   percent_decode ~plus_is_space:true
                     (String.sub kv (i + 1) (String.length kv - i - 1)) ))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

(* Pull bytes until the header terminator, never holding more than
   [max_header_bytes] of headers. Returns (head, leftover) — leftover is
   whatever rode along after the terminator: body bytes, and possibly
   the start of the next pipelined request. [pending] seeds the scan
   with bytes carried over from the previous request on this connection;
   [buf] is the connection's pooled scratch buffer (cleared here, never
   reallocated between requests). *)
let read_head ~max_header_bytes ~deadline_ns ~pending ~buf fd =
  let buf = match buf with Some b -> Buffer.clear b; b | None -> Buffer.create 512 in
  Buffer.add_string buf pending;
  let chunk = Bytes.create 2048 in
  (* [scanned] is the prefix already known terminator-free; each pass
     resumes a few bytes before it so a \r\n\r\n split across reads is
     still found. *)
  let scanned = ref 0 in
  let rec loop () =
    let s = Buffer.contents buf in
    let n = String.length s in
    let found = ref (-1) in
    let i = ref (max 0 (!scanned - 3)) in
    while !found < 0 && !i + 3 < n do
      if s.[!i] = '\r' && s.[!i + 1] = '\n' && s.[!i + 2] = '\r' && s.[!i + 3] = '\n'
      then found := !i
      else incr i
    done;
    scanned := n;
    if !found >= 0 then begin
      let i = !found in
      (* The cap applies to the head itself, found or not — but only to
         the head: body bytes that rode along in the same read don't
         count against it. *)
      if i > max_header_bytes then bad "request head exceeds %d bytes" max_header_bytes;
      Some (String.sub s 0 i, String.sub s (i + 4) (n - i - 4))
    end
    else begin
      if n > max_header_bytes then bad "request head exceeds %d bytes" max_header_bytes;
      check_deadline deadline_ns;
      let r = Unix.recv fd chunk 0 (Bytes.length chunk) [] in
      if r = 0 then if n = 0 then None else bad "connection closed mid-headers"
      else begin
        Buffer.add_subbytes buf chunk 0 r;
        loop ()
      end
    end
  in
  loop ()

(* Read the body: [len] bytes, of which [already] may supply a prefix —
   or more than [len], in which case the excess is the next pipelined
   request and is returned as leftover. *)
let read_body fd ~deadline_ns ~already ~len =
  let b = Bytes.create len in
  let have = min len (String.length already) in
  Bytes.blit_string already 0 b 0 have;
  let rec go off =
    if off >= len then ()
    else begin
      check_deadline deadline_ns;
      let n = Unix.recv fd b off (len - off) [] in
      if n = 0 then bad "connection closed mid-body" else go (off + n)
    end
  in
  go have;
  let leftover =
    if String.length already > len then
      String.sub already len (String.length already - len)
    else ""
  in
  (* [b] is never touched again — unsafe_to_string spares a full-body
     copy, which at megabyte bodies is real per-request GC pressure. *)
  (Bytes.unsafe_to_string b, leftover)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
    if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
      bad "unsupported version %s" version;
    let path, query =
      match String.index_opt target '?' with
      | None -> (target, [])
      | Some i ->
        ( String.sub target 0 i,
          parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
    in
    (String.uppercase_ascii meth, percent_decode path, query, version)
  | _ -> bad "malformed request line"

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> bad "malformed header line"
  | Some i ->
    ( String.lowercase_ascii (String.sub line 0 i),
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let read_request ?(max_header_bytes = 8192) ?(max_body_bytes = 4 * 1024 * 1024)
    ?deadline_ns ?(pending = "") ?buf fd =
  match read_head ~max_header_bytes ~deadline_ns ~pending ~buf fd with
  | None -> None
  | Some (head, leftover) ->
    let lines =
      String.split_on_char '\n' head
      |> List.map (fun l ->
             let n = String.length l in
             if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
    in
    (match lines with
    | [] -> bad "empty request"
    | request_line :: header_lines ->
      let meth, path, query, version = parse_request_line request_line in
      let headers =
        List.filter_map
          (fun l -> if l = "" then None else Some (parse_header_line l))
          header_lines
      in
      if List.mem_assoc "transfer-encoding" headers then
        bad "chunked request bodies are not supported";
      let body, leftover =
        match List.assoc_opt "content-length" headers with
        | None ->
          (* No body; anything beyond the head is the next pipelined
             request, handed back to the caller. *)
          ("", leftover)
        | Some v -> (
          (* Strict HTTP grammar: decimal digits only. int_of_string_opt
             alone would accept OCaml literals — "0x100", "0o17",
             "1_000" — and a length any intermediary parses differently
             is request smuggling waiting to happen. *)
          let v = String.trim v in
          if v = "" || not (String.for_all (function '0' .. '9' -> true | _ -> false) v)
          then bad "malformed Content-Length";
          match int_of_string_opt v with
          | None -> bad "malformed Content-Length" (* digit overflow *)
          | Some len when len > max_body_bytes ->
            bad "body of %d bytes exceeds the %d-byte limit" len max_body_bytes
          | Some len -> read_body fd ~deadline_ns ~already:leftover ~len)
      in
      Some ({ meth; path; query; headers; body; version }, leftover))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let reason_phrase = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let write_response fd ~status ?(headers = []) ?(keep_alive = false) ?buf ~body () =
  (* Head and body are serialized into one buffer and pushed with a
     single write loop — the writev-equivalent: one syscall in the
     common case instead of separate head/body sends, and no
     head-arrives-body-lags window for the client to observe. *)
  let b =
    match buf with
    | Some b -> Buffer.clear b; b
    | None -> Buffer.create (String.length body + 256)
  in
  Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_phrase status));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string b (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n\r\n" else "Connection: close\r\n\r\n");
  Buffer.add_string b body;
  let bytes = Buffer.to_bytes b in
  (* Write errors never raise — the client may simply be gone — but a
     short or failed write is reported as [false]: the connection's
     byte stream is now truncated mid-response, and a keep-alive caller
     that recycled it would serve the next response as the remainder of
     this body. Callers must close on [false]. *)
  let rec send off =
    if off >= Bytes.length bytes then true
    else
      let n = Unix.write fd bytes off (Bytes.length bytes - off) in
      if n <= 0 then false else send (off + n)
  in
  try send 0 with Unix.Unix_error _ | Sys_error _ -> false

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let error_body ~code ~message ~request_id =
  Printf.sprintf "{\"error\":{\"code\":\"%s\",\"message\":\"%s\"},\"request_id\":\"%s\"}\n"
    (json_escape code) (json_escape message) (json_escape request_id)
