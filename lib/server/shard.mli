(** Multi-process sharded serving: a front process consistent-hash
    routes generate bodies to N backend worker processes over
    Unix-domain sockets, so each backend's Service-layer caches stay
    warm on its slice of the (template, model) key space.

    Backends are spawned by fork+exec of the host binary with a
    [--shard-backend] argv marker (never bare fork — the front is
    multi-domain and multi-thread). Any executable that calls
    {!maybe_run_backend} first thing in main can host a backend. The
    wire protocol is length-prefixed binary frames: ping, metrics,
    drain, and generate (level, deadline, id, engine, body →
    status, headers, body). *)

val maybe_run_backend : unit -> unit
(** When the process was exec'd as a shard backend (the
    [--shard-backend] argv marker is present), run the backend serve
    loop and [exit 0] on drain — never returns in that case. A no-op
    otherwise. Call before any argument parsing in every binary that
    may spawn a cluster. *)

(** {1 Cluster (front process side)} *)

type cluster_config = {
  shards : int;
  replicas : int;  (** virtual nodes per shard on the consistent-hash ring *)
  cache_capacity : int;  (** per-shard Service artifact-cache entries *)
  result_cache_cap : int;  (** per-shard stale-while-revalidate cache *)
  model_spec : string;
      (** the backend's fallback model when a body carries none:
          ["banking"], ["glass"], or ["file:<path>"] (imported with the
          IT-architecture metamodel) *)
  socket_dir : string option;
      (** where the [shard-N.sock] files live; [None] = a fresh
          directory under the system temp dir *)
  probe_interval_s : float;  (** supervisor poll cadence *)
  call_timeout_s : float;  (** response wait when a request has no deadline *)
  drain_timeout_s : float;
      (** rolling restart: max wait for in-flight work, then for exit *)
  chaos : Chaos.config option;
      (** deterministic fault plane interposed on data-plane frames
          (pings, metrics, drains, and health probes are exempt) *)
  breaker : Breaker.config;  (** per-shard circuit breaker thresholds *)
  hedge : bool;
      (** after the hedge delay (p95-EWMA of call latency, floored at
          [hedge_min_delay_s]), re-issue an in-flight generate to the
          ring successor; first response wins *)
  hedge_min_delay_s : float;
}

val default_cluster_config : cluster_config
(** 4 shards, 64 replicas, cache 128, result cache off, banking model,
    temp socket dir, 100 ms probes, 300 s call timeout, 30 s drain,
    no chaos, default breaker, hedging off (50 ms floor). *)

type t

val start : ?config:cluster_config -> unit -> t
(** Spawn the backends, wait until every one passes both the ping and
    the work probe (a real tiny generate — a backend that pings but
    wedges on work never counts as healthy), and start the supervisor
    (reaps dead backends, respawns them, restores their health once
    both probes pass again). Raises [Failure] if a backend never comes
    up. *)

val generate :
  t ->
  id:string ->
  engine:string ->
  level:Docgen.Spec.level ->
  deadline_ms:int ->
  body:string ->
  int * (string * string) list * string
(** Route the body to its home shard and forward; returns
    [(status, headers, body)] for the front end to decorate and write.
    [deadline_ms = 0] means no deadline. On a shard failure the request
    fails over to ring successors (generation is read-only, so the
    retry is safe); only when every shard is down does the client see a
    [503 no-shards]. *)

val metrics : t -> string
(** Aggregated Prometheus exposition: every healthy shard's
    shard-labeled service counters (HELP/TYPE deduplicated) plus
    cluster-level health gauges and the failover/restart/reload
    counters. *)

val rolling_restart : t -> unit
(** Zero-downtime reload: cycle shards one at a time — stop routing to
    the shard, wait for its in-flight work, ask it to drain (it
    finishes any frame it holds and exits 0), respawn, wait healthy,
    resume routing. At most ~1/N of the key space fails over at any
    moment; counted in {!reloads}. *)

val shutdown : t -> unit
(** Drain and reap every backend, stop the supervisor, remove the
    socket files. Idempotent. *)

val shard_count : t -> int
val healthy_count : t -> int
val failovers : t -> int
(** Generates re-routed after a shard failure. *)

val restarts : t -> int
(** Backends respawned by the supervisor after dying. *)

val reloads : t -> int
(** Backends cycled by {!rolling_restart}. *)

val hedges : t -> int
(** Hedge requests fired at a ring successor. *)

val hedge_wins : t -> int
(** Hedged generates whose hedge reply arrived first and was used. *)

val unavailable : t -> int
(** Generates answered 503 because no shard could take the request. *)

val breaker_states : t -> int array
(** Per-shard breaker state codes (0 closed, 1 open, 2 half-open). *)

val pids : t -> int array
(** Current backend process ids, by shard (tests kill these). *)
