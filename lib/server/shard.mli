(** Multi-process sharded serving: a front process consistent-hash
    routes generate bodies to N backend worker processes over
    Unix-domain sockets, so each backend's Service-layer caches stay
    warm on its slice of the (template, model) key space.

    Backends are spawned by fork+exec of the host binary with a
    [--shard-backend] argv marker (never bare fork — the front is
    multi-domain and multi-thread). Any executable that calls
    {!maybe_run_backend} first thing in main can host a backend. The
    wire protocol is length-prefixed binary frames: ping, metrics,
    drain, and generate (level, deadline, id, engine, body →
    status, headers, body). *)

val maybe_run_backend : unit -> unit
(** When the process was exec'd as a shard backend (the
    [--shard-backend] argv marker is present), run the backend serve
    loop and [exit 0] on drain — never returns in that case. A no-op
    otherwise. Call before any argument parsing in every binary that
    may spawn a cluster. *)

(** {1 Cluster (front process side)} *)

type cluster_config = {
  shards : int;
  replicas : int;  (** virtual nodes per shard on the consistent-hash ring *)
  cache_capacity : int;  (** per-shard Service artifact-cache entries *)
  result_cache_cap : int;  (** per-shard stale-while-revalidate cache *)
  model_spec : string;
      (** the backend's fallback model when a body carries none:
          ["banking"], ["glass"], or ["file:<path>"] (imported with the
          IT-architecture metamodel) *)
  socket_dir : string option;
      (** where the [shard-N.sock] files live; [None] = a fresh
          directory under the system temp dir *)
  probe_interval_s : float;  (** supervisor poll cadence *)
  call_timeout_s : float;  (** response wait when a request has no deadline *)
  drain_timeout_s : float;
      (** rolling restart: max wait for in-flight work, then for exit *)
}

val default_cluster_config : cluster_config
(** 4 shards, 64 replicas, cache 128, result cache off, banking model,
    temp socket dir, 100 ms probes, 300 s call timeout, 30 s drain. *)

type t

val start : ?config:cluster_config -> unit -> t
(** Spawn the backends, wait until every one answers pings, and start
    the supervisor (reaps dead backends, respawns them, restores their
    health once they ping again). Raises [Failure] if a backend never
    comes up. *)

val generate :
  t ->
  id:string ->
  engine:string ->
  level:Docgen.Spec.level ->
  deadline_ms:int ->
  body:string ->
  int * (string * string) list * string
(** Route the body to its home shard and forward; returns
    [(status, headers, body)] for the front end to decorate and write.
    [deadline_ms = 0] means no deadline. On a shard failure the request
    fails over to ring successors (generation is read-only, so the
    retry is safe); only when every shard is down does the client see a
    [503 no-shards]. *)

val metrics : t -> string
(** Aggregated Prometheus exposition: every healthy shard's
    shard-labeled service counters (HELP/TYPE deduplicated) plus
    cluster-level health gauges and the failover/restart/reload
    counters. *)

val rolling_restart : t -> unit
(** Zero-downtime reload: cycle shards one at a time — stop routing to
    the shard, wait for its in-flight work, ask it to drain (it
    finishes any frame it holds and exits 0), respawn, wait healthy,
    resume routing. At most ~1/N of the key space fails over at any
    moment; counted in {!reloads}. *)

val shutdown : t -> unit
(** Drain and reap every backend, stop the supervisor, remove the
    socket files. Idempotent. *)

val shard_count : t -> int
val healthy_count : t -> int
val failovers : t -> int
(** Generates re-routed after a shard failure. *)

val restarts : t -> int
(** Backends respawned by the supervisor after dying. *)

val reloads : t -> int
(** Backends cycled by {!rolling_restart}. *)

val pids : t -> int array
(** Current backend process ids, by shard (tests kill these). *)
