(* Weighted fair queueing for admission, keyed by tenant.

   PR 4's admission queue was one global FIFO: a single flooding tenant
   filled it and everyone else's requests became 503s. Here each tenant
   gets its own FIFO of pending items plus a bulkhead cap, and the
   dequeue side interleaves tenants by virtual finish time — the
   classic WFQ construction:

     vtime(item) = max(vnow, tenant.last_vtime) + 1/weight
     pop         = the item with the smallest (vtime, seq)

   A tenant enqueueing alone advances its own last_vtime, so a burst
   from one tenant queues behind its own earlier work while a newly
   arriving tenant starts at vnow and is served within one "turn" —
   that's the fairness. With a single tenant the (vtime, seq) order
   collapses to arrival order, so PR-4 behaviour (strict FIFO) is
   preserved exactly.

   Two distinct rejections: [`Queue_full] (the global capacity is
   exhausted — a 503, the server as a whole is saturated) and
   [`Tenant_full] (this tenant hit its bulkhead — a 429, *their*
   problem, everyone else is fine).

   Same concurrency shape as Admission: one mutex + condvar, blocking
   [pop], [close] wakes everyone. *)

type 'a entry = { item : 'a; vtime : float; seq : int }

type 'a tenant_state = {
  items : 'a entry Queue.t;
  mutable last_vtime : float;
  weight : float;
}

type 'a t = {
  capacity : int; (* global, across tenants *)
  tenant_cap : int; (* per-tenant bulkhead *)
  mutex : Mutex.t;
  nonempty : Condition.t;
  tenants : (string, 'a tenant_state) Hashtbl.t;
  mutable vnow : float; (* virtual time of the last pop *)
  mutable seq : int; (* global arrival counter (vtime tie-break) *)
  mutable depth : int;
  mutable closed : bool;
}

let create ~capacity ~tenant_cap =
  let capacity = max 1 capacity in
  {
    capacity;
    tenant_cap = min capacity (max 1 tenant_cap);
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    tenants = Hashtbl.create 16;
    vnow = 0.;
    seq = 0;
    depth = 0;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let push t ~tenant ?(weight = 1.) item =
  with_lock t (fun () ->
      if t.closed then `Shed `Queue_full
      else if t.depth >= t.capacity then `Shed `Queue_full
      else begin
        let state =
          match Hashtbl.find_opt t.tenants tenant with
          | Some s -> s
          | None ->
            let s =
              { items = Queue.create (); last_vtime = 0.; weight = Float.max 1e-6 weight }
            in
            Hashtbl.replace t.tenants tenant s;
            s
        in
        if Queue.length state.items >= t.tenant_cap then `Shed `Tenant_full
        else begin
          let vtime =
            Float.max t.vnow state.last_vtime +. (1. /. state.weight)
          in
          state.last_vtime <- vtime;
          let seq = t.seq in
          t.seq <- seq + 1;
          Queue.push { item; vtime; seq } state.items;
          t.depth <- t.depth + 1;
          Condition.signal t.nonempty;
          `Accepted
        end
      end)

(* The tenant whose head entry has the smallest (vtime, seq). Linear in
   the number of tenants with queued work — admission queues are small
   (tens of entries) and tenant counts smaller, so a heap would be
   ceremony without payoff here. *)
let best_tenant t =
  Hashtbl.fold
    (fun name state best ->
      match Queue.peek_opt state.items with
      | None -> best
      | Some head -> (
        match best with
        | Some (_, _, bh) when (bh.vtime, bh.seq) <= (head.vtime, head.seq) -> best
        | _ -> Some (name, state, head)))
    t.tenants None

let rec pop t =
  with_lock t (fun () ->
      match best_tenant t with
      | Some (name, state, head) ->
        ignore (Queue.pop state.items);
        t.depth <- t.depth - 1;
        t.vnow <- Float.max t.vnow head.vtime;
        (* Dropping an idle tenant's state is safe: last_vtime <= vnow
           by construction, so re-creation at vnow loses nothing. *)
        if Queue.is_empty state.items then Hashtbl.remove t.tenants name;
        `Item head.item
      | None -> if t.closed then `Closed else `Wait)
  |> function
  | `Item x -> Some x
  | `Closed -> None
  | `Wait ->
    with_lock t (fun () ->
        if not t.closed && best_tenant t = None then Condition.wait t.nonempty t.mutex);
    pop t

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

(* Everything still queued, in the order pop would have served it.
   Leaves the queue empty (drain answers each item itself). *)
let flush t =
  with_lock t (fun () ->
      let all =
        Hashtbl.fold
          (fun _ state acc -> Queue.fold (fun acc e -> e :: acc) acc state.items)
          t.tenants []
      in
      Hashtbl.reset t.tenants;
      t.depth <- 0;
      let sorted =
        List.sort (fun a b -> compare (a.vtime, a.seq) (b.vtime, b.seq)) all
      in
      List.map (fun e -> e.item) sorted)

let depth t = with_lock t (fun () -> t.depth)

let tenant_depth t tenant =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | Some s -> Queue.length s.items
      | None -> 0)

let closed t = with_lock t (fun () -> t.closed)
