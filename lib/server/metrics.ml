(* Server counters and the shed-rate window.

   Counters are Atomic.t so the acceptor thread, every worker domain,
   and the supervisor can bump them without a lock. The shed-rate
   window is coarser machinery: admission outcomes (accepted vs shed)
   are bucketed into fixed windows of [window_s]; the fraction reported
   is from the most recently *completed* window, so the signal is a
   stable number that flips /readyz rather than a per-request flicker.
   The window state is tiny and mutated under its own mutex. *)

type t = {
  accepted : int Atomic.t;
  shed : int Atomic.t;
  rate_limited : int Atomic.t;
  quarantine_429 : int Atomic.t;
  drained : int Atomic.t;
  worker_restarts : int Atomic.t;
  bad_requests : int Atomic.t;
  window_s : float;
  wmutex : Mutex.t;
  mutable wstart : float;  (* monotonic start of the current window *)
  mutable wtotal : int;  (* admission decisions this window *)
  mutable wshed : int;
  mutable prev_fraction : float;  (* shed fraction of the last full window *)
}

let create ?(window_s = 2.) () =
  {
    accepted = Atomic.make 0;
    shed = Atomic.make 0;
    rate_limited = Atomic.make 0;
    quarantine_429 = Atomic.make 0;
    drained = Atomic.make 0;
    worker_restarts = Atomic.make 0;
    bad_requests = Atomic.make 0;
    window_s;
    wmutex = Mutex.create ();
    wstart = Clock.now ();
    wtotal = 0;
    wshed = 0;
    prev_fraction = 0.;
  }

let with_window t f =
  Mutex.lock t.wmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.wmutex) f

(* Roll the window forward if it has expired. A gap with no decisions
   at all decays the reported fraction to zero — silence is health. *)
let roll t ~now =
  if now -. t.wstart >= t.window_s then begin
    t.prev_fraction <-
      (if now -. t.wstart >= 2. *. t.window_s then 0.
       else if t.wtotal = 0 then 0.
       else float_of_int t.wshed /. float_of_int t.wtotal);
    t.wstart <- now;
    t.wtotal <- 0;
    t.wshed <- 0
  end

let note_decision t ~shed =
  let now = Clock.now () in
  with_window t (fun () ->
      roll t ~now;
      t.wtotal <- t.wtotal + 1;
      if shed then t.wshed <- t.wshed + 1)

let incr_accepted t =
  Atomic.incr t.accepted;
  note_decision t ~shed:false

let incr_shed t =
  Atomic.incr t.shed;
  note_decision t ~shed:true

let incr_rate_limited t = Atomic.incr t.rate_limited
let incr_quarantine_429 t = Atomic.incr t.quarantine_429
let incr_drained t = Atomic.incr t.drained
let incr_worker_restarts t = Atomic.incr t.worker_restarts
let incr_bad_requests t = Atomic.incr t.bad_requests

let accepted t = Atomic.get t.accepted
let shed t = Atomic.get t.shed
let rate_limited t = Atomic.get t.rate_limited
let quarantine_429 t = Atomic.get t.quarantine_429
let drained t = Atomic.get t.drained
let worker_restarts t = Atomic.get t.worker_restarts
let bad_requests t = Atomic.get t.bad_requests

let shed_fraction t ~now = with_window t (fun () -> roll t ~now; t.prev_fraction)

let to_prometheus t ~queue_depth ~inflight ~ready =
  let b = Buffer.create 2048 in
  let sample ?(typ = "counter") name help value =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    Buffer.add_string b (Printf.sprintf "%s %d\n" name value)
  in
  sample "lopsided_server_accepted_total" "Requests admitted to the in-flight queue."
    (accepted t);
  sample "lopsided_server_shed_total" "Requests answered 503 because the queue was full."
    (shed t);
  sample "lopsided_server_rate_limited_total"
    "Requests answered 429 by the per-client token bucket." (rate_limited t);
  sample "lopsided_server_quarantined_total"
    "Requests answered 429 at admission because their template was quarantined."
    (quarantine_429 t);
  sample "lopsided_server_drained_total"
    "Queued requests flushed with 503 during graceful drain." (drained t);
  sample "lopsided_server_worker_restarts_total"
    "Worker domains restarted by the supervisor after a crash." (worker_restarts t);
  sample "lopsided_server_bad_requests_total" "Requests rejected by the HTTP parser."
    (bad_requests t);
  sample ~typ:"gauge" "lopsided_server_queue_depth" "Requests queued but not yet started."
    queue_depth;
  sample ~typ:"gauge" "lopsided_server_inflight" "Requests currently being generated."
    inflight;
  sample ~typ:"gauge" "lopsided_server_ready" "1 when /readyz answers 200." (if ready then 1 else 0);
  Buffer.contents b
