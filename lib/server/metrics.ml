(* Server counters and the shed-rate window.

   Counters are Atomic.t so the acceptor thread, every worker domain,
   and the supervisor can bump them without a lock. The shed-rate
   window is coarser machinery: admission outcomes (accepted vs shed)
   are bucketed into fixed windows of [window_s]; the fraction reported
   is from the most recently *completed* window, so the signal is a
   stable number that flips /readyz rather than a per-request flicker.
   The window state is tiny and mutated under its own mutex. *)

(* Cap on distinct tenant label values in /metrics: a flood of
   never-seen-again tenant keys (e.g. one per client port) must not grow
   the exposition without bound. Past the cap, traffic lands on the
   "_other" bucket. *)
let max_tracked_tenants = 64

type tenant_counts = { mutable t_served : int; mutable t_shed : int }

type t = {
  accepted : int Atomic.t;
  shed : int Atomic.t;
  rate_limited : int Atomic.t;
  quarantine_429 : int Atomic.t;
  drained : int Atomic.t;
  worker_restarts : int Atomic.t;
  bad_requests : int Atomic.t;
  stale_served : int Atomic.t;
  skeletons : int Atomic.t;
  refreshes : int Atomic.t;
  tenant_rejected : int Atomic.t;
  keepalive_reused : int Atomic.t;
  recorded : int Atomic.t;
  store_refused : int Atomic.t;
  window_s : float;
  wmutex : Mutex.t;
  mutable wstart : float;  (* monotonic start of the current window *)
  mutable wtotal : int;  (* admission decisions this window *)
  mutable wshed : int;
  mutable prev_fraction : float;  (* shed fraction of the last full window *)
  mutable cstart : float;  (* completion-rate window (same cadence) *)
  mutable ccount : int;  (* completions this window *)
  mutable crate : float;  (* completions/s of the last full window *)
  tmutex : Mutex.t;
  tenants : (string, tenant_counts) Hashtbl.t;
}

let create ?(window_s = 2.) () =
  let now = Clock.now () in
  {
    accepted = Atomic.make 0;
    shed = Atomic.make 0;
    rate_limited = Atomic.make 0;
    quarantine_429 = Atomic.make 0;
    drained = Atomic.make 0;
    worker_restarts = Atomic.make 0;
    bad_requests = Atomic.make 0;
    stale_served = Atomic.make 0;
    skeletons = Atomic.make 0;
    refreshes = Atomic.make 0;
    tenant_rejected = Atomic.make 0;
    keepalive_reused = Atomic.make 0;
    recorded = Atomic.make 0;
    store_refused = Atomic.make 0;
    window_s;
    wmutex = Mutex.create ();
    wstart = now;
    wtotal = 0;
    wshed = 0;
    prev_fraction = 0.;
    cstart = now;
    ccount = 0;
    crate = 0.;
    tmutex = Mutex.create ();
    tenants = Hashtbl.create 16;
  }

let with_window t f =
  Mutex.lock t.wmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.wmutex) f

(* Roll the window forward if it has expired. A gap with no decisions
   at all decays the reported fraction to zero — silence is health. *)
let roll t ~now =
  if now -. t.wstart >= t.window_s then begin
    t.prev_fraction <-
      (if now -. t.wstart >= 2. *. t.window_s then 0.
       else if t.wtotal = 0 then 0.
       else float_of_int t.wshed /. float_of_int t.wtotal);
    t.wstart <- now;
    t.wtotal <- 0;
    t.wshed <- 0
  end

let note_decision t ~shed =
  let now = Clock.now () in
  with_window t (fun () ->
      roll t ~now;
      t.wtotal <- t.wtotal + 1;
      if shed then t.wshed <- t.wshed + 1)

let incr_accepted t =
  Atomic.incr t.accepted;
  note_decision t ~shed:false

let incr_shed t =
  Atomic.incr t.shed;
  note_decision t ~shed:true

let incr_rate_limited t = Atomic.incr t.rate_limited
let incr_quarantine_429 t = Atomic.incr t.quarantine_429
let incr_drained t = Atomic.incr t.drained
let incr_worker_restarts t = Atomic.incr t.worker_restarts
let incr_bad_requests t = Atomic.incr t.bad_requests
let incr_stale_served t = Atomic.incr t.stale_served
let incr_skeletons t = Atomic.incr t.skeletons
let incr_refreshes t = Atomic.incr t.refreshes
let incr_tenant_rejected t = Atomic.incr t.tenant_rejected
let incr_keepalive_reused t = Atomic.incr t.keepalive_reused
let incr_recorded t = Atomic.incr t.recorded
let incr_store_refused t = Atomic.incr t.store_refused

let accepted t = Atomic.get t.accepted
let shed t = Atomic.get t.shed
let rate_limited t = Atomic.get t.rate_limited
let quarantine_429 t = Atomic.get t.quarantine_429
let drained t = Atomic.get t.drained
let worker_restarts t = Atomic.get t.worker_restarts
let bad_requests t = Atomic.get t.bad_requests
let stale_served t = Atomic.get t.stale_served
let skeletons t = Atomic.get t.skeletons
let refreshes t = Atomic.get t.refreshes
let tenant_rejected t = Atomic.get t.tenant_rejected
let keepalive_reused t = Atomic.get t.keepalive_reused
let recorded t = Atomic.get t.recorded
let store_refused t = Atomic.get t.store_refused

let shed_fraction t ~now = with_window t (fun () -> roll t ~now; t.prev_fraction)

(* ------------------------------------------------------------------ *)
(* Completion rate and the derived Retry-After                         *)
(* ------------------------------------------------------------------ *)

(* Same windowing as the shed fraction: the rate reported is from the
   most recently completed window, decaying to zero after two silent
   windows. All arithmetic takes an explicit [now] so the estimate is
   unit-testable with synthetic timestamps. *)
let roll_completions t ~now =
  if now -. t.cstart >= t.window_s then begin
    t.crate <-
      (if now -. t.cstart >= 2. *. t.window_s then 0.
       else float_of_int t.ccount /. t.window_s);
    t.cstart <- now;
    t.ccount <- 0
  end

let note_completion t ~now =
  with_window t (fun () ->
      roll_completions t ~now;
      t.ccount <- t.ccount + 1)

let completion_rate t ~now =
  with_window t (fun () ->
      roll_completions t ~now;
      t.crate)

(* Estimated seconds until the queue drains at the recent completion
   rate, clamped to [1, 30]. With no recent completions (cold start, or
   the workers are all wedged on runaways) there is no basis for an
   estimate; answer the old flat 1 s rather than a fiction. *)
let retry_after_estimate_s t ~queue_depth ~now =
  let rate = completion_rate t ~now in
  if rate <= 0. then 1.
  else Float.min 30. (Float.max 1. (float_of_int queue_depth /. rate))

(* ------------------------------------------------------------------ *)
(* Per-tenant serve/shed counters                                      *)
(* ------------------------------------------------------------------ *)

let note_tenant t ~tenant ~outcome =
  Mutex.lock t.tmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.tmutex)
    (fun () ->
      let c =
        match Hashtbl.find_opt t.tenants tenant with
        | Some c -> c
        | None ->
          let key =
            if Hashtbl.length t.tenants >= max_tracked_tenants then "_other"
            else tenant
          in
          (match Hashtbl.find_opt t.tenants key with
          | Some c -> c
          | None ->
            let c = { t_served = 0; t_shed = 0 } in
            Hashtbl.replace t.tenants key c;
            c)
      in
      match outcome with
      | `Served -> c.t_served <- c.t_served + 1
      | `Shed -> c.t_shed <- c.t_shed + 1)

let tenant_counts t =
  Mutex.lock t.tmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.tmutex)
    (fun () ->
      Hashtbl.fold (fun k c acc -> (k, c.t_served, c.t_shed) :: acc) t.tenants []
      |> List.sort compare)

(* Prometheus text exposition 0.0.4 label-value escaping: backslash,
   double quote and newline must be escaped inside the quotes. *)
let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_prometheus t ?(mode = 0) ~queue_depth ~inflight ~ready () =
  let b = Buffer.create 2048 in
  let header ?(typ = "counter") name help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  let sample ?typ name help value =
    header ?typ name help;
    Buffer.add_string b (Printf.sprintf "%s %d\n" name value)
  in
  sample "lopsided_server_accepted_total" "Requests admitted to the in-flight queue."
    (accepted t);
  sample "lopsided_server_recorded_total"
    "Admitted requests captured into the replay ring (--record)." (recorded t);
  sample "lopsided_server_shed_total" "Requests answered 503 because the queue was full."
    (shed t);
  sample "lopsided_server_rate_limited_total"
    "Requests answered 429 by the per-client token bucket." (rate_limited t);
  sample "lopsided_server_quarantined_total"
    "Requests answered 429 at admission because their template was quarantined."
    (quarantine_429 t);
  sample "lopsided_server_drained_total"
    "Queued requests flushed with 503 during graceful drain." (drained t);
  sample "lopsided_server_worker_restarts_total"
    "Worker domains restarted by the supervisor after a crash." (worker_restarts t);
  sample "lopsided_server_bad_requests_total" "Requests rejected by the HTTP parser."
    (bad_requests t);
  sample "lopsided_server_stale_served_total"
    "Requests answered from the result cache past freshness (Warning: 110)."
    (stale_served t);
  sample "lopsided_server_skeletons_total"
    "Requests answered with a skeleton-level generation under brownout."
    (skeletons t);
  sample "lopsided_server_refreshes_total"
    "Background stale-while-revalidate refresh jobs enqueued." (refreshes t);
  sample "lopsided_server_tenant_rejected_total"
    "Requests answered 429 because their tenant's bulkhead was full."
    (tenant_rejected t);
  sample "lopsided_server_keepalive_reused_total"
    "Requests served on an already-established keep-alive connection."
    (keepalive_reused t);
  sample "lopsided_server_store_refused_total"
    "Store requests answered 503 by the store tier itself (I/O error, quarantine, write \
     quorum unavailable)."
    (store_refused t);
  sample ~typ:"gauge" "lopsided_server_mode"
    "Brownout mode: 0 normal, 1 degraded, 2 critical." mode;
  sample ~typ:"gauge" "lopsided_server_queue_depth" "Requests queued but not yet started."
    queue_depth;
  sample ~typ:"gauge" "lopsided_server_inflight" "Requests currently being generated."
    inflight;
  sample ~typ:"gauge" "lopsided_server_ready" "1 when /readyz answers 200." (if ready then 1 else 0);
  (match tenant_counts t with
  | [] -> ()
  | tenants ->
    header "lopsided_server_tenant_served_total"
      "Requests admitted, by tenant.";
    List.iter
      (fun (name, served, _) ->
        Buffer.add_string b
          (Printf.sprintf "lopsided_server_tenant_served_total{tenant=\"%s\"} %d\n"
             (escape_label_value name) served))
      tenants;
    header "lopsided_server_tenant_shed_total"
      "Requests rejected at admission, by tenant.";
    List.iter
      (fun (name, _, shed) ->
        Buffer.add_string b
          (Printf.sprintf "lopsided_server_tenant_shed_total{tenant=\"%s\"} %d\n"
             (escape_label_value name) shed))
      tenants);
  Buffer.contents b
