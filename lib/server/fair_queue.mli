(** Weighted fair queueing for admission, keyed by tenant.

    Each tenant gets its own FIFO plus a bulkhead cap; the dequeue side
    interleaves tenants by virtual finish time
    ([max(vnow, tenant_last) + 1/weight], ties broken by arrival), so a
    flooding tenant queues behind its own earlier work while everyone
    else is served within their fair share. With a single tenant the
    order is exactly arrival order — the PR-4 global FIFO, preserved.

    Rejections distinguish {e whose} problem it is: [`Queue_full] means
    the server as a whole is saturated (503), [`Tenant_full] means this
    tenant hit its own bulkhead (429 — their flood, their refusals).

    Thread-safe; [pop] blocks; [close] wakes every popper. *)

type 'a t

val create : capacity:int -> tenant_cap:int -> 'a t
(** [capacity] is the global bound, [tenant_cap] the per-tenant
    bulkhead; both are clamped to at least 1, and [tenant_cap] to at
    most [capacity]. *)

val push :
  'a t ->
  tenant:string ->
  ?weight:float ->
  'a ->
  [ `Accepted | `Shed of [ `Queue_full | `Tenant_full ] ]
(** Enqueue under [tenant]. [weight] (default 1) scales the tenant's
    share: a tenant at weight 0.25 is served a quarter as often under
    contention — the background-refresh lane. The weight is fixed by the
    tenant's first queued item and applies while it has work queued. A
    closed queue sheds [`Queue_full]. *)

val pop : 'a t -> 'a option
(** Blocking: the queued item with the smallest virtual finish time, or
    [None] once the queue is closed and drained of nothing — closed
    queues report [None] immediately. *)

val close : 'a t -> unit

val flush : 'a t -> 'a list
(** Remove and return everything queued, in the order {!pop} would have
    served it. *)

val depth : 'a t -> int
val tenant_depth : 'a t -> string -> int
val closed : 'a t -> bool
