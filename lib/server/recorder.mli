(** Request record/replay: a ring buffer of admitted requests on the
    server's admission path, serializable to a capture file that
    [awbserve replay] and the bench chaos harness drive back at any
    speed — plus the end-of-run invariant checker both use to assert
    conservation. *)

type entry = {
  e_ts : float;
      (** seconds, monotonic at capture; zero-based after {!load} *)
  e_meth : string;
  e_path : string;
  e_tenant : string;
  e_deadline_ms : int;  (** 0 = no client deadline *)
  e_body : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] (default 65536) most recent entries. *)

val entry :
  ?ts:float ->
  meth:string ->
  path:string ->
  tenant:string ->
  deadline_ms:int ->
  body:string ->
  unit ->
  entry
(** [ts] defaults to [Clock.now ()]. *)

val record : t -> entry -> unit
(** O(1), one mutex — safe on the admission path. When the ring is full
    the oldest entry is overwritten (counted in {!dropped}). With a
    sink attached, every [every]-th record additionally flushes the
    serialized backlog to the capture file. *)

val attach_sink : t -> path:string -> ?every:int -> unit -> unit
(** Mirror every subsequent record into [path] (truncated, magic
    written immediately), flushing each [every] (default 64) records —
    so at most [every - 1] acknowledged captures are lost to a crash,
    instead of the whole ring. Replaces (and finalizes) any previous
    sink. *)

val detach_sink : t -> int
(** Flush the backlog, close the file, return entries written. No-op
    ([0]) without a sink. *)

val length : t -> int
val dropped : t -> int

val entries : t -> entry list
(** Current contents in arrival order. *)

val save : t -> string -> int
(** Write the capture file; returns the number of entries written. *)

val load : string -> entry list
(** Parse a capture file; timestamps are re-based so the first entry is
    at 0. A torn tail (a sink writer crashed between flushes) is
    tolerated: the parsed prefix is returned. Raises
    [Frame.Protocol_error] only on a bad magic. *)

(** {1 End-of-run invariants} *)

type ledger = {
  sent : int;  (** requests put on the wire *)
  responses : int;  (** complete HTTP responses read back *)
  conn_errors : int;  (** connections that died before a response *)
  status_counts : (int * int) list;  (** status code → count *)
}

val scrape_counter : string -> string -> int
(** [scrape_counter exposition name] sums every sample of [name]
    (labeled series included) in a Prometheus text exposition. *)

val check_invariants : ledger:ledger -> metrics_text:string -> string list
(** Conservation over a replayed run: every request resolved exactly
    once (response or connection error); 200s never exceed what the
    server admitted plus stale cache hits; 429/503s never exceed the
    refusals it counted; the buffer pool's books balance after drain
    ([created = idle + dropped]). Returns violations (empty = clean). *)

val check_store_invariants :
  acked:(string * string) list ->
  recovered:(string * string) list ->
  escapes:int ->
  string list
(** Store conservation after drain + reopen: [recovered] must be
    exactly [acked] — every acknowledged [(doc, hash)] present with
    that hash (no lost acked write), nothing recovered that was never
    acknowledged (no resurrection), and [escapes] (read-time checksum
    failures served) must be zero. Returns violations. *)
