(* The Service error taxonomy mapped onto HTTP, shared by the
   single-process front end (server.ml) and the shard backends
   (shard.ml) so a client sees the same status, code, and headers for a
   given failure whether it was generated locally or behind a shard
   boundary. *)

let retry_after s = [ ("Retry-After", string_of_int (max 1 (int_of_float (Float.ceil s)))) ]

(* Whole-tier unavailability (no shard can take the request): 503 +
   Retry-After + the structured JSON body, built here so the shard
   front answers exactly like the single-process server would. *)
let unavailable ~code ~message ~request_id ~retry_after_s =
  ( 503,
    ("Content-Type", "application/json") :: retry_after retry_after_s,
    Http.error_body ~code ~message ~request_id )

(* Resource trips keep their resource:* code in the JSON body so a
   client can tell a fuel trip from a deadline from a quarantine without
   parsing prose. *)
let of_error (e : Service.error) =
  match e with
  | Service.Template_error m -> (400, "bad-template", m, [])
  | Service.Model_error m -> (400, "bad-model", m, [])
  | Service.Generation_failed { code; message; location } ->
    let message = if location = "" then message else message ^ " at " ^ location in
    (422, (if code = "" then "generation-failed" else code), message, [])
  | Service.Resource_exhausted { resource; message } ->
    (422, Xquery.Errors.resource_code resource, message, [])
  | Service.Deadline_exceeded { elapsed_s; deadline_s } ->
    ( 504,
      "resource:deadline",
      Printf.sprintf "deadline exceeded: %.1f ms elapsed against a %.1f ms budget"
        (elapsed_s *. 1000.) (deadline_s *. 1000.),
      [] )
  | Service.Quarantined { template; retry_after_s } ->
    ( 429,
      "quarantined",
      Printf.sprintf "template %s is quarantined" template,
      retry_after retry_after_s )
  | Service.Internal_error m -> (500, "internal", m, [])
