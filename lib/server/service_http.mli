(** {!Service.error} mapped onto HTTP, shared by the single-process
    server and the shard backends so both sides of the shard boundary
    answer a given failure identically. *)

val retry_after : float -> (string * string) list
(** A [Retry-After] header, seconds rounded up, at least 1. *)

val of_error : Service.error -> int * string * string * (string * string) list
(** [(status, code, message, extra_headers)]. *)

val unavailable :
  code:string ->
  message:string ->
  request_id:string ->
  retry_after_s:float ->
  int * (string * string) list * string
(** A complete 503 reply — status, headers ([Content-Type] +
    [Retry-After]), structured JSON body — for "no shard can take
    this" outcomes. *)
