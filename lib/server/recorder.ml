(* Request recorder: a ring buffer of admitted requests, serializable
   to a capture file the replayer (awbserve replay, bench chaos) can
   drive back at any speed.

   The ring lives on the server's admission path, so writes must be
   cheap and bounded: one mutex, one array slot, no IO. When the ring
   wraps the oldest entries fall off (counted in [dropped]); [save]
   writes the survivors in arrival order. Timestamps are monotonic
   (Clock.now) and normalized to the first entry on [load], so replay
   cadence is the recorded cadence regardless of when the capture
   started.

   File format: a magic line, then one length-prefixed record per entry
   using Frame's codec (the same u32/lp primitives the shard transport
   uses) — record = lp ts-microseconds-decimal, lp method, lp path,
   lp tenant, u32 deadline-ms, lp body. *)

type entry = {
  e_ts : float;  (* seconds; monotonic at capture, zero-based after load *)
  e_meth : string;
  e_path : string;
  e_tenant : string;
  e_deadline_ms : int;
  e_body : string;
}

(* Incremental durability: a sink mirrors every recorded entry into an
   append-only capture file, flushed every [every] records, so a capture
   survives a server crash — the ring alone only survives a drain. The
   file may end in a torn record (a crash mid-flush); [load] tolerates
   that by keeping the parsed prefix. *)
type sink = {
  s_oc : out_channel;
  s_every : int;
  s_buf : Buffer.t;  (* serialized entries not yet written *)
  mutable s_pending : int;  (* entries in s_buf *)
  mutable s_written : int;  (* entries flushed to the file *)
}

type t = {
  ring : entry option array;
  mutable next : int;
  mutable count : int;  (* entries currently held, <= capacity *)
  mutable dropped : int;  (* overwritten by ring wrap *)
  mutable sink : sink option;
  mutex : Mutex.t;
}

let create ?(capacity = 65536) () =
  {
    ring = Array.make (max 1 capacity) None;
    next = 0;
    count = 0;
    dropped = 0;
    sink = None;
    mutex = Mutex.create ();
  }

let entry ?(ts = Clock.now ()) ~meth ~path ~tenant ~deadline_ms ~body () =
  { e_ts = ts; e_meth = meth; e_path = path; e_tenant = tenant; e_deadline_ms = deadline_ms; e_body = body }

let magic = "AWBREC2\n"

let add_entry b e =
  let r = Buffer.create (String.length e.e_body + 64) in
  Frame.add_lp r (Printf.sprintf "%.0f" (e.e_ts *. 1e6));
  Frame.add_lp r e.e_meth;
  Frame.add_lp r e.e_path;
  Frame.add_lp r e.e_tenant;
  Frame.add_u32 r e.e_deadline_ms;
  Frame.add_lp r e.e_body;
  Frame.add_u32 b (Buffer.length r);
  Buffer.add_buffer b r

let sink_flush s =
  if s.s_pending > 0 then begin
    output_string s.s_oc (Buffer.contents s.s_buf);
    flush s.s_oc;
    s.s_written <- s.s_written + s.s_pending;
    s.s_pending <- 0;
    Buffer.clear s.s_buf
  end

let record t e =
  Mutex.lock t.mutex;
  if t.ring.(t.next) <> None then t.dropped <- t.dropped + 1;
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  if t.count < Array.length t.ring then t.count <- t.count + 1;
  (match t.sink with
  | None -> ()
  | Some s ->
    add_entry s.s_buf e;
    s.s_pending <- s.s_pending + 1;
    if s.s_pending >= s.s_every then sink_flush s);
  Mutex.unlock t.mutex

let attach_sink t ~path ?(every = 64) () =
  let oc = open_out_bin path in
  output_string oc magic;
  flush oc;
  let s =
    { s_oc = oc; s_every = max 1 every; s_buf = Buffer.create 4096; s_pending = 0; s_written = 0 }
  in
  Mutex.lock t.mutex;
  (match t.sink with
  | Some old ->
    (* Replacing a sink finalizes the old one. *)
    sink_flush old;
    close_out_noerr old.s_oc
  | None -> ());
  t.sink <- Some s;
  Mutex.unlock t.mutex

let detach_sink t =
  Mutex.lock t.mutex;
  let written =
    match t.sink with
    | None -> 0
    | Some s ->
      sink_flush s;
      close_out_noerr s.s_oc;
      t.sink <- None;
      s.s_written
  in
  Mutex.unlock t.mutex;
  written

let length t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

let dropped t =
  Mutex.lock t.mutex;
  let n = t.dropped in
  Mutex.unlock t.mutex;
  n

(* Survivors in arrival order: the ring's oldest entry sits at [next]
   once the ring has wrapped, at 0 before. *)
let entries t =
  Mutex.lock t.mutex;
  let cap = Array.length t.ring in
  let start = if t.count < cap then 0 else t.next in
  let out =
    List.init t.count (fun i ->
        match t.ring.((start + i) mod cap) with Some e -> e | None -> assert false)
  in
  Mutex.unlock t.mutex;
  out

let save t path =
  let es = entries t in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  List.iter (add_entry b) es;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents b));
  List.length es

let load path =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    Frame.perr "not a capture file (bad magic): %s" path;
  let pos = ref mlen in
  let out = ref [] in
  let torn = ref false in
  (* A capture written by the incremental sink can end mid-record (the
     writer crashed between flushes). That torn tail is expected, not an
     error: keep every record that parses and stop at the first that
     doesn't reach EOF intact. *)
  while (not !torn) && !pos < String.length data do
    match
      let rlen = Frame.get_u32 data pos in
      if !pos + rlen > String.length data then Frame.perr "truncated capture record";
      let p = ref !pos in
      let ts_us = Frame.get_lp data p in
      let meth = Frame.get_lp data p in
      let path' = Frame.get_lp data p in
      let tenant = Frame.get_lp data p in
      let deadline_ms = Frame.get_u32 data p in
      let body = Frame.get_lp data p in
      (rlen, ts_us, meth, path', tenant, deadline_ms, body)
    with
    | exception Frame.Protocol_error _ -> torn := true
    | rlen, ts_us, meth, path', tenant, deadline_ms, body ->
      pos := !pos + rlen;
      out :=
        {
          e_ts = float_of_string ts_us /. 1e6;
          e_meth = meth;
          e_path = path';
          e_tenant = tenant;
          e_deadline_ms = deadline_ms;
          e_body = body;
        }
        :: !out
  done;
  match List.rev !out with
  | [] -> []
  | first :: _ as es ->
    (* Zero-base the timeline so replay starts immediately. *)
    List.map (fun e -> { e with e_ts = e.e_ts -. first.e_ts }) es

(* ------------------------------------------------------------------ *)
(* End-of-run invariant checker                                        *)
(* ------------------------------------------------------------------ *)

(* Conservation over a replayed run, from the client ledger and a final
   /metrics scrape. Violations are returned, not raised: the harness
   (bench gate, CI job, replay CLI) decides how loudly to fail. *)

type ledger = {
  sent : int;  (* requests put on the wire *)
  responses : int;  (* complete HTTP responses read back *)
  conn_errors : int;  (* requests whose connection died before a response *)
  status_counts : (int * int) list;  (* status code -> count *)
}

let scrape_counter text name =
  (* Sum every sample line for [name] (labeled series included). *)
  String.split_on_char '\n' text
  |> List.fold_left
       (fun acc line ->
         if
           String.length line > String.length name
           && String.sub line 0 (String.length name) = name
           && (line.[String.length name] = ' ' || line.[String.length name] = '{')
         then
           match String.rindex_opt line ' ' with
           | None -> acc
           | Some i -> (
             match
               int_of_string_opt
                 (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
             with
             | Some v -> acc + v
             | None -> acc)
         else acc)
       0

let check_invariants ~ledger ~metrics_text =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (* 1. Every request put on the wire resolved exactly once: a complete
     response or a connection-level error, never both, never neither. *)
  if ledger.responses + ledger.conn_errors <> ledger.sent then
    fail "response conservation: %d sent <> %d responses + %d connection errors"
      ledger.sent ledger.responses ledger.conn_errors;
  let sum_statuses p =
    List.fold_left (fun acc (st, n) -> if p st then acc + n else acc) 0 ledger.status_counts
  in
  let counted = sum_statuses (fun _ -> true) in
  if counted <> ledger.responses then
    fail "status ledger: %d statuses recorded for %d responses" counted ledger.responses;
  (* 2. Server-side conservation: everything the server admitted or
     refused adds up to the generate traffic it saw. The server counts
     accepted (admitted to the queue), shed/drained (503), rate- and
     tenant-limited (429), quarantined (429), bad requests (400), and
     stale cache hits served inline; a sharded front additionally
     answers 503 from routing when no shard can take a request. *)
  let c name = scrape_counter metrics_text name in
  let accepted = c "lopsided_server_accepted_total" in
  let refused =
    c "lopsided_server_shed_total"
    + c "lopsided_server_rate_limited_total"
    + c "lopsided_server_tenant_rejected_total"
    + c "lopsided_server_quarantined_total"
    + c "lopsided_shard_unavailable_total"
    (* Store-tier refusals: quorum unavailable, I/O error, quarantined
       data — 503s the store itself decided on. *)
    + c "lopsided_server_store_refused_total"
  in
  let stale = c "lopsided_server_stale_served_total" in
  let bad = c "lopsided_server_bad_requests_total" in
  let ok_responses = sum_statuses (fun st -> st = 200) in
  let refused_responses = sum_statuses (fun st -> st = 429 || st = 503) in
  if ok_responses > accepted + stale then
    fail "served conservation: %d OK responses but only %d accepted + %d stale"
      ok_responses accepted stale;
  if refused_responses > refused + bad then
    fail "shed conservation: %d 429/503 responses but only %d refusals counted"
      refused_responses refused;
  (* 3. No buffer leaks: every pooled parse/serialize buffer checked
     out over the run went back (or was legitimately dropped oversize —
     those leave [created - idle] high, so the gauge pair is compared
     with slack only for buffers still attached to live connections,
     of which there are none after drain). *)
  let pool_created = c "lopsided_server_buffers_created_total" in
  let pool_idle = c "lopsided_server_buffers_idle" in
  let pool_dropped = c "lopsided_server_buffers_dropped_total" in
  if pool_created > 0 && pool_idle + pool_dropped < pool_created then
    fail "buffer pool leak: %d created, %d idle + %d dropped after drain" pool_created
      pool_idle pool_dropped;
  List.rev !violations

(* Store conservation after drain + reopen: the recovered store must be
   exactly the acknowledged writes — every acked (doc, hash) present
   with that hash, nothing present that was never acked, and no
   checksum failure served as a read. Inputs are plain (doc, hash)
   lists so the harness decides where they come from (client ledger on
   one side, [Store.list_docs] after reopen on the other). *)
let check_store_invariants ~acked ~recovered ~escapes =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  List.iter
    (fun (doc, hash) ->
      match List.assoc_opt doc recovered with
      | None -> fail "lost acked write: %s" doc
      | Some h when h <> hash ->
        fail "content mismatch on %s: acked hash %s, recovered %s" doc hash h
      | Some _ -> ())
    acked;
  List.iter
    (fun (doc, _) ->
      if not (List.mem_assoc doc acked) then fail "resurrected unacked write: %s" doc)
    recovered;
  if escapes <> 0 then fail "%d checksum escapes served to readers" escapes;
  List.rev !violations
