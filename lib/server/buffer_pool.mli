(** Pool of reusable [Buffer.t] scratch buffers.

    Connections check a buffer out on accept, clear it between the
    requests they serve, and check it back in on close — so steady-state
    keep-alive traffic parses and serializes with zero buffer
    allocation. Thread-safe. *)

type t

val create : ?initial_size:int -> ?max_idle:int -> ?max_buffer_bytes:int -> unit -> t
(** [create ()] makes an empty pool. [initial_size] (default 4096) sizes
    freshly allocated buffers; at most [max_idle] (default 256) buffers
    are kept idle; buffers that grew past [max_buffer_bytes] (default
    1 MiB) are dropped on checkin rather than retained. *)

val checkout : t -> Buffer.t
(** Take a cleared buffer from the pool, allocating if none is idle. *)

val checkin : t -> Buffer.t -> unit
(** Return a buffer to the pool. Safe to drop (never checkin) a buffer
    — the pool holds no reference to checked-out buffers. *)

val with_buf : t -> (Buffer.t -> 'a) -> 'a
(** [with_buf t f] checks out a buffer for the duration of [f]. *)

val created : t -> int
(** Buffers allocated because the pool was empty at checkout. *)

val reused : t -> int
(** Checkouts satisfied from the idle pool. *)

val idle : t -> int
(** Buffers currently idle in the pool. *)

val dropped : t -> int
(** Buffers released on checkin instead of retained (grew oversize, or
    the idle cap was reached). With this counted, the pool's books
    balance: after every checkout has been checked back in,
    [created = idle + dropped] — the leak invariant the chaos
    harness asserts after drain. *)
