(** Minimal HTTP/1.1 on raw [Unix] file descriptors.

    Just enough protocol for the front end — request line, headers, a
    [Content-Length] body, and one response per connection (the server
    always answers [Connection: close]) — with the robustness limits
    that matter under hostile traffic: hard caps on header and body
    size, reads that honour the socket receive timeout, and an optional
    whole-request read deadline so a drip-feed client (1 byte per
    interval, each recv just inside the socket timeout) costs a bounded
    slice of the reading thread, never a hung connection. *)

type request = {
  meth : string;  (** uppercased: ["GET"], ["POST"], ... *)
  path : string;  (** the path component, percent-decoded *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

exception Bad_request of string
(** The bytes on the wire don't parse as an acceptable request (or blow
    a size cap). The caller answers 400 (413 for body-cap trips are
    folded in here too, with a message saying so). *)

exception Timeout
(** The [deadline_ns] budget passed to {!read_request} expired before a
    full request arrived. The caller answers 408 and closes. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val read_request :
  ?max_header_bytes:int ->
  ?max_body_bytes:int ->
  ?deadline_ns:int ->
  Unix.file_descr ->
  request option
(** Read and parse one request. [None] on a clean EOF before any bytes
    (client connected and left). Raises {!Bad_request} on malformed or
    oversized input, {!Timeout} when [deadline_ns] (absolute,
    {!Clock.now_ns} scale; a total budget across every recv of head and
    body) passes before the request is complete, and lets
    [Unix.Unix_error] from a receive timeout propagate (the caller
    treats it as a dead client). Defaults: 8 KiB headers, 4 MiB body,
    no deadline. *)

val reason_phrase : int -> string

val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  body:string ->
  unit ->
  unit
(** Serialize one response with [Content-Length] and
    [Connection: close], best-effort: write errors (client already gone)
    are swallowed — there is nobody left to tell. *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal. *)

val error_body : code:string -> message:string -> request_id:string -> string
(** The structured JSON error document every non-2xx generation answer
    carries: [{"error":{"code":...,"message":...},"request_id":...}]. *)
