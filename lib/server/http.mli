(** Minimal HTTP/1.1 on raw [Unix] file descriptors.

    Just enough protocol for the front end — request line, headers, a
    [Content-Length] body — with persistent-connection support: reads
    hand back any pipelined overshoot so the caller can parse the next
    request without touching the socket, and responses can be written
    [Connection: keep-alive]. Robustness limits that matter under
    hostile traffic stay on: hard caps on header and body size, reads
    that honour the socket receive timeout, and an optional
    whole-request read deadline so a drip-feed client (1 byte per
    interval, each recv just inside the socket timeout) costs a bounded
    slice of the reading thread, never a hung connection. *)

type request = {
  meth : string;  (** uppercased: ["GET"], ["POST"], ... *)
  path : string;  (** the path component, percent-decoded *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
}

exception Bad_request of string
(** The bytes on the wire don't parse as an acceptable request (or blow
    a size cap). The caller answers 400 (413 for body-cap trips are
    folded in here too, with a message saying so). *)

exception Timeout
(** The [deadline_ns] budget passed to {!read_request} expired before a
    full request arrived. The caller answers 408 and closes. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val wants_keep_alive : request -> bool
(** The connection persistence the client asked for: HTTP/1.1 defaults
    to keep-alive unless [Connection: close]; HTTP/1.0 defaults to close
    unless [Connection: keep-alive]. The server may still close (cap
    reached, draining) — this is the client's preference, not a
    promise. *)

val read_request :
  ?max_header_bytes:int ->
  ?max_body_bytes:int ->
  ?deadline_ns:int ->
  ?pending:string ->
  ?buf:Buffer.t ->
  Unix.file_descr ->
  (request * string) option
(** Read and parse one request. Returns the request plus any leftover
    bytes that arrived beyond its body — the start of the next pipelined
    request, which the caller must feed back as [pending] on its next
    call instead of losing it. [buf] is a reusable scratch buffer for
    head accumulation (cleared here; pooled by the connection so
    steady-state keep-alive traffic allocates no buffers). [None] on a
    clean EOF before any bytes (client connected and left, or keep-alive
    idle close). Raises {!Bad_request} on malformed or oversized input,
    {!Timeout} when [deadline_ns] (absolute, {!Clock.now_ns} scale; a
    total budget across every recv of head and body) passes before the
    request is complete, and lets [Unix.Unix_error] from a receive
    timeout propagate (the caller treats it as a dead client).
    Defaults: 8 KiB headers, 4 MiB body, no deadline, empty [pending]. *)

val reason_phrase : int -> string

val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  ?buf:Buffer.t ->
  body:string ->
  unit ->
  bool
(** Serialize one response with [Content-Length] and a [Connection]
    header ([close] by default, [keep-alive] when [keep_alive] is true),
    batched into a single write — head and body leave in one syscall in
    the common case. [buf] is a reusable serialize buffer (cleared
    here). Write errors never raise (the client may simply be gone);
    the result says whether the full response went out. [false] means
    the stream is truncated mid-response — a keep-alive caller MUST
    close the connection rather than recycle it, or the next response
    would be read as the remainder of this one's body. *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal. *)

val error_body : code:string -> message:string -> request_id:string -> string
(** The structured JSON error document every non-2xx generation answer
    carries: [{"error":{"code":...,"message":...},"request_id":...}]. *)
