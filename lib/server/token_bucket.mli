(** Per-client token-bucket rate limiting, keyed by peer address.

    Each key owns a bucket holding up to [burst] tokens that refills at
    [rate] tokens/second; admitting a request spends one token. An empty
    bucket means the caller answers 429 and the request never costs a
    queue slot. The table self-prunes: buckets idle long enough to have
    refilled completely are dropped, so address churn can't grow memory
    without bound. *)

type t

val create : rate:float -> burst:float -> t
(** [rate <= 0.] disables limiting — {!admit} always answers [true]. *)

val admit : t -> key:string -> now:float -> bool
(** Spend one token from [key]'s bucket if one is available. [now] is
    monotonic seconds ({!Clock.now}); passing it in keeps the bucket
    testable without sleeping. *)

val retry_after_s : t -> float
(** How long until an empty bucket holds a whole token again — the
    [Retry-After] value for a 429. *)

val size : t -> int
(** Live buckets (post-prune); exposed for tests. *)
