(** Consistent-hash ring mapping request keys to shard ids.

    Virtual-node ring (FNV-1a 64): the same key always routes to the
    same shard, adding or removing one shard remaps only ~1/N of keys
    (the rest of the fleet's Service caches stay warm), and failover is
    a deterministic clockwise walk every caller agrees on. Values are
    immutable — topology changes build a new ring. *)

type t

val create : ?replicas:int -> int list -> t
(** [create ids] builds a ring over the given shard ids with [replicas]
    virtual nodes per shard (default 64). Duplicate ids are collapsed. *)

val shards : t -> int list
(** The shard ids on the ring, sorted ascending. *)

val route : t -> string -> int
(** The home shard for a key. Raises [Invalid_argument] on an empty
    ring. *)

val route_excluding : t -> exclude:(int -> bool) -> string -> int option
(** The first shard clockwise from the key's ring position for which
    [exclude] is false — the home shard when healthy, its successor when
    not. [None] when every shard is excluded. *)

val failover_chain : ?limit:int -> t -> string -> int list
(** The key's distinct shards in ring-walk order — home first, then
    each successor {!route_excluding} would fall to as shards are
    excluded. At most [limit] entries (default: every shard). *)

val add : t -> int -> t
val remove : t -> int -> t

val hash64 : string -> int64
(** The ring's hash, exposed for tests and for callers that want to
    pre-hash keys. *)
