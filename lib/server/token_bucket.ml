(* Token buckets per peer address.

   The accept loop asks [admit] once per /generate request. Buckets are
   small mutable records in one hashtable behind a mutex — admission is
   a handful of float ops, contention is only ever the accept loop vs a
   test thread. A hostile or misconfigured swarm of distinct addresses
   can't balloon the table: every [prune_every] admissions, buckets that
   have been idle long enough to refill completely (i.e., whose state is
   indistinguishable from a fresh bucket) are dropped. *)

type bucket = { mutable tokens : float; mutable last : float }

type t = {
  rate : float;
  burst : float;
  mutex : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
  mutable admissions : int; (* admit calls since the last prune *)
}

let prune_every = 1024

let create ~rate ~burst =
  { rate; burst = Float.max burst 1.; mutex = Mutex.create (); buckets = Hashtbl.create 64; admissions = 0 }

let prune_locked t ~now =
  let idle_cutoff = t.burst /. t.rate in
  let dead =
    Hashtbl.fold
      (fun key b acc -> if now -. b.last >= idle_cutoff then key :: acc else acc)
      t.buckets []
  in
  List.iter (Hashtbl.remove t.buckets) dead

let admit t ~key ~now =
  if t.rate <= 0. then true
  else begin
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        t.admissions <- t.admissions + 1;
        if t.admissions >= prune_every then begin
          t.admissions <- 0;
          prune_locked t ~now
        end;
        let b =
          match Hashtbl.find_opt t.buckets key with
          | Some b ->
            b.tokens <- Float.min t.burst (b.tokens +. ((now -. b.last) *. t.rate));
            b.last <- now;
            b
          | None ->
            let b = { tokens = t.burst; last = now } in
            Hashtbl.add t.buckets key b;
            b
        in
        if b.tokens >= 1. then begin
          b.tokens <- b.tokens -. 1.;
          true
        end
        else false)
  end

let retry_after_s t = if t.rate <= 0. then 0. else Float.max 0.001 (1. /. t.rate)

let size t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Hashtbl.length t.buckets)
