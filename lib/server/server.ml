(* The HTTP front end: admission control first, work second.

   Thread/domain layout:

     acceptor (systhread) — accept only. Accepted connections go into a
       second bounded queue; when even that is full (every reader held
       by a slow client) the connection is refused with 503 without
       reading a byte. The acceptor never blocks on a client, so
       admission decisions and the drain trigger stay responsive no
       matter how traffic behaves.
     readers (systhreads) — pop a connection, read and parse the
       request under a whole-request deadline, then route. Everything
       that can be answered without generation work (health, readiness,
       metrics, rate-limit 429s, quarantine 429s, queue-full 503s) is
       answered right here. Admitted jobs go into the bounded job queue.
     workers (OCaml domains, max_inflight of them) — pop, generate via
       Service.run (or forward to a shard backend in cluster mode),
       answer. A worker that dies (the injected Crash fault, or a
       genuine bug) is noticed and replaced by the supervisor; the
       process survives.
     supervisor (systhread) — polls worker slots, joins finished
       domains, respawns crashed ones, counts restarts.
     idle watcher (systhread, keep-alive only) — holds connections
       between requests so readers never block on an idle socket;
       readable connections go back to the reader queue, idle-timeout
       expiries are closed.

   Connections are persistent when keep-alive is enabled: each carries a
   pooled parse/serialize buffer for its whole life (cleared between
   requests, never reallocated), pipelined bytes that arrive beyond one
   request's body are carried to the next parse, and ownership moves
   reader -> worker -> (reader queue | idle watcher) so exactly one
   thread touches a connection at a time.

   Overload never queues invisibly: the queue has a hard capacity and
   everything beyond it is refused with 503 + Retry-After the moment it
   arrives. Sheds are cheap (no parse of the template, no worker, no
   service call), which is what keeps goodput flat when offered load is
   a multiple of capacity.

   Graceful drain (SIGTERM or Server.drain): flip readiness, refuse new
   work, 503 the queued-but-unstarted, tighten every in-flight
   evaluation's deadline through Service.preempt_inflight so overruns
   die with a structured resource:deadline, then join everything and
   close the listener. *)

module Fault = Service.Fault

type config = {
  host : string;
  port : int;
  max_inflight : int;
  queue_cap : int;
  tenant_cap : int;
  rate : float;
  burst : float;
  default_deadline_s : float option;
  drain_deadline_s : float;
  shed_unready_threshold : float;
  io_timeout_s : float;
  max_body_bytes : int;
  default_engine : Docgen.engine;
  model : Service.model_source option;
  fault : Fault.config option;
  brownout : Brownout.config option;
  keepalive : bool;
  idle_timeout_s : float;
  max_conn_requests : int;
  recorder : Recorder.t option;
      (* when set, admitted /generate requests are captured into this
         ring for later replay (awbserve --record) *)
  store : Store.t option;
      (* the persistent collection store behind /collections/*; None
         answers those routes 503 no-store *)
  repl : Store.Replica.t option;
      (* when set, /collections/* is served by the replicated cluster
         instead of [store]: writes are quorum-acked, reads follow the
         primary through failover *)
  scrub_interval_s : float;
      (* > 0 starts a background thread running one incremental scrub
         pass against the local store on this cadence (the replicated
         backends scrub themselves; see Replica.config.scrub_interval_s) *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_inflight = 4;
    queue_cap = 64;
    (* Clamped to queue_cap by Fair_queue: the default is "no per-tenant
       bulkhead", i.e. exactly the PR-4 single global FIFO bound. *)
    tenant_cap = max_int;
    rate = 0.;
    burst = 8.;
    default_deadline_s = None;
    drain_deadline_s = 5.;
    shed_unready_threshold = 0.9;
    io_timeout_s = 2.;
    max_body_bytes = 4 * 1024 * 1024;
    default_engine = `Host;
    model = None;
    fault = None;
    brownout = None;
    (* Off by default: one request per connection, exactly the PR-4/5
       wire behaviour. Clients that read to EOF keep working. *)
    keepalive = false;
    idle_timeout_s = 5.;
    max_conn_requests = 1000;
    recorder = None;
    store = None;
    repl = None;
    scrub_interval_s = 0.;
  }

(* The pseudo-tenant that stale-while-revalidate refresh jobs queue
   under. Low weight: under contention the fair queue serves it a
   quarter as often as a unit-weight tenant, so refreshes never crowd
   out interactive work. *)
let refresh_tenant = "~refresh"

(* A live client connection. The buffer is checked out of the pool at
   accept and travels with the connection until close; [cpending] is
   pipelined overshoot from the last parse, already received but not yet
   parsed. Ownership is exclusive: at any moment exactly one of the
   reader queue, a worker, or the idle watcher holds the connection. *)
type conn = {
  cfd : Unix.file_descr;
  cpeer : string;
  cbuf : Buffer.t;
  mutable cpending : string;
  mutable cserved : int;  (* requests answered on this connection *)
}

type job = {
  jconn : conn option;
      (* None = background refresh: regenerate and let the service's
         result cache absorb the output; no client is waiting. *)
  jka : bool;  (* keep the connection open after answering *)
  jreq : Http.request;
  jid : string;
  jarrival : float; (* Clock.now at admission; queue wait counts against the deadline *)
  jtenant : string;
  jlevel : Docgen.Spec.level;
}

(* One worker domain's lifecycle, owned by the supervisor. [finished]
   is the worker's last write before its domain terminates; [crashed]
   distinguishes a death from a clean queue-closed exit; [retired] is
   set by the supervisor once the domain is joined and no replacement
   was spawned. *)
type slot = {
  mutable domain : unit Domain.t option;
  finished : bool Atomic.t;
  crashed : bool Atomic.t;
  retired : bool Atomic.t;
}

type t = {
  config : config;
  svc : Service.t;
  cluster : Shard.t option;
  model : Service.model_source;
  metrics : Metrics.t;
  buffers : Buffer_pool.t;
  bucket : Token_bucket.t;
  brownout : Brownout.t option;
  queue : job Fair_queue.t;
  conns : conn Admission.t;
      (* connections with (possible) bytes to read, feeding the readers *)
  busy : int Atomic.t; (* jobs a worker is currently handling *)
  reqno : int Atomic.t;
  sigterm : bool Atomic.t;
  sighup : bool Atomic.t;
  drain_started : bool Atomic.t;
  is_draining : bool Atomic.t;
  drain_deadline_ns : int Atomic.t; (* 0 = not draining *)
  stop_accept : bool Atomic.t;
  stop_supervisor : bool Atomic.t;
  stop_watcher : bool Atomic.t;
  is_stopped : bool Atomic.t;
  slots : slot array;
  idle_mutex : Mutex.t;
  mutable idle_conns : (conn * float) list;  (* connection, expiry *)
  mutable watcher_gone : bool;
      (* guarded by idle_mutex: true once the watcher has done its
         final sweep and will never look at idle_conns again — a
         register after that must close the connection itself *)
  idle_wake : Unix.file_descr * Unix.file_descr;
      (* self-pipe: registering a connection (or stopping) wakes the
         watcher out of its select immediately *)
  mutable listen_fd : Unix.file_descr option;
  mutable actual_port : int;
  mutable acceptor : Thread.t option;
  mutable readers : Thread.t list;
  mutable supervisor : Thread.t option;
  mutable watcher : Thread.t option;
  stop_scrub : bool Atomic.t;
  mutable scrubber : Thread.t option;
      (* online scrub against the local store (scrub_interval_s > 0) *)
}

let create ?(config = default_config) ?cluster svc =
  {
    config;
    svc;
    cluster;
    model =
      (match config.model with
      | Some m -> m
      | None -> Service.Model_value (Awb.Samples.banking_model ()));
    metrics = Metrics.create ();
    buffers = Buffer_pool.create ();
    bucket = Token_bucket.create ~rate:config.rate ~burst:config.burst;
    brownout = Option.map Brownout.create config.brownout;
    queue = Fair_queue.create ~capacity:config.queue_cap ~tenant_cap:config.tenant_cap;
    (* Headroom beyond the job queue: health checks and requests bound
       for a 429/503 also pass through here, and they cost microseconds
       each once a reader picks them up. *)
    conns = Admission.create ~capacity:(config.queue_cap + 64);
    busy = Atomic.make 0;
    reqno = Atomic.make 0;
    sigterm = Atomic.make false;
    sighup = Atomic.make false;
    drain_started = Atomic.make false;
    is_draining = Atomic.make false;
    drain_deadline_ns = Atomic.make 0;
    stop_accept = Atomic.make false;
    stop_supervisor = Atomic.make false;
    stop_watcher = Atomic.make false;
    is_stopped = Atomic.make false;
    slots =
      Array.init (max 1 config.max_inflight) (fun _ ->
          {
            domain = None;
            finished = Atomic.make false;
            crashed = Atomic.make false;
            retired = Atomic.make false;
          });
    idle_mutex = Mutex.create ();
    idle_conns = [];
    watcher_gone = false;
    idle_wake =
      (let r, w = Unix.pipe ~cloexec:true () in
       Unix.set_nonblock w;
       (r, w));
    listen_fd = None;
    actual_port = 0;
    acceptor = None;
    readers = [];
    supervisor = None;
    watcher = None;
    stop_scrub = Atomic.make false;
    scrubber = None;
  }

let config t = t.config
let port t = t.actual_port
let draining t = Atomic.get t.is_draining
let stopped t = Atomic.get t.is_stopped
let metrics t = t.metrics
let service t = t.svc
let cluster t = t.cluster
let queue_depth t = Fair_queue.depth t.queue
let inflight t = Atomic.get t.busy

let ready t =
  (not (Atomic.get t.is_draining))
  && (not (Atomic.get t.is_stopped))
  && Metrics.shed_fraction t.metrics ~now:(Clock.now ())
     < t.config.shed_unready_threshold

(* One brownout controller step, fed the live signals (or the Fault
   load_signal override, which is how tests force transitions). Brownout
   off means permanently Normal. Called from /generate routing and from
   /metrics — scraping alone is enough to observe recovery. *)
let mode t =
  match t.brownout with
  | None -> Brownout.Normal
  | Some b ->
    let override =
      match t.config.fault with Some f -> f.Fault.load_signal | None -> None
    in
    Brownout.note b ?override
      ~queue_occupancy:
        (float_of_int (queue_depth t) /. float_of_int (max 1 t.config.queue_cap))
      ~shed_fraction:(Metrics.shed_fraction t.metrics ~now:(Clock.now ()))
      ~now:(Clock.now ()) ()

(* The mode as last evaluated, for response headers: reading it must not
   step the controller (header emission is not an observation). *)
let current_mode t =
  match t.brownout with None -> Brownout.Normal | Some b -> Brownout.mode b

let metrics_body t =
  let m = mode t in
  let buffers =
    Printf.sprintf
      "# HELP lopsided_server_buffers_created_total Pool misses: buffers allocated.\n\
       # TYPE lopsided_server_buffers_created_total counter\n\
       lopsided_server_buffers_created_total %d\n\
       # HELP lopsided_server_buffers_reused_total Pool hits: buffers reused.\n\
       # TYPE lopsided_server_buffers_reused_total counter\n\
       lopsided_server_buffers_reused_total %d\n\
       # HELP lopsided_server_buffers_dropped_total Buffers released on checkin (oversize or idle cap).\n\
       # TYPE lopsided_server_buffers_dropped_total counter\n\
       lopsided_server_buffers_dropped_total %d\n\
       # HELP lopsided_server_buffers_idle Buffers currently idle in the pool.\n\
       # TYPE lopsided_server_buffers_idle gauge\n\
       lopsided_server_buffers_idle %d\n"
      (Buffer_pool.created t.buffers)
      (Buffer_pool.reused t.buffers)
      (Buffer_pool.dropped t.buffers)
      (Buffer_pool.idle t.buffers)
  in
  Service.counters_to_prometheus (Service.counters t.svc)
  ^ Metrics.to_prometheus t.metrics ~mode:(Brownout.mode_index m)
      ~queue_depth:(queue_depth t) ~inflight:(inflight t) ~ready:(ready t) ()
  ^ buffers
  ^ (match t.config.store with None -> "" | Some s -> Store.to_prometheus s)
  ^ (match t.config.repl with None -> "" | Some r -> Store.Replica.metrics r)
  ^ (match t.cluster with None -> "" | Some c -> Shard.metrics c)

(* ------------------------------------------------------------------ *)
(* Connection lifecycle                                                 *)
(* ------------------------------------------------------------------ *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The one place a connection dies: the socket closes and the buffer
   goes back to the pool. Exclusive ownership makes double-close a
   logic bug, not a runtime hazard. *)
let close_conn t conn =
  close_quiet conn.cfd;
  Buffer_pool.checkin t.buffers conn.cbuf

(* Wake the watcher out of its select: a byte down the self-pipe. The
   pipe is non-blocking — a full pipe means wakeups are already queued,
   so the failure needs no handling. *)
let idle_wake t =
  try ignore (Unix.write (snd t.idle_wake) (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* Park a connection with the idle watcher until bytes arrive or the
   idle timeout expires. The watcher-gone check and the push happen
   under the same mutex as the watcher's final sweep: a register racing
   the stop either lands in that sweep (and is closed there) or
   observes [watcher_gone] and closes here — never a parked connection
   nobody will ever select on. *)
let idle_register t conn =
  if Atomic.get t.is_draining then close_conn t conn
  else begin
    let expiry = Clock.now () +. t.config.idle_timeout_s in
    Mutex.lock t.idle_mutex;
    let parked = not t.watcher_gone in
    if parked then t.idle_conns <- (conn, expiry) :: t.idle_conns;
    Mutex.unlock t.idle_mutex;
    if parked then idle_wake t else close_conn t conn
  end

(* After a response: recycle a keep-alive connection (already-received
   pipelined bytes go straight back to the readers; an empty connection
   parks with the idle watcher), close anything else. *)
let finish_conn t conn ~ka =
  conn.cserved <- conn.cserved + 1;
  if ka && not (Atomic.get t.is_draining) then begin
    if conn.cpending <> "" then begin
      match Admission.push t.conns conn with
      | `Accepted -> ()
      | `Shed -> close_conn t conn
    end
    else idle_register t conn
  end
  else close_conn t conn

(* The idle watcher: one select over every parked connection plus the
   wake pipe, blocking until a socket turns readable, a park/stop pokes
   the pipe, or the nearest idle expiry lapses. Readable connections
   rejoin the reader queue immediately (the next request — or EOF — is
   waiting), expired ones close. Event-driven on purpose: a polling loop
   would put its tick interval into every sequential keep-alive client's
   p50. *)
let watcher_loop t =
  let wake_r = fst t.idle_wake in
  let take () =
    Mutex.lock t.idle_mutex;
    let l = t.idle_conns in
    t.idle_conns <- [];
    Mutex.unlock t.idle_mutex;
    l
  in
  let drain_pipe () =
    let junk = Bytes.create 64 in
    let rec go () =
      match Unix.read wake_r junk 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    (* The pipe read blocks when the select woke for a socket, not the
       pipe — check readability first. *)
    match Unix.select [ wake_r ] [] [] 0. with
    | [ _ ], _, _ -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  (* Unix.select tops out a little above 1000 descriptors (FD_SETSIZE);
     feeding it more raises Invalid_argument, which used to dump every
     parked connection on the readers at once. Select over at most this
     many per pass and only expiry-check the overflow; re-parking puts
     the overflow ahead of the just-selected survivors, so every parked
     connection rotates into a select within a pass or two (each pass
     blocks at most 0.5 s). *)
  let max_select = 1000 in
  let rec split_at n = function
    | [] -> ([], [])
    | l when n <= 0 -> ([], l)
    | x :: rest ->
      let a, b = split_at (n - 1) rest in
      (x :: a, b)
  in
  while not (Atomic.get t.stop_watcher) do
    let items = take () in
    let selected, overflow = split_at max_select items in
    let now = Clock.now () in
    let timeout =
      List.fold_left (fun acc (_, expiry) -> Float.min acc (expiry -. now)) 0.5 items
      |> Float.max 0.001
    in
    let readable =
      match
        Unix.select (wake_r :: List.map (fun (c, _) -> c.cfd) selected) [] [] timeout
      with
      | r, _, _ -> r
      | exception (Unix.Unix_error _ | Invalid_argument _) ->
        (* A bad descriptor poisons the whole select: hand everything
           back to the readers, whose per-connection reads will sort the
           live from the dead. *)
        List.map (fun (c, _) -> c.cfd) selected
    in
    drain_pipe ();
    let now = Clock.now () in
    let keep_selected =
      List.filter
        (fun (c, expiry) ->
          if List.memq c.cfd readable then begin
            (match Admission.push t.conns c with
            | `Accepted -> ()
            | `Shed -> close_conn t c);
            false
          end
          else if now > expiry then begin
            close_conn t c;
            false
          end
          else true)
        selected
    in
    let keep_overflow =
      List.filter
        (fun (c, expiry) ->
          if now > expiry then begin
            close_conn t c;
            false
          end
          else true)
        overflow
    in
    let keep = keep_overflow @ keep_selected in
    if keep <> [] then begin
      Mutex.lock t.idle_mutex;
      t.idle_conns <- keep @ t.idle_conns;
      Mutex.unlock t.idle_mutex
    end
  done;
  (* Stopped (drain): mark the watcher gone and sweep, both under the
     mutex idle_register pushes under, so a register racing the stop
     either lands in this sweep or closes its own connection. *)
  Mutex.lock t.idle_mutex;
  t.watcher_gone <- true;
  let parked = t.idle_conns in
  t.idle_conns <- [];
  Mutex.unlock t.idle_mutex;
  List.iter (fun (c, _) -> close_conn t c) parked

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(* Every response carries the request id (the client's own X-Request-Id
   echoed back, or the generated one) and the service mode, so a client
   can correlate logs and notice degradation without scraping /metrics. *)
let std_headers t ~request_id headers =
  ("X-Request-Id", request_id)
  :: ("X-Service-Mode", Brownout.mode_name (current_mode t))
  :: headers

(* Like {!Http.write_response}, returns whether the full response went
   out: [false] means the stream is truncated and a keep-alive caller
   must close the connection, not recycle it. *)
let respond_error t fd ~request_id ~status ?(headers = []) ?(keep_alive = false) ?buf
    ~code ~message () =
  Http.write_response fd ~status ~keep_alive ?buf
    ~headers:(std_headers t ~request_id (("Content-Type", "application/json") :: headers))
    ~body:(Http.error_body ~code ~message ~request_id)
    ()

let retry_after = Service_http.retry_after

(* The shed-path Retry-After: how long the queue should take to drain at
   the recent completion rate, clamped to [1, 30] s. Used by the 503
   shed paths and (since PR 7) the rate-limit 429s too — a flat
   token-bucket constant told a throttled client to hammer again in one
   second regardless of how deep the backlog actually was. *)
let retry_after_derived t =
  retry_after
    (Metrics.retry_after_estimate_s t.metrics ~queue_depth:(queue_depth t)
       ~now:(Clock.now ()))

(* The Service error taxonomy, mapped onto HTTP — shared with the shard
   backends so both sides of the boundary answer identically. *)
let http_of_error = Service_http.of_error

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let parse_deadline_ms req =
  match Http.header req "x-deadline-ms" with
  | None -> Ok None
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some ms when ms > 0. -> Ok (Some (ms /. 1000.))
    | _ -> Error "malformed X-Deadline-Ms header")

let parse_engine t req =
  let name =
    match (Http.query_param req "engine", Http.header req "x-engine") with
    | Some q, _ -> Some q
    | None, h -> h
  in
  match name with
  | None -> Ok t.config.default_engine
  | Some n -> Docgen.engine_of_string n

(* The service request for a body, resolving a composite body's inline
   model (content-hash cached by the service) against the configured
   fallback. *)
let service_request t ~engine ?deadline ?level ~id body =
  let template_xml, model_xml = Composite.split body in
  let model =
    match model_xml with
    | Some xml -> Service.Model_xml { metamodel = Awb.Samples.it_architecture; xml }
    | None -> t.model
  in
  Service.request ~engine ?deadline ?level ~id
    ~template:(Service.Template_xml template_xml) ~model ()

(* A background stale-while-revalidate refresh: regenerate at Full
   level and let the service's result cache absorb the output. No
   client socket; failures are silent (the stale entry stays until a
   later refresh succeeds or it is evicted). *)
let handle_refresh t (job : job) =
  match parse_engine t job.jreq with
  | Error _ -> ()
  | Ok engine -> (
    let sreq =
      service_request t ~engine ?deadline:t.config.default_deadline_s ~id:job.jid
        job.jreq.Http.body
    in
    try ignore (Service.run t.svc sreq) with Fault.Crashed _ as e -> raise e | _ -> ())

(* ------------------------------------------------------------------ *)
(* Collection store routes                                             *)
(* ------------------------------------------------------------------ *)

(* /collections/:name/docs/:id and /collections/:name/query *)
let store_path path =
  match String.split_on_char '/' path with
  | [ ""; "collections"; c; "docs"; d ] when c <> "" && d <> "" -> Some (`Doc (c, d))
  | [ ""; "collections"; c; "query" ] when c <> "" -> Some (`Query c)
  | _ -> None

(* The store tier behind /collections/*: one local store, or the
   replicated cluster when --replicas is set. *)
type store_tier = Local of Store.t | Repl of Store.Replica.t

let store_tier t =
  match t.config.repl with
  | Some r -> Some (Repl r)
  | None -> Option.map (fun s -> Local s) t.config.store

let tier_put tier ~collection ~doc body : (string, Store.Replica.error) result =
  match tier with
  | Local s -> (Store.put s ~collection ~doc body :> (string, Store.Replica.error) result)
  | Repl r -> Store.Replica.put r ~collection ~doc body

let tier_delete tier ~collection ~doc : (bool, Store.Replica.error) result =
  match tier with
  | Local s -> (Store.delete s ~collection ~doc :> (bool, Store.Replica.error) result)
  | Repl r -> Store.Replica.delete r ~collection ~doc

let tier_get tier ~collection ~doc : (string * string, Store.Replica.error) result =
  match tier with
  | Local s -> (Store.get s ~collection ~doc :> (string * string, Store.Replica.error) result)
  | Repl r -> Store.Replica.get r ~collection ~doc

let store_error_response : Store.Replica.error -> int * string * string = function
  | `Not_found -> (404, "store:not-found", "document not found")
  | `Corrupt reason -> (500, "store:corrupt", reason)
  | `Io reason -> (503, "store:io", reason)
  | `Unavailable reason -> (503, "store:unavailable", reason)

(* Serve one admitted store job on a worker. PUT validates the body is
   well-formed XML before anything touches disk — the store holds parsed
   documents, not blobs — and acks only after the fsync barrier. The
   query arm resolves doc() against the collection's live documents, so
   a query can never observe an unacknowledged or quarantined write. *)
let handle_store t (job : job) conn ~ka tier op =
  let fd = conn.cfd in
  let fail ?headers (status, code, message) =
    respond_error t fd ~request_id:job.jid ~status ?headers ~keep_alive:ka ~buf:conn.cbuf
      ~code ~message ()
  in
  (* A store-tier 503 (I/O error, quarantine, write quorum unavailable)
     promises recovery: it carries the same derived Retry-After as the
     shed paths and is counted as a refusal for the recorder's
     conservation checker. *)
  let fail_store ((status, _, _) as r) =
    if status = 503 then begin
      Metrics.incr_store_refused t.metrics;
      fail ~headers:(retry_after_derived t) r
    end
    else fail r
  in
  match (op, job.jreq.Http.meth) with
  | `Doc (collection, doc), "PUT" -> (
    match Xml_base.Parser.parse_string job.jreq.Http.body with
    | exception _ -> fail (400, "bad-request", "body is not well-formed XML")
    | _tree -> (
      match tier_put tier ~collection ~doc job.jreq.Http.body with
      | Ok hash ->
        Http.write_response fd ~status:200
          ~headers:
            (std_headers t ~request_id:job.jid
               [ ("Content-Type", "text/plain"); ("X-Doc-Hash", hash) ])
          ~keep_alive:ka ~buf:conn.cbuf ~body:(hash ^ "\n") ()
      | Error e -> fail_store (store_error_response e)))
  | `Doc (collection, doc), "DELETE" -> (
    match tier_delete tier ~collection ~doc with
    | Ok true ->
      Http.write_response fd ~status:200
        ~headers:(std_headers t ~request_id:job.jid [ ("Content-Type", "text/plain") ])
        ~keep_alive:ka ~buf:conn.cbuf ~body:"deleted\n" ()
    | Ok false -> fail (404, "store:not-found", "document not found")
    | Error e -> fail_store (store_error_response e))
  | `Query collection, "POST" -> (
    let doc_resolver uri =
      match tier_get tier ~collection ~doc:uri with
      | Ok (snapshot, _) -> (
        try Some (Xml_base.Parser.parse_string snapshot) with _ -> None)
      | Error _ -> None
    in
    match Service.run_query t.svc ~doc_resolver job.jreq.Http.body with
    | Ok items ->
      let body =
        String.concat "\n" (List.map Xquery.Value.item_to_string items) ^ "\n"
      in
      Http.write_response fd ~status:200
        ~headers:(std_headers t ~request_id:job.jid [ ("Content-Type", "text/plain") ])
        ~keep_alive:ka ~buf:conn.cbuf ~body ()
    | Error e ->
      let status, code, message, headers = http_of_error e in
      fail ~headers (status, code, message))
  | _ -> fail (405, "method-not-allowed", "unsupported method for this store route")

(* Serve one admitted job, then recycle or close the connection. Catches
   its own failures into a 500. The one exception deliberately let
   through is Fault.Crashed — that is the injected worker death the
   supervisor test needs to be real (the connection closes first so the
   client sees a reset, not a hang). A short or failed response write
   forces the connection closed regardless of keep-alive: its stream is
   truncated mid-response and cannot be recycled. *)
let handle_client t (job : job) conn =
  let fd = conn.cfd in
  let ka = job.jka && not (Atomic.get t.is_draining) in
  let wrote_ok =
    try
     match (parse_deadline_ms job.jreq, parse_engine t job.jreq) with
     | Error m, _ | _, Error m ->
       respond_error t fd ~request_id:job.jid ~status:400 ~keep_alive:ka ~buf:conn.cbuf
         ~code:"bad-request" ~message:m ()
     | Ok client_deadline, Ok engine -> (
       (* The deadline the client asked for covers queue wait: a
          request that spent its whole budget queued answers 504
          without burning a generation. Drain tightens further. *)
       let deadline =
         let base =
           match client_deadline with
           | Some _ as d -> d
           | None -> t.config.default_deadline_s
         in
         let base = Option.map (fun d -> d -. (Clock.now () -. job.jarrival)) base in
         let drain_ns = Atomic.get t.drain_deadline_ns in
         if drain_ns = 0 then base
         else
           let remaining = Clock.s_of_ns (drain_ns - Clock.now_ns ()) in
           Some (match base with None -> remaining | Some d -> Float.min d remaining)
       in
       match deadline with
       | Some d when d <= 0. ->
         respond_error t fd ~request_id:job.jid ~status:504 ~keep_alive:ka ~buf:conn.cbuf
           ~code:"resource:deadline" ~message:"deadline expired while queued" ()
       | _ -> (
         match (store_tier t, store_path job.jreq.Http.path) with
         | Some tier, Some op ->
           (* Store traffic is served by the front process even when
              generation is sharded: the store (or its replica
              coordinator) is local state. *)
           handle_store t job conn ~ka tier op
         | _ -> (
         match t.cluster with
         | Some cluster ->
           (* Sharded: forward the raw body — the routing key is its
              content, exactly what the shard's caches key on. *)
           let deadline_ms =
             match deadline with
             | None -> 0
             | Some d -> max 1 (int_of_float (Float.ceil (d *. 1000.)))
           in
           let status, headers, body =
             Shard.generate cluster ~id:job.jid
               ~engine:(Docgen.engine_name engine) ~level:job.jlevel ~deadline_ms
               ~body:job.jreq.Http.body
           in
           if job.jlevel = Docgen.Spec.Skeleton && status = 200 then
             Metrics.incr_skeletons t.metrics;
           Http.write_response fd ~status
             ~headers:(std_headers t ~request_id:job.jid headers)
             ~keep_alive:ka ~buf:conn.cbuf ~body ()
         | None -> (
           let sreq =
             service_request t ~engine ?deadline ~level:job.jlevel ~id:job.jid
               job.jreq.Http.body
           in
           let resp = Service.run t.svc sreq in
           match resp.Service.result with
           | Ok out ->
             if job.jlevel = Docgen.Spec.Skeleton then Metrics.incr_skeletons t.metrics;
             let headers =
               std_headers t ~request_id:job.jid
                 (("Content-Type", "application/xml")
                 :: ("X-Engine", Docgen.engine_name out.Service.engine_used)
                 ::
                 (if job.jlevel = Docgen.Spec.Skeleton then
                    [ ("X-Degraded", "skeleton") ]
                  else [])
                 @
                 match out.Service.problems with
                 | [] -> []
                 | ps -> [ ("X-Problems", string_of_int (List.length ps)) ])
             in
             Http.write_response fd ~status:200 ~headers ~keep_alive:ka ~buf:conn.cbuf
               ~body:out.Service.document ()
           | Error e ->
             let status, code, message, headers = http_of_error e in
             respond_error t fd ~request_id:job.jid ~status ~headers ~keep_alive:ka
               ~buf:conn.cbuf ~code ~message ()))))
    with
    | Fault.Crashed _ as e ->
      close_conn t conn;
      raise e
    | e ->
      respond_error t fd ~request_id:job.jid ~status:500 ~keep_alive:ka ~buf:conn.cbuf
        ~code:"internal" ~message:(Printexc.to_string e) ()
  in
  finish_conn t conn ~ka:(ka && wrote_ok)

let handle_job t (job : job) =
  (match t.config.fault with
  | Some f when Fault.fires f Fault.Crash ~key:job.jid ~attempt:0 ->
    (match job.jconn with Some conn -> close_conn t conn | None -> ());
    raise (Fault.Crashed ("injected worker crash on " ^ job.jid))
  | _ -> ());
  match job.jconn with
  | None -> handle_refresh t job
  | Some conn -> handle_client t job conn

let rec worker_loop t =
  match Fair_queue.pop t.queue with
  | None -> ()
  | Some job ->
    Atomic.incr t.busy;
    let t0 = Clock.now () in
    let result =
      try
        handle_job t job;
        None
      with e -> Some e
    in
    let t1 = Clock.now () in
    Atomic.decr t.busy;
    Metrics.note_completion t.metrics ~now:t1;
    Option.iter (fun b -> Brownout.observe_service_time b (t1 -. t0)) t.brownout;
    (match result with
    | None -> ()
    | Some (Fault.Crashed _ as e) -> raise e
    | Some _ -> () (* handle_job already answered 500; keep serving *));
    worker_loop t

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let spawn_worker t slot =
  Atomic.set slot.finished false;
  Atomic.set slot.crashed false;
  Atomic.set slot.retired false;
  slot.domain <-
    Some
      (Domain.spawn (fun () ->
           (try worker_loop t with _ -> Atomic.set slot.crashed true);
           Atomic.set slot.finished true))

(* Poll the slots: join domains that have terminated, respawn crashed
   ones (unless the queue is closed — drain wants workers gone). The
   finished flag is the worker's last write, so Domain.join here returns
   promptly. *)
let supervisor_loop t =
  let all_retired () = Array.for_all (fun s -> Atomic.get s.retired) t.slots in
  while not ((Atomic.get t.stop_supervisor && all_retired ()) || (Fair_queue.closed t.queue && all_retired ()))
  do
    Thread.delay 0.01;
    Array.iter
      (fun slot ->
        match slot.domain with
        | Some d when Atomic.get slot.finished ->
          Domain.join d;
          slot.domain <- None;
          if Atomic.get slot.crashed && not (Fair_queue.closed t.queue) then begin
            Metrics.incr_worker_restarts t.metrics;
            spawn_worker t slot
          end
          else Atomic.set slot.retired true
        | _ -> ())
      t.slots
  done

(* ------------------------------------------------------------------ *)
(* Admission and routing (the readers)                                 *)
(* ------------------------------------------------------------------ *)

let peer_key = function
  | Unix.ADDR_INET (addr, _) -> Unix.string_of_inet_addr addr
  | Unix.ADDR_UNIX path -> path

let fresh_id t req =
  match Http.header req "x-request-id" with
  | Some id when id <> "" -> id
  | _ -> Printf.sprintf "r%d" (Atomic.fetch_and_add t.reqno 1)

(* The tenant key for fair queueing: the X-Tenant header when present,
   the peer address otherwise. *)
let tenant_key peer req =
  match Http.header req "x-tenant" with
  | Some v when String.trim v <> "" -> String.trim v
  | _ -> peer

(* Try to answer from the result cache past freshness (stale-while-
   revalidate). Returns [Some write_ok] when the response was written
   ([write_ok] false = truncated, the caller must close); also enqueues
   a low-priority background refresh for the entry, unless one was
   claimed recently or the queue has no room (the stale answer stands
   either way). *)
let try_serve_stale t conn ~ka ~id ~tenant (req : Http.request) =
  match parse_engine t req with
  | Error _ -> None (* the worker path owns the 400 *)
  | Ok engine -> (
    let sreq = service_request t ~engine ~id req.Http.body in
    match Service.lookup_result t.svc sreq with
    | None -> None
    | Some (out, age_s) ->
      Metrics.incr_stale_served t.metrics;
      Metrics.note_tenant t.metrics ~tenant ~outcome:`Served;
      let headers =
        std_headers t ~request_id:id
          [
            ("Content-Type", "application/xml");
            ("X-Engine", Docgen.engine_name out.Service.engine_used);
            ("X-Degraded", "stale");
            ("Age", string_of_int (max 0 (int_of_float age_s)));
            ("Warning", "110 - \"Response is Stale\"");
          ]
      in
      let wok =
        Http.write_response conn.cfd ~status:200 ~headers ~keep_alive:ka ~buf:conn.cbuf
          ~body:out.Service.document ()
      in
      if Service.claim_refresh t.svc sreq then begin
        let refresh =
          {
            jconn = None;
            jka = false;
            jreq = req;
            jid = id ^ ".refresh";
            jarrival = Clock.now ();
            jtenant = refresh_tenant;
            jlevel = Docgen.Spec.Full;
          }
        in
        match Fair_queue.push t.queue ~tenant:refresh_tenant ~weight:0.25 refresh with
        | `Accepted -> Metrics.incr_refreshes t.metrics
        | `Shed _ -> ()
      end;
      Some wok)

(* Capture an admitted request into the recorder ring: exactly the
   traffic that cost a queue slot, with the client's own deadline, so
   replay reproduces the admitted workload. *)
let record_admitted t (req : Http.request) ~tenant =
  match t.config.recorder with
  | None -> ()
  | Some r ->
    Metrics.incr_recorded t.metrics;
    let deadline_ms =
      match Http.header req "x-deadline-ms" with
      | Some v -> (
        match float_of_string_opt (String.trim v) with
        | Some ms when ms > 0. -> int_of_float ms
        | _ -> 0)
      | None -> 0
    in
    Recorder.record r
      (Recorder.entry ~meth:req.Http.meth ~path:req.Http.path ~tenant ~deadline_ms
         ~body:req.Http.body ())

(* Store routes. Document reads are answered inline on the reader (one
   pread plus a CRC check); writes and queries go through the same
   admission path as /generate — drain refusal, rate limiting, critical
   brownout shed, fair-queue bulkheads, recorder capture — so every
   governance layer sees ingest traffic too. *)
let route_store t conn ~ka (req : Http.request) op =
  let fd = conn.cfd in
  let id = fresh_id t req in
  let refuse ~status ?(headers = []) ~code ~message () =
    let wok =
      respond_error t fd ~request_id:id ~status ~headers ~keep_alive:ka ~buf:conn.cbuf
        ~code ~message ()
    in
    finish_conn t conn ~ka:(ka && wok)
  in
  match (store_tier t, op, req.Http.meth) with
  | None, _, _ ->
    refuse ~status:503 ~code:"no-store"
      ~message:"no collection store is configured (start with --store DIR)" ()
  | Some tier, `Doc (collection, doc), "GET" -> (
    match tier_get tier ~collection ~doc with
    | Ok (snapshot, hash) ->
      let wok =
        Http.write_response fd ~status:200
          ~headers:
            (std_headers t ~request_id:id
               [ ("Content-Type", "application/xml"); ("X-Doc-Hash", hash) ])
          ~keep_alive:ka ~buf:conn.cbuf ~body:snapshot ()
      in
      finish_conn t conn ~ka:(ka && wok)
    | Error e ->
      let ((status, code, message) : int * string * string) = store_error_response e in
      if status = 503 then begin
        Metrics.incr_store_refused t.metrics;
        refuse ~status ~headers:(retry_after_derived t) ~code ~message ()
      end
      else refuse ~status ~code ~message ())
  | Some _, `Doc _, ("PUT" | "DELETE") | Some _, `Query _, "POST" ->
    let tenant = tenant_key conn.cpeer req in
    if Atomic.get t.is_draining then begin
      Metrics.incr_shed t.metrics;
      ignore
        (respond_error t fd ~request_id:id ~status:503 ~headers:(retry_after 1.)
           ~buf:conn.cbuf ~code:"draining" ~message:"server is draining" ());
      close_conn t conn
    end
    else if not (Token_bucket.admit t.bucket ~key:conn.cpeer ~now:(Clock.now ())) then begin
      Metrics.incr_rate_limited t.metrics;
      refuse ~status:429 ~headers:(retry_after_derived t) ~code:"rate-limited"
        ~message:(Printf.sprintf "client %s exceeds %.1f requests/s" conn.cpeer t.config.rate)
        ()
    end
    else if mode t = Brownout.Critical then begin
      (* Critical brownout sheds ingest like generation: durable writes
         are exactly the deferrable kind of work. *)
      Metrics.incr_shed t.metrics;
      Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
      refuse ~status:503 ~headers:(retry_after_derived t) ~code:"overloaded"
        ~message:"service is in critical brownout; store writes are shed" ()
    end
    else begin
      let job =
        {
          jconn = Some conn;
          jka = ka;
          jreq = req;
          jid = id;
          jarrival = Clock.now ();
          jtenant = tenant;
          jlevel = Docgen.Spec.Full;
        }
      in
      match Fair_queue.push t.queue ~tenant job with
      | `Accepted ->
        Metrics.incr_accepted t.metrics;
        Metrics.note_tenant t.metrics ~tenant ~outcome:`Served;
        record_admitted t req ~tenant
      | `Shed `Tenant_full ->
        Metrics.incr_tenant_rejected t.metrics;
        Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
        refuse ~status:429 ~headers:(retry_after_derived t) ~code:"tenant-overloaded"
          ~message:
            (Printf.sprintf "tenant %s has %d requests queued (cap %d)" tenant
               (Fair_queue.tenant_depth t.queue tenant)
               (min t.config.queue_cap t.config.tenant_cap))
          ()
      | `Shed `Queue_full ->
        Metrics.incr_shed t.metrics;
        Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
        refuse ~status:503 ~headers:(retry_after_derived t) ~code:"overloaded"
          ~message:(Printf.sprintf "admission queue full (%d waiting)" t.config.queue_cap)
          ()
    end
  | Some _, `Doc _, _ ->
    refuse ~status:405 ~headers:[ ("Allow", "GET, PUT, DELETE") ] ~code:"method-not-allowed"
      ~message:"use GET, PUT or DELETE on /collections/:name/docs/:id" ()
  | Some _, `Query _, _ ->
    refuse ~status:405 ~headers:[ ("Allow", "POST") ] ~code:"method-not-allowed"
      ~message:"use POST on /collections/:name/query" ()

(* Route one parsed request. Inline answers (health, metrics, every
   refusal) are written here and the connection recycled or closed per
   [ka]; admitted generate jobs hand the connection to a worker. *)
let route t conn ~ka (req : Http.request) =
  let fd = conn.cfd in
  let inline_response ~status ?(headers = []) body =
    let wok = Http.write_response fd ~status ~headers ~keep_alive:ka ~buf:conn.cbuf ~body () in
    finish_conn t conn ~ka:(ka && wok)
  in
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" ->
    (* Liveness: answers 200 as long as the process serves at all,
       including during drain. *)
    inline_response ~status:200
      ~headers:(std_headers t ~request_id:(fresh_id t req) [ ("Content-Type", "text/plain") ])
      "ok\n"
  | "GET", "/readyz" ->
    let is_ready = ready t in
    inline_response
      ~status:(if is_ready then 200 else 503)
      ~headers:(std_headers t ~request_id:(fresh_id t req) [ ("Content-Type", "text/plain") ])
      (if is_ready then "ready\n" else if draining t then "draining\n" else "shedding\n")
  | "GET", "/metrics" ->
    inline_response ~status:200
      ~headers:
        (std_headers t ~request_id:(fresh_id t req)
           [ ("Content-Type", "text/plain; version=0.0.4") ])
      (metrics_body t)
  | "POST", "/generate" ->
    let id = fresh_id t req in
    let tenant = tenant_key conn.cpeer req in
    let m = mode t in
    if Atomic.get t.is_draining then begin
      Metrics.incr_shed t.metrics;
      ignore
        (respond_error t fd ~request_id:id ~status:503 ~headers:(retry_after 1.)
           ~buf:conn.cbuf ~code:"draining" ~message:"server is draining" ());
      close_conn t conn
    end
    else if not (Token_bucket.admit t.bucket ~key:conn.cpeer ~now:(Clock.now ())) then begin
      Metrics.incr_rate_limited t.metrics;
      (* Derived Retry-After (completion-rate EWMA over the queue), not
         the token bucket's flat refill constant: when the server is
         backed up, "come back in 1 s" just re-offers the flood. *)
      let wok =
        respond_error t fd ~request_id:id ~status:429 ~headers:(retry_after_derived t)
          ~keep_alive:ka ~buf:conn.cbuf ~code:"rate-limited"
          ~message:(Printf.sprintf "client %s exceeds %.1f requests/s" conn.cpeer t.config.rate)
          ()
      in
      finish_conn t conn ~ka:(ka && wok)
    end
    else begin
      match Service.quarantine_remaining t.svc ~template_xml:req.Http.body with
      | Some remaining ->
        (* Admission-time breaker check: the known-bad template never
           costs a queue slot or a worker. *)
        Metrics.incr_quarantine_429 t.metrics;
        let wok =
          respond_error t fd ~request_id:id ~status:429 ~headers:(retry_after remaining)
            ~keep_alive:ka ~buf:conn.cbuf ~code:"quarantined"
            ~message:(Printf.sprintf "template is quarantined for another %.1f s" remaining)
            ()
        in
        finish_conn t conn ~ka:(ka && wok)
      | None ->
        (* Brownout ladder. Degraded/Critical first try a stale cache
           hit — an instant useful answer plus a background refresh.
           On a miss, Degraded admits the job at Skeleton level (cheap
           but useful), Critical stops admitting generation work
           altogether. Normal is the PR-4 path unchanged. *)
        let stale_served =
          match m with
          | Brownout.Normal -> None
          | Brownout.Degraded | Brownout.Critical ->
            try_serve_stale t conn ~ka ~id ~tenant req
        in
        match stale_served with
        | Some wok -> finish_conn t conn ~ka:(ka && wok)
        | None when m = Brownout.Critical ->
          Metrics.incr_shed t.metrics;
          Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
          let wok =
            respond_error t fd ~request_id:id ~status:503 ~headers:(retry_after_derived t)
              ~keep_alive:ka ~buf:conn.cbuf ~code:"overloaded"
              ~message:"service is in critical brownout; only cached results are served"
              ()
          in
          finish_conn t conn ~ka:(ka && wok)
        | None -> begin
          let jlevel =
            if m = Brownout.Degraded then Docgen.Spec.Skeleton else Docgen.Spec.Full
          in
          let job =
            {
              jconn = Some conn;
              jka = ka;
              jreq = req;
              jid = id;
              jarrival = Clock.now ();
              jtenant = tenant;
              jlevel;
            }
          in
          match Fair_queue.push t.queue ~tenant job with
          | `Accepted ->
            Metrics.incr_accepted t.metrics;
            Metrics.note_tenant t.metrics ~tenant ~outcome:`Served;
            record_admitted t req ~tenant
          | `Shed `Tenant_full ->
            (* The flooding tenant's own bulkhead is full: their 429,
               everyone else's queue space is untouched. *)
            Metrics.incr_tenant_rejected t.metrics;
            Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
            let wok =
              respond_error t fd ~request_id:id ~status:429
                ~headers:(retry_after_derived t) ~keep_alive:ka ~buf:conn.cbuf
                ~code:"tenant-overloaded"
                ~message:
                  (Printf.sprintf "tenant %s has %d requests queued (cap %d)" tenant
                     (Fair_queue.tenant_depth t.queue tenant)
                     (min t.config.queue_cap t.config.tenant_cap))
                ()
            in
            finish_conn t conn ~ka:(ka && wok)
          | `Shed `Queue_full ->
            Metrics.incr_shed t.metrics;
            Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
            let wok =
              respond_error t fd ~request_id:id ~status:503
                ~headers:(retry_after_derived t) ~keep_alive:ka ~buf:conn.cbuf
                ~code:"overloaded"
                ~message:
                  (Printf.sprintf "admission queue full (%d waiting)" t.config.queue_cap)
                ()
            in
            finish_conn t conn ~ka:(ka && wok)
        end
    end
  | _, "/healthz" | _, "/readyz" | _, "/metrics" ->
    inline_response ~status:405
      ~headers:(std_headers t ~request_id:(fresh_id t req) [])
      ""
  | _, "/generate" ->
    inline_response ~status:405
      ~headers:(std_headers t ~request_id:(fresh_id t req) [ ("Allow", "POST") ])
      ""
  | _, path when store_path path <> None ->
    route_store t conn ~ka req (Option.get (store_path path))
  | _ ->
    let wok =
      respond_error t fd ~request_id:(fresh_id t req) ~status:404 ~keep_alive:ka
        ~buf:conn.cbuf ~code:"not-found" ~message:(req.Http.meth ^ " " ^ req.Http.path) ()
    in
    finish_conn t conn ~ka:(ka && wok)

let handle_conn t conn =
  (* Whole-request budget: the per-recv socket timeout alone would let a
     drip-feed client (1 byte per just-under-timeout interval) hold this
     reader for timeout x bytes. Twice the io timeout is generous for a
     legitimate client on the small bodies templates are, and bounds how
     long one connection can occupy a reader. *)
  let deadline_ns = Clock.now_ns () + Clock.ns_of_s (2. *. t.config.io_timeout_s) in
  let pending = conn.cpending in
  conn.cpending <- "";
  match
    Http.read_request ~max_body_bytes:t.config.max_body_bytes ~deadline_ns ~pending
      ~buf:conn.cbuf conn.cfd
  with
  | exception Http.Bad_request m ->
    Metrics.incr_bad_requests t.metrics;
    ignore
      (respond_error t conn.cfd ~request_id:"-" ~status:400 ~code:"bad-request" ~message:m ());
    close_conn t conn
  | exception
      ( Http.Timeout
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ) ->
    (* The receive timeout or the whole-request deadline fired: a
       slow-loris or dead client. Cut it off with a clean 408 rather
       than leaving the connection hung. *)
    Metrics.incr_bad_requests t.metrics;
    ignore (Http.write_response conn.cfd ~status:408 ~body:"" ());
    close_conn t conn
  | exception Unix.Unix_error _ -> close_conn t conn
  | None -> close_conn t conn (* clean EOF: client done with the connection *)
  | Some (req, leftover) ->
    conn.cpending <- leftover;
    if conn.cserved > 0 then Metrics.incr_keepalive_reused t.metrics;
    let ka =
      t.config.keepalive
      && Http.wants_keep_alive req
      && conn.cserved + 1 < t.config.max_conn_requests
      && not (Atomic.get t.is_draining)
    in
    route t conn ~ka req

(* The reader pool: everything that touches a client socket before
   admission happens here, never on the acceptor. Sized past the worker
   count so a handful of slow clients (each bounded by the read deadline
   anyway) cannot starve health checks. *)
let reader_count config = max 2 config.max_inflight

let rec reader_loop t =
  match Admission.pop t.conns with
  | None -> ()
  | Some conn ->
    (try handle_conn t conn with _ -> close_conn t conn);
    reader_loop t

(* Trigger-once drain used by both SIGTERM and the public drain. *)
let rec drain_now t =
  if Atomic.compare_and_set t.drain_started false true then begin
    Atomic.set t.is_draining true;
    let deadline_ns = Clock.now_ns () + Clock.ns_of_s t.config.drain_deadline_s in
    Atomic.set t.drain_deadline_ns deadline_ns;
    (* Everything queued but unstarted is refused now — the client gets
       a crisp 503 instead of a response that would arrive after the
       process is gone. *)
    let pending = Fair_queue.flush t.queue in
    List.iter
      (fun job ->
        match job.jconn with
        | None -> () (* a background refresh owes nobody an answer *)
        | Some conn ->
          Metrics.incr_drained t.metrics;
          ignore
            (respond_error t conn.cfd ~request_id:job.jid ~status:503
               ~headers:(retry_after 1.) ~code:"draining"
               ~message:"server is draining; request was not started" ());
          close_conn t conn)
      pending;
    Fair_queue.close t.queue;
    (* In-flight work gets the drain window, enforced by the evaluator
       itself: overruns die with resource:deadline, answered as 504. The
       preempt deadline is sticky inside Service, so an attempt that was
       already dequeued but not yet registered when this runs is
       tightened at registration — no evaluation slips past the drain
       with an unbounded deadline. *)
    ignore (Service.preempt_inflight t.svc ~deadline_ns);
    (* Workers exit once the (closed) queue is empty; the supervisor
       joins and retires them, then exits itself. *)
    (match t.supervisor with Some th -> Thread.join th | None -> ());
    Atomic.set t.stop_supervisor true;
    (* Workers are gone: nothing races the final store checkpoint, so
       the manifest lands exactly on the acknowledged state. The scrub
       thread stops first for the same reason. *)
    Atomic.set t.stop_scrub true;
    (match t.scrubber with Some th -> Thread.join th | None -> ());
    t.scrubber <- None;
    (match t.config.store with
    | Some s -> ( match Store.checkpoint s with Ok () | Error _ -> ())
    | None -> ());
    (* The replicated cluster drains its backends (checkpoint + clean
       exit) the same way. *)
    (match t.config.repl with Some r -> Store.Replica.shutdown r | None -> ());
    Atomic.set t.stop_accept true;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (* Readers stayed up until here so /healthz and /readyz kept
       answering during the drain. Closing their queue lets them finish
       what they hold (generate is already refused with 503) and exit;
       each is bounded by the whole-request read deadline. *)
    Admission.close t.conns;
    List.iter Thread.join t.readers;
    t.readers <- [];
    (* Idle keep-alive connections get a clean close. *)
    Atomic.set t.stop_watcher true;
    idle_wake t;
    (match t.watcher with Some th -> Thread.join th | None -> ());
    t.watcher <- None;
    close_quiet (fst t.idle_wake);
    close_quiet (snd t.idle_wake);
    (match t.listen_fd with
    | Some fd ->
      t.listen_fd <- None;
      close_quiet fd
    | None -> ());
    (* The shard cluster (if any) drains last: in-flight forwards are
       done, so every backend exits as soon as it finishes its frame. *)
    (match t.cluster with Some c -> Shard.shutdown c | None -> ());
    Atomic.set t.is_stopped true
  end
  else await t

and await t = while not (Atomic.get t.is_stopped) do Thread.delay 0.01 done

let drain = drain_now

(* SIGHUP: zero-downtime reload. Sharded mode rolls the backends one at
   a time (fresh processes, cold caches, no dropped requests);
   single-process mode clears the compiled-artifact caches and closes
   every quarantine breaker in place. *)
let reload t =
  match t.cluster with
  | Some c -> Shard.rolling_restart c
  | None -> Service.reload t.svc

let accept_loop t fd =
  while not (Atomic.get t.stop_accept) do
    if Atomic.get t.sigterm && not (Atomic.get t.drain_started) then
      (* Drain on its own thread so the acceptor keeps answering
         health checks and shedding /generate while in-flight work
         finishes. *)
      ignore (Thread.create (fun () -> drain_now t) ());
    if Atomic.compare_and_set t.sighup true false then
      ignore (Thread.create (fun () -> reload t) ());
    match Unix.accept ~cloexec:true fd with
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error _ -> if Atomic.get t.stop_accept then () else Thread.delay 0.01
    | fd', addr ->
      (try
         Unix.setsockopt_float fd' Unix.SO_RCVTIMEO t.config.io_timeout_s;
         Unix.setsockopt_float fd' Unix.SO_SNDTIMEO t.config.io_timeout_s
       with Unix.Unix_error _ -> ());
      let conn =
        {
          cfd = fd';
          cpeer = peer_key addr;
          cbuf = Buffer_pool.checkout t.buffers;
          cpending = "";
          cserved = 0;
        }
      in
      (match Admission.push t.conns conn with
      | `Accepted -> ()
      | `Shed ->
        (* Every reader is held by a slow client and the backlog is
           full: refuse without reading a byte. The tiny response fits
           any socket buffer, so this write cannot block the acceptor. *)
        Metrics.incr_shed t.metrics;
        ignore
          (respond_error t fd' ~request_id:"-" ~status:503 ~headers:(retry_after 1.)
             ~code:"overloaded" ~message:"connection backlog full" ());
        close_conn t conn)
  done

let start t =
  (* A peer that disconnects before we answer — routine when overloaded
     clients time out and hang up — turns the response write into
     SIGPIPE, whose default action kills the process before any
     exception handler runs. Ignored, the write fails with EPIPE, which
     every write path here already swallows. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.config.port));
  Unix.listen fd 128;
  (* The accept timeout doubles as the poll interval for the stop and
     SIGTERM flags. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05 with Unix.Unix_error _ -> ());
  (match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> t.actual_port <- p
  | _ -> ());
  t.listen_fd <- Some fd;
  Array.iter (fun slot -> spawn_worker t slot) t.slots;
  t.readers <-
    List.init (reader_count t.config) (fun _ -> Thread.create (fun () -> reader_loop t) ());
  t.supervisor <- Some (Thread.create (fun () -> supervisor_loop t) ());
  if t.config.keepalive then
    t.watcher <- Some (Thread.create (fun () -> watcher_loop t) ());
  (* Online scrub: one incremental checksum pass over the live local
     store per cadence tick, quarantining whatever rotted in place.
     Replicated backends run their own scrubbers in-process. *)
  (match t.config.store with
  | Some store when t.config.scrub_interval_s > 0. ->
    t.scrubber <-
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get t.stop_scrub) do
               let deadline = Clock.now () +. t.config.scrub_interval_s in
               while (not (Atomic.get t.stop_scrub)) && Clock.now () < deadline do
                 Thread.delay 0.05
               done;
               if not (Atomic.get t.stop_scrub) then ignore (Store.scrub_pass store)
             done)
           ())
  | _ -> ());
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t fd) ())

let install_sigterm t =
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set t.sigterm true))

let install_sighup t =
  if not Sys.win32 then
    Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set t.sighup true))

module Http = Http
module Token_bucket = Token_bucket
module Admission = Admission
module Metrics = Metrics
module Brownout = Brownout
module Fair_queue = Fair_queue
module Buffer_pool = Buffer_pool
module Router = Router
module Shard = Shard
module Composite = Composite
module Service_http = Service_http
module Frame = Frame
module Chaos = Chaos
module Breaker = Breaker
module Recorder = Recorder
module Store = Store
