(* The HTTP front end: admission control first, work second.

   Thread/domain layout:

     acceptor (systhread) — accept only. Accepted connections go into a
       second bounded queue; when even that is full (every reader held
       by a slow client) the connection is refused with 503 without
       reading a byte. The acceptor never blocks on a client, so
       admission decisions and the drain trigger stay responsive no
       matter how traffic behaves.
     readers (systhreads) — pop a connection, read and parse the
       request under a whole-request deadline, then route. Everything
       that can be answered without generation work (health, readiness,
       metrics, rate-limit 429s, quarantine 429s, queue-full 503s) is
       answered right here and the connection closed. Admitted jobs go
       into the bounded job queue.
     workers (OCaml domains, max_inflight of them) — pop, generate via
       Service.run, answer. A worker that dies (the injected Crash
       fault, or a genuine bug) is noticed and replaced by the
       supervisor; the process survives.
     supervisor (systhread) — polls worker slots, joins finished
       domains, respawns crashed ones, counts restarts.

   Overload never queues invisibly: the queue has a hard capacity and
   everything beyond it is refused with 503 + Retry-After the moment it
   arrives. Sheds are cheap (no parse of the template, no worker, no
   service call), which is what keeps goodput flat when offered load is
   a multiple of capacity.

   Graceful drain (SIGTERM or Server.drain): flip readiness, refuse new
   work, 503 the queued-but-unstarted, tighten every in-flight
   evaluation's deadline through Service.preempt_inflight so overruns
   die with a structured resource:deadline, then join everything and
   close the listener. *)

module Fault = Service.Fault

type config = {
  host : string;
  port : int;
  max_inflight : int;
  queue_cap : int;
  tenant_cap : int;
  rate : float;
  burst : float;
  default_deadline_s : float option;
  drain_deadline_s : float;
  shed_unready_threshold : float;
  io_timeout_s : float;
  max_body_bytes : int;
  default_engine : Docgen.engine;
  model : Service.model_source option;
  fault : Fault.config option;
  brownout : Brownout.config option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_inflight = 4;
    queue_cap = 64;
    (* Clamped to queue_cap by Fair_queue: the default is "no per-tenant
       bulkhead", i.e. exactly the PR-4 single global FIFO bound. *)
    tenant_cap = max_int;
    rate = 0.;
    burst = 8.;
    default_deadline_s = None;
    drain_deadline_s = 5.;
    shed_unready_threshold = 0.9;
    io_timeout_s = 2.;
    max_body_bytes = 4 * 1024 * 1024;
    default_engine = `Host;
    model = None;
    fault = None;
    brownout = None;
  }

(* The pseudo-tenant that stale-while-revalidate refresh jobs queue
   under. Low weight: under contention the fair queue serves it a
   quarter as often as a unit-weight tenant, so refreshes never crowd
   out interactive work. *)
let refresh_tenant = "~refresh"

type job = {
  jfd : Unix.file_descr option;
      (* None = background refresh: regenerate and let the service's
         result cache absorb the output; no client is waiting. *)
  jreq : Http.request;
  jid : string;
  jarrival : float; (* Clock.now at admission; queue wait counts against the deadline *)
  jtenant : string;
  jlevel : Docgen.Spec.level;
}

(* One worker domain's lifecycle, owned by the supervisor. [finished]
   is the worker's last write before its domain terminates; [crashed]
   distinguishes a death from a clean queue-closed exit; [retired] is
   set by the supervisor once the domain is joined and no replacement
   was spawned. *)
type slot = {
  mutable domain : unit Domain.t option;
  finished : bool Atomic.t;
  crashed : bool Atomic.t;
  retired : bool Atomic.t;
}

type t = {
  config : config;
  svc : Service.t;
  model : Service.model_source;
  metrics : Metrics.t;
  bucket : Token_bucket.t;
  brownout : Brownout.t option;
  queue : job Fair_queue.t;
  conns : (Unix.file_descr * Unix.sockaddr) Admission.t;
      (* accepted-but-unread connections, feeding the reader pool *)
  busy : int Atomic.t; (* jobs a worker is currently handling *)
  reqno : int Atomic.t;
  sigterm : bool Atomic.t;
  drain_started : bool Atomic.t;
  is_draining : bool Atomic.t;
  drain_deadline_ns : int Atomic.t; (* 0 = not draining *)
  stop_accept : bool Atomic.t;
  stop_supervisor : bool Atomic.t;
  is_stopped : bool Atomic.t;
  slots : slot array;
  mutable listen_fd : Unix.file_descr option;
  mutable actual_port : int;
  mutable acceptor : Thread.t option;
  mutable readers : Thread.t list;
  mutable supervisor : Thread.t option;
}

let create ?(config = default_config) svc =
  {
    config;
    svc;
    model =
      (match config.model with
      | Some m -> m
      | None -> Service.Model_value (Awb.Samples.banking_model ()));
    metrics = Metrics.create ();
    bucket = Token_bucket.create ~rate:config.rate ~burst:config.burst;
    brownout = Option.map Brownout.create config.brownout;
    queue = Fair_queue.create ~capacity:config.queue_cap ~tenant_cap:config.tenant_cap;
    (* Headroom beyond the job queue: health checks and requests bound
       for a 429/503 also pass through here, and they cost microseconds
       each once a reader picks them up. *)
    conns = Admission.create ~capacity:(config.queue_cap + 64);
    busy = Atomic.make 0;
    reqno = Atomic.make 0;
    sigterm = Atomic.make false;
    drain_started = Atomic.make false;
    is_draining = Atomic.make false;
    drain_deadline_ns = Atomic.make 0;
    stop_accept = Atomic.make false;
    stop_supervisor = Atomic.make false;
    is_stopped = Atomic.make false;
    slots =
      Array.init (max 1 config.max_inflight) (fun _ ->
          {
            domain = None;
            finished = Atomic.make false;
            crashed = Atomic.make false;
            retired = Atomic.make false;
          });
    listen_fd = None;
    actual_port = 0;
    acceptor = None;
    readers = [];
    supervisor = None;
  }

let config t = t.config
let port t = t.actual_port
let draining t = Atomic.get t.is_draining
let stopped t = Atomic.get t.is_stopped
let metrics t = t.metrics
let service t = t.svc
let queue_depth t = Fair_queue.depth t.queue
let inflight t = Atomic.get t.busy

let ready t =
  (not (Atomic.get t.is_draining))
  && (not (Atomic.get t.is_stopped))
  && Metrics.shed_fraction t.metrics ~now:(Clock.now ())
     < t.config.shed_unready_threshold

(* One brownout controller step, fed the live signals (or the Fault
   load_signal override, which is how tests force transitions). Brownout
   off means permanently Normal. Called from /generate routing and from
   /metrics — scraping alone is enough to observe recovery. *)
let mode t =
  match t.brownout with
  | None -> Brownout.Normal
  | Some b ->
    let override =
      match t.config.fault with Some f -> f.Fault.load_signal | None -> None
    in
    Brownout.note b ?override
      ~queue_occupancy:
        (float_of_int (queue_depth t) /. float_of_int (max 1 t.config.queue_cap))
      ~shed_fraction:(Metrics.shed_fraction t.metrics ~now:(Clock.now ()))
      ~now:(Clock.now ()) ()

(* The mode as last evaluated, for response headers: reading it must not
   step the controller (header emission is not an observation). *)
let current_mode t =
  match t.brownout with None -> Brownout.Normal | Some b -> Brownout.mode b

let metrics_body t =
  let m = mode t in
  Service.counters_to_prometheus (Service.counters t.svc)
  ^ Metrics.to_prometheus t.metrics ~mode:(Brownout.mode_index m)
      ~queue_depth:(queue_depth t) ~inflight:(inflight t) ~ready:(ready t) ()

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Every response carries the request id (the client's own X-Request-Id
   echoed back, or the generated one) and the service mode, so a client
   can correlate logs and notice degradation without scraping /metrics. *)
let std_headers t ~request_id headers =
  ("X-Request-Id", request_id)
  :: ("X-Service-Mode", Brownout.mode_name (current_mode t))
  :: headers

let respond_error t fd ~request_id ~status ?(headers = []) ~code ~message () =
  Http.write_response fd ~status
    ~headers:(std_headers t ~request_id (("Content-Type", "application/json") :: headers))
    ~body:(Http.error_body ~code ~message ~request_id)
    ()

let retry_after s = [ ("Retry-After", string_of_int (max 1 (int_of_float (Float.ceil s)))) ]

(* The shed-path Retry-After: how long the queue should take to drain at
   the recent completion rate, clamped to [1, 30] s. *)
let retry_after_derived t =
  retry_after
    (Metrics.retry_after_estimate_s t.metrics ~queue_depth:(queue_depth t)
       ~now:(Clock.now ()))

(* The Service error taxonomy, mapped onto HTTP. Resource trips keep
   their resource:* code in the JSON body so a client can tell a fuel
   trip from a deadline from a quarantine without parsing prose. *)
let http_of_error (e : Service.error) =
  match e with
  | Service.Template_error m -> (400, "bad-template", m, [])
  | Service.Model_error m -> (400, "bad-model", m, [])
  | Service.Generation_failed { code; message; location } ->
    let message = if location = "" then message else message ^ " at " ^ location in
    (422, (if code = "" then "generation-failed" else code), message, [])
  | Service.Resource_exhausted { resource; message } ->
    (422, Xquery.Errors.resource_code resource, message, [])
  | Service.Deadline_exceeded { elapsed_s; deadline_s } ->
    ( 504,
      "resource:deadline",
      Printf.sprintf "deadline exceeded: %.1f ms elapsed against a %.1f ms budget"
        (elapsed_s *. 1000.) (deadline_s *. 1000.),
      [] )
  | Service.Quarantined { template; retry_after_s } ->
    ( 429,
      "quarantined",
      Printf.sprintf "template %s is quarantined" template,
      retry_after retry_after_s )
  | Service.Internal_error m -> (500, "internal", m, [])

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let parse_deadline_ms req =
  match Http.header req "x-deadline-ms" with
  | None -> Ok None
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some ms when ms > 0. -> Ok (Some (ms /. 1000.))
    | _ -> Error "malformed X-Deadline-Ms header")

let parse_engine t req =
  let name =
    match (Http.query_param req "engine", Http.header req "x-engine") with
    | Some q, _ -> Some q
    | None, h -> h
  in
  match name with
  | None -> Ok t.config.default_engine
  | Some n -> Docgen.engine_of_string n

(* A background stale-while-revalidate refresh: regenerate at Full
   level and let the service's result cache absorb the output. No
   client socket; failures are silent (the stale entry stays until a
   later refresh succeeds or it is evicted). *)
let handle_refresh t (job : job) =
  match parse_engine t job.jreq with
  | Error _ -> ()
  | Ok engine -> (
    let sreq =
      Service.request ~engine
        ?deadline:t.config.default_deadline_s
        ~id:job.jid
        ~template:(Service.Template_xml job.jreq.Http.body) ~model:t.model ()
    in
    try ignore (Service.run t.svc sreq) with Fault.Crashed _ as e -> raise e | _ -> ())

(* Serve one admitted job. Always closes the connection; catches its own
   failures into a 500. The one exception deliberately let through is
   Fault.Crashed — that is the injected worker death the supervisor
   test needs to be real. *)
let handle_client t (job : job) fd =
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      try
        match (parse_deadline_ms job.jreq, parse_engine t job.jreq) with
        | Error m, _ | _, Error m ->
          respond_error t fd ~request_id:job.jid ~status:400 ~code:"bad-request"
            ~message:m ()
        | Ok client_deadline, Ok engine -> (
          (* The deadline the client asked for covers queue wait: a
             request that spent its whole budget queued answers 504
             without burning a generation. Drain tightens further. *)
          let deadline =
            let base =
              match client_deadline with
              | Some _ as d -> d
              | None -> t.config.default_deadline_s
            in
            let base =
              Option.map (fun d -> d -. (Clock.now () -. job.jarrival)) base
            in
            let drain_ns = Atomic.get t.drain_deadline_ns in
            if drain_ns = 0 then base
            else
              let remaining = Clock.s_of_ns (drain_ns - Clock.now_ns ()) in
              Some (match base with None -> remaining | Some d -> Float.min d remaining)
          in
          match deadline with
          | Some d when d <= 0. ->
            respond_error t fd ~request_id:job.jid ~status:504 ~code:"resource:deadline"
              ~message:"deadline expired while queued" ()
          | _ -> (
            let sreq =
              Service.request ~engine ?deadline ~level:job.jlevel ~id:job.jid
                ~template:(Service.Template_xml job.jreq.Http.body) ~model:t.model ()
            in
            let resp = Service.run t.svc sreq in
            match resp.Service.result with
            | Ok out ->
              if job.jlevel = Docgen.Spec.Skeleton then
                Metrics.incr_skeletons t.metrics;
              let headers =
                std_headers t ~request_id:job.jid
                  (("Content-Type", "application/xml")
                  :: ("X-Engine", Docgen.engine_name out.Service.engine_used)
                  ::
                  (if job.jlevel = Docgen.Spec.Skeleton then
                     [ ("X-Degraded", "skeleton") ]
                   else [])
                  @
                  match out.Service.problems with
                  | [] -> []
                  | ps -> [ ("X-Problems", string_of_int (List.length ps)) ])
              in
              Http.write_response fd ~status:200 ~headers ~body:out.Service.document ()
            | Error e ->
              let status, code, message, headers = http_of_error e in
              respond_error t fd ~request_id:job.jid ~status ~headers ~code ~message ()))
      with
      | Fault.Crashed _ as e -> raise e
      | e ->
        respond_error t fd ~request_id:job.jid ~status:500 ~code:"internal"
          ~message:(Printexc.to_string e) ())

let handle_job t (job : job) =
  (match t.config.fault with
  | Some f when Fault.fires f Fault.Crash ~key:job.jid ~attempt:0 ->
    (match job.jfd with Some fd -> close_quiet fd | None -> ());
    raise (Fault.Crashed ("injected worker crash on " ^ job.jid))
  | _ -> ());
  match job.jfd with
  | None -> handle_refresh t job
  | Some fd -> handle_client t job fd

let rec worker_loop t =
  match Fair_queue.pop t.queue with
  | None -> ()
  | Some job ->
    Atomic.incr t.busy;
    let t0 = Clock.now () in
    let result =
      try
        handle_job t job;
        None
      with e -> Some e
    in
    let t1 = Clock.now () in
    Atomic.decr t.busy;
    Metrics.note_completion t.metrics ~now:t1;
    Option.iter (fun b -> Brownout.observe_service_time b (t1 -. t0)) t.brownout;
    (match result with
    | None -> ()
    | Some (Fault.Crashed _ as e) -> raise e
    | Some _ -> () (* handle_job already answered 500; keep serving *));
    worker_loop t

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let spawn_worker t slot =
  Atomic.set slot.finished false;
  Atomic.set slot.crashed false;
  Atomic.set slot.retired false;
  slot.domain <-
    Some
      (Domain.spawn (fun () ->
           (try worker_loop t with _ -> Atomic.set slot.crashed true);
           Atomic.set slot.finished true))

(* Poll the slots: join domains that have terminated, respawn crashed
   ones (unless the queue is closed — drain wants workers gone). The
   finished flag is the worker's last write, so Domain.join here returns
   promptly. *)
let supervisor_loop t =
  let all_retired () = Array.for_all (fun s -> Atomic.get s.retired) t.slots in
  while not ((Atomic.get t.stop_supervisor && all_retired ()) || (Fair_queue.closed t.queue && all_retired ()))
  do
    Thread.delay 0.01;
    Array.iter
      (fun slot ->
        match slot.domain with
        | Some d when Atomic.get slot.finished ->
          Domain.join d;
          slot.domain <- None;
          if Atomic.get slot.crashed && not (Fair_queue.closed t.queue) then begin
            Metrics.incr_worker_restarts t.metrics;
            spawn_worker t slot
          end
          else Atomic.set slot.retired true
        | _ -> ())
      t.slots
  done

(* ------------------------------------------------------------------ *)
(* Admission and routing (the acceptor)                                *)
(* ------------------------------------------------------------------ *)

let peer_key = function
  | Unix.ADDR_INET (addr, _) -> Unix.string_of_inet_addr addr
  | Unix.ADDR_UNIX path -> path

let fresh_id t req =
  match Http.header req "x-request-id" with
  | Some id when id <> "" -> id
  | _ -> Printf.sprintf "r%d" (Atomic.fetch_and_add t.reqno 1)

(* The tenant key for fair queueing: the X-Tenant header when present,
   the peer address otherwise. *)
let tenant_key peer req =
  match Http.header req "x-tenant" with
  | Some v when String.trim v <> "" -> String.trim v
  | _ -> peer

(* Try to answer from the result cache past freshness (stale-while-
   revalidate). Returns true when the response was written; also
   enqueues a low-priority background refresh for the entry, unless one
   was claimed recently or the queue has no room (the stale answer
   stands either way). *)
let try_serve_stale t fd ~id ~tenant (req : Http.request) =
  match parse_engine t req with
  | Error _ -> false (* the worker path owns the 400 *)
  | Ok engine -> (
    let sreq =
      Service.request ~engine ~id ~template:(Service.Template_xml req.Http.body)
        ~model:t.model ()
    in
    match Service.lookup_result t.svc sreq with
    | None -> false
    | Some (out, age_s) ->
      Metrics.incr_stale_served t.metrics;
      Metrics.note_tenant t.metrics ~tenant ~outcome:`Served;
      let headers =
        std_headers t ~request_id:id
          [
            ("Content-Type", "application/xml");
            ("X-Engine", Docgen.engine_name out.Service.engine_used);
            ("X-Degraded", "stale");
            ("Age", string_of_int (max 0 (int_of_float age_s)));
            ("Warning", "110 - \"Response is Stale\"");
          ]
      in
      Http.write_response fd ~status:200 ~headers ~body:out.Service.document ();
      if Service.claim_refresh t.svc sreq then begin
        let refresh =
          {
            jfd = None;
            jreq = req;
            jid = id ^ ".refresh";
            jarrival = Clock.now ();
            jtenant = refresh_tenant;
            jlevel = Docgen.Spec.Full;
          }
        in
        match Fair_queue.push t.queue ~tenant:refresh_tenant ~weight:0.25 refresh with
        | `Accepted -> Metrics.incr_refreshes t.metrics
        | `Shed _ -> ()
      end;
      true)

let route t fd peer (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" ->
    (* Liveness: answers 200 as long as the process serves at all,
       including during drain. *)
    Http.write_response fd ~status:200
      ~headers:(std_headers t ~request_id:(fresh_id t req) [ ("Content-Type", "text/plain") ])
      ~body:"ok\n" ();
    close_quiet fd
  | "GET", "/readyz" ->
    let is_ready = ready t in
    Http.write_response fd
      ~status:(if is_ready then 200 else 503)
      ~headers:(std_headers t ~request_id:(fresh_id t req) [ ("Content-Type", "text/plain") ])
      ~body:(if is_ready then "ready\n" else if draining t then "draining\n" else "shedding\n")
      ();
    close_quiet fd
  | "GET", "/metrics" ->
    let body = metrics_body t in
    Http.write_response fd ~status:200
      ~headers:
        (std_headers t ~request_id:(fresh_id t req)
           [ ("Content-Type", "text/plain; version=0.0.4") ])
      ~body ();
    close_quiet fd
  | "POST", "/generate" ->
    let id = fresh_id t req in
    let tenant = tenant_key peer req in
    let m = mode t in
    if Atomic.get t.is_draining then begin
      Metrics.incr_shed t.metrics;
      respond_error t fd ~request_id:id ~status:503 ~headers:(retry_after 1.)
        ~code:"draining" ~message:"server is draining" ();
      close_quiet fd
    end
    else if not (Token_bucket.admit t.bucket ~key:peer ~now:(Clock.now ())) then begin
      Metrics.incr_rate_limited t.metrics;
      respond_error t fd ~request_id:id ~status:429
        ~headers:(retry_after (Token_bucket.retry_after_s t.bucket))
        ~code:"rate-limited"
        ~message:(Printf.sprintf "client %s exceeds %.1f requests/s" peer t.config.rate)
        ();
      close_quiet fd
    end
    else begin
      match Service.quarantine_remaining t.svc ~template_xml:req.Http.body with
      | Some remaining ->
        (* Admission-time breaker check: the known-bad template never
           costs a queue slot or a worker. *)
        Metrics.incr_quarantine_429 t.metrics;
        respond_error t fd ~request_id:id ~status:429 ~headers:(retry_after remaining)
          ~code:"quarantined"
          ~message:
            (Printf.sprintf "template is quarantined for another %.1f s" remaining)
          ();
        close_quiet fd
      | None ->
        (* Brownout ladder. Degraded/Critical first try a stale cache
           hit — an instant useful answer plus a background refresh.
           On a miss, Degraded admits the job at Skeleton level (cheap
           but useful), Critical stops admitting generation work
           altogether. Normal is the PR-4 path unchanged. *)
        let stale_served =
          match m with
          | Brownout.Normal -> false
          | Brownout.Degraded | Brownout.Critical ->
            try_serve_stale t fd ~id ~tenant req
        in
        if stale_served then close_quiet fd
        else if m = Brownout.Critical then begin
          Metrics.incr_shed t.metrics;
          Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
          respond_error t fd ~request_id:id ~status:503
            ~headers:(retry_after_derived t) ~code:"overloaded"
            ~message:"service is in critical brownout; only cached results are served"
            ();
          close_quiet fd
        end
        else begin
          let jlevel =
            if m = Brownout.Degraded then Docgen.Spec.Skeleton else Docgen.Spec.Full
          in
          let job =
            { jfd = Some fd; jreq = req; jid = id; jarrival = Clock.now (); jtenant = tenant; jlevel }
          in
          match Fair_queue.push t.queue ~tenant job with
          | `Accepted ->
            Metrics.incr_accepted t.metrics;
            Metrics.note_tenant t.metrics ~tenant ~outcome:`Served
          | `Shed `Tenant_full ->
            (* The flooding tenant's own bulkhead is full: their 429,
               everyone else's queue space is untouched. *)
            Metrics.incr_tenant_rejected t.metrics;
            Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
            respond_error t fd ~request_id:id ~status:429
              ~headers:(retry_after_derived t) ~code:"tenant-overloaded"
              ~message:
                (Printf.sprintf "tenant %s has %d requests queued (cap %d)" tenant
                   (Fair_queue.tenant_depth t.queue tenant)
                   (min t.config.queue_cap t.config.tenant_cap))
              ();
            close_quiet fd
          | `Shed `Queue_full ->
            Metrics.incr_shed t.metrics;
            Metrics.note_tenant t.metrics ~tenant ~outcome:`Shed;
            respond_error t fd ~request_id:id ~status:503
              ~headers:(retry_after_derived t) ~code:"overloaded"
              ~message:
                (Printf.sprintf "admission queue full (%d waiting)" t.config.queue_cap)
              ();
            close_quiet fd
        end
    end
  | _, "/healthz" | _, "/readyz" | _, "/metrics" ->
    Http.write_response fd ~status:405
      ~headers:(std_headers t ~request_id:(fresh_id t req) [])
      ~body:"" ();
    close_quiet fd
  | _, "/generate" ->
    Http.write_response fd ~status:405
      ~headers:(std_headers t ~request_id:(fresh_id t req) [ ("Allow", "POST") ])
      ~body:"" ();
    close_quiet fd
  | _ ->
    respond_error t fd ~request_id:(fresh_id t req) ~status:404 ~code:"not-found"
      ~message:(req.Http.meth ^ " " ^ req.Http.path) ();
    close_quiet fd

let handle_conn t fd addr =
  (* Whole-request budget: the per-recv socket timeout alone would let a
     drip-feed client (1 byte per just-under-timeout interval) hold this
     reader for timeout x bytes. Twice the io timeout is generous for a
     legitimate client on the small bodies templates are, and bounds how
     long one connection can occupy a reader. *)
  let deadline_ns = Clock.now_ns () + Clock.ns_of_s (2. *. t.config.io_timeout_s) in
  match
    Http.read_request ~max_body_bytes:t.config.max_body_bytes ~deadline_ns fd
  with
  | exception Http.Bad_request m ->
    Metrics.incr_bad_requests t.metrics;
    respond_error t fd ~request_id:"-" ~status:400 ~code:"bad-request" ~message:m ();
    close_quiet fd
  | exception
      ( Http.Timeout
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ) ->
    (* The receive timeout or the whole-request deadline fired: a
       slow-loris or dead client. Cut it off with a clean 408 rather
       than leaving the connection hung. *)
    Metrics.incr_bad_requests t.metrics;
    Http.write_response fd ~status:408 ~body:"" ();
    close_quiet fd
  | exception Unix.Unix_error _ -> close_quiet fd
  | None -> close_quiet fd
  | Some req -> route t fd (peer_key addr) req

(* The reader pool: everything that touches a client socket before
   admission happens here, never on the acceptor. Sized past the worker
   count so a handful of slow clients (each bounded by the read deadline
   anyway) cannot starve health checks. *)
let reader_count config = max 2 config.max_inflight

let rec reader_loop t =
  match Admission.pop t.conns with
  | None -> ()
  | Some (fd, addr) ->
    (try handle_conn t fd addr with _ -> close_quiet fd);
    reader_loop t

(* Trigger-once drain used by both SIGTERM and the public drain. *)
let rec drain_now t =
  if Atomic.compare_and_set t.drain_started false true then begin
    Atomic.set t.is_draining true;
    let deadline_ns = Clock.now_ns () + Clock.ns_of_s t.config.drain_deadline_s in
    Atomic.set t.drain_deadline_ns deadline_ns;
    (* Everything queued but unstarted is refused now — the client gets
       a crisp 503 instead of a response that would arrive after the
       process is gone. *)
    let pending = Fair_queue.flush t.queue in
    List.iter
      (fun job ->
        match job.jfd with
        | None -> () (* a background refresh owes nobody an answer *)
        | Some fd ->
          Metrics.incr_drained t.metrics;
          respond_error t fd ~request_id:job.jid ~status:503 ~headers:(retry_after 1.)
            ~code:"draining" ~message:"server is draining; request was not started" ();
          close_quiet fd)
      pending;
    Fair_queue.close t.queue;
    (* In-flight work gets the drain window, enforced by the evaluator
       itself: overruns die with resource:deadline, answered as 504. The
       preempt deadline is sticky inside Service, so an attempt that was
       already dequeued but not yet registered when this runs is
       tightened at registration — no evaluation slips past the drain
       with an unbounded deadline. *)
    ignore (Service.preempt_inflight t.svc ~deadline_ns);
    (* Workers exit once the (closed) queue is empty; the supervisor
       joins and retires them, then exits itself. *)
    (match t.supervisor with Some th -> Thread.join th | None -> ());
    Atomic.set t.stop_supervisor true;
    Atomic.set t.stop_accept true;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (* Readers stayed up until here so /healthz and /readyz kept
       answering during the drain. Closing their queue lets them finish
       what they hold (generate is already refused with 503) and exit;
       each is bounded by the whole-request read deadline. *)
    Admission.close t.conns;
    List.iter Thread.join t.readers;
    t.readers <- [];
    (match t.listen_fd with
    | Some fd ->
      t.listen_fd <- None;
      close_quiet fd
    | None -> ());
    Atomic.set t.is_stopped true
  end
  else await t

and await t = while not (Atomic.get t.is_stopped) do Thread.delay 0.01 done

let drain = drain_now

let accept_loop t fd =
  while not (Atomic.get t.stop_accept) do
    if Atomic.get t.sigterm && not (Atomic.get t.drain_started) then
      (* Drain on its own thread so the acceptor keeps answering
         health checks and shedding /generate while in-flight work
         finishes. *)
      ignore (Thread.create (fun () -> drain_now t) ());
    match Unix.accept ~cloexec:true fd with
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error _ -> if Atomic.get t.stop_accept then () else Thread.delay 0.01
    | conn, addr ->
      (try
         Unix.setsockopt_float conn Unix.SO_RCVTIMEO t.config.io_timeout_s;
         Unix.setsockopt_float conn Unix.SO_SNDTIMEO t.config.io_timeout_s
       with Unix.Unix_error _ -> ());
      (match Admission.push t.conns (conn, addr) with
      | `Accepted -> ()
      | `Shed ->
        (* Every reader is held by a slow client and the backlog is
           full: refuse without reading a byte. The tiny response fits
           any socket buffer, so this write cannot block the acceptor. *)
        Metrics.incr_shed t.metrics;
        respond_error t conn ~request_id:"-" ~status:503 ~headers:(retry_after 1.)
          ~code:"overloaded" ~message:"connection backlog full" ();
        close_quiet conn)
  done

let start t =
  (* A peer that disconnects before we answer — routine when overloaded
     clients time out and hang up — turns the response write into
     SIGPIPE, whose default action kills the process before any
     exception handler runs. Ignored, the write fails with EPIPE, which
     every write path here already swallows. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.config.port));
  Unix.listen fd 128;
  (* The accept timeout doubles as the poll interval for the stop and
     SIGTERM flags. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.05 with Unix.Unix_error _ -> ());
  (match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> t.actual_port <- p
  | _ -> ());
  t.listen_fd <- Some fd;
  Array.iter (fun slot -> spawn_worker t slot) t.slots;
  t.readers <-
    List.init (reader_count t.config) (fun _ -> Thread.create (fun () -> reader_loop t) ());
  t.supervisor <- Some (Thread.create (fun () -> supervisor_loop t) ());
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t fd) ())

let install_sigterm t =
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set t.sigterm true))

module Http = Http
module Token_bucket = Token_bucket
module Admission = Admission
module Metrics = Metrics
module Brownout = Brownout
module Fair_queue = Fair_queue
