(* Consistent-hash ring over shard ids.

   The point of sharding here is cache locality, not just load
   spreading: the Service-layer template/model/plan/result caches are
   per-process, so the same (template, model) key must keep landing on
   the same backend for its caches to stay warm. A consistent-hash ring
   with virtual nodes gives that, plus the two properties the cluster
   machinery leans on: adding or removing one shard remaps only ~1/N of
   the key space (the rest of the fleet's caches survive a topology
   change), and failover is a deterministic walk to the next distinct
   shard clockwise — every front thread agrees where a key goes when its
   home shard is out, without coordination. *)

type t = {
  replicas : int;
  (* sorted by point; each virtual node maps a ring position to a shard *)
  ring : (int64 * int) array;
  shards : int list;
}

(* FNV-1a, 64-bit, with a murmur-style avalanche finalizer. Bare FNV's
   multiply only carries entropy upward, so strings that differ in their
   last few characters — exactly what "shard-N/vnode-R" labels do —
   land with nearly identical high bits, and ring position is decided by
   the high bits. Without the finalizer each shard's vnodes clump into
   one arc and the ring degenerates to N segments of arbitrary width.
   Not a security boundary; just needs dispersion. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let avalanche h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  avalanche !h

(* Int64 comparison as unsigned: ring points are raw 64-bit hashes. *)
let ucompare (a : int64) (b : int64) =
  Int64.unsigned_compare a b

let create ?(replicas = 64) ids =
  let ids = List.sort_uniq compare ids in
  let points =
    List.concat_map
      (fun id ->
        List.init replicas (fun r -> (hash64 (Printf.sprintf "shard-%d/vnode-%d" id r), id)))
      ids
  in
  let ring = Array.of_list points in
  Array.sort (fun (a, _) (b, _) -> ucompare a b) ring;
  { replicas; ring; shards = ids }

let shards t = t.shards

(* First ring index at or clockwise-after [point] (wrapping). *)
let successor t point =
  let n = Array.length t.ring in
  if n = 0 then invalid_arg "Router.route: empty ring";
  (* binary search for the first point >= key *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p, _ = t.ring.(mid) in
    if ucompare p point < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t key =
  let i = successor t (hash64 key) in
  snd t.ring.(i)

let route_excluding t ~exclude key =
  let n = Array.length t.ring in
  if n = 0 then None
  else begin
    let start = successor t (hash64 key) in
    (* Walk clockwise until a non-excluded shard appears; bounded by the
       ring size, and in practice by replicas x excluded shards. *)
    let rec go i steps =
      if steps >= n then None
      else
        let _, id = t.ring.((start + i) mod n) in
        if exclude id then go (i + 1) (steps + 1) else Some id
    in
    go 0 0
  end

(* The ordered failover/hedge chain for a key: the home shard first,
   then each distinct successor clockwise — the walk [route_excluding]
   performs under exclusion, made inspectable so tests, operators, and
   the chaos harness can see where a key will land as shards fall. *)
let failover_chain ?limit t key =
  let n = Array.length t.ring in
  if n = 0 then []
  else begin
    let limit = match limit with Some l -> l | None -> List.length t.shards in
    let start = successor t (hash64 key) in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let i = ref 0 in
    while !i < n && Hashtbl.length seen < limit do
      let _, id = t.ring.((start + !i) mod n) in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        out := id :: !out
      end;
      incr i
    done;
    List.rev !out
  end

let add t id = create ~replicas:t.replicas (id :: t.shards)
let remove t id = create ~replicas:t.replicas (List.filter (fun s -> s <> id) t.shards)
