(* awbserve — drive the document-generation service over a directory of
   template files.

   Examples:
     dune exec bin/awbserve.exe -- --templates examples/ --sample banking
     dune exec bin/awbserve.exe -- -T tpls/ --model m.xml --domains 4 --repeat 8 --stats
     dune exec bin/awbserve.exe -- -T tpls/ --sample glass --engine functional \
       --deadline 250 --out generated/ *)

open Cmdliner

let list_templates dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort compare
    |> List.map (fun f -> (Filename.remove_extension f, Filename.concat dir f))
  | exception Sys_error m -> failwith m

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_model sample model_file =
  match (sample, model_file) with
  | Some "banking", None -> Ok (Service.Model_value (Awb.Samples.banking_model ()))
  | Some "glass", None -> Ok (Service.Model_value (Awb.Samples.glass_model ()))
  | Some other, None -> Error (Printf.sprintf "unknown sample %S (banking|glass)" other)
  | None, Some path -> (
    (* Route through the service's model cache: repeated requests import
       the XML once. *)
    try Ok (Service.Model_xml { metamodel = Awb.Samples.it_architecture; xml = read_file path })
    with Sys_error m -> Error m)
  | None, None -> Ok (Service.Model_value (Awb.Samples.banking_model ()))
  | Some _, Some _ -> Error "choose one of --sample or --model"

let run templates_dir sample model_file engine domains repeat deadline_ms cache_capacity
    fuel max_depth max_nodes retries quarantine_after out_dir stats =
  let fail m =
    prerr_endline ("awbserve: " ^ m);
    exit 1
  in
  let engine =
    match Docgen.engine_of_string engine with Ok e -> e | Error m -> fail m
  in
  let model = match load_model sample model_file with Ok m -> m | Error m -> fail m in
  let templates =
    match list_templates templates_dir with
    | [] -> fail (Printf.sprintf "no .xml templates in %s" templates_dir)
    | ts -> ts
    | exception Failure m -> fail m
  in
  let svc =
    Service.create
      ~config:
        {
          Service.default_config with
          Service.domains;
          cache_capacity;
          default_deadline = Option.map (fun ms -> ms /. 1000.) deadline_ms;
          fuel;
          max_depth;
          max_nodes;
          retries;
          quarantine_after;
        }
      ()
  in
  let requests =
    List.concat_map
      (fun round ->
        List.map
          (fun (name, path) ->
            let id = if repeat = 1 then name else Printf.sprintf "%s.%d" name round in
            Service.request ~engine ~id
              ~template:(Service.Template_xml (read_file path))
              ~model ())
          templates)
      (List.init (max 1 repeat) (fun i -> i + 1))
  in
  let t0 = Unix.gettimeofday () in
  let responses = Service.run_batch svc requests in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (match out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (r : Service.response) ->
        match r.Service.result with
        | Ok out ->
          let oc = open_out (Filename.concat dir (r.Service.request_id ^ ".xml")) in
          output_string oc out.Service.document;
          output_char oc '\n';
          close_out oc
        | Error _ -> ())
      responses);
  let ok, failed =
    List.partition (fun (r : Service.response) -> Result.is_ok r.Service.result) responses
  in
  List.iter
    (fun (r : Service.response) ->
      match r.Service.result with
      | Ok out ->
        Printf.printf "ok   %-24s %6d bytes  %7.2f ms%s\n" r.Service.request_id
          (String.length out.Service.document)
          (out.Service.timings.Service.total_s *. 1000.)
          (match out.Service.problems with
          | [] -> ""
          | ps -> Printf.sprintf "  (%d problems)" (List.length ps))
      | Error e ->
        Printf.printf "FAIL %-24s %s\n" r.Service.request_id (Service.error_to_string e))
    responses;
  Printf.printf "\n%d requests (%d ok, %d failed) in %.2f ms across %d domain%s\n"
    (List.length responses) (List.length ok) (List.length failed) elapsed_ms domains
    (if domains = 1 then "" else "s");
  if stats then Format.printf "%a@." Service.pp_counters (Service.counters svc);
  if failed = [] then 0 else 1

let templates_dir =
  Arg.(
    required
    & opt (some dir) None
    & info [ "T"; "templates" ] ~docv:"DIR" ~doc:"Directory of .xml template files.")

let sample =
  Arg.(value & opt (some string) None & info [ "sample" ] ~docv:"NAME" ~doc:"banking or glass.")

let model_file =
  Arg.(value & opt (some file) None & info [ "model" ] ~docv:"XML" ~doc:"awb-model export.")

let engine =
  Arg.(
    value & opt string "host"
    & info [ "engine" ] ~docv:"E" ~doc:"host, functional, or xq.")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N" ~doc:"Fan the batch across $(docv) OCaml domains.")

let repeat =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"K"
        ~doc:"Serve the template set $(docv) times (exercises the caches).")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"MS" ~doc:"Per-request deadline in milliseconds.")

let cache_capacity =
  Arg.(
    value & opt int 128
    & info [ "cache" ] ~docv:"N" ~doc:"Artifact cache capacity (0 disables caching).")

let fuel =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Evaluator step budget per generation attempt (resource:fuel on trip).")

let max_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-depth" ] ~docv:"N" ~doc:"User-function recursion depth budget.")

let max_nodes =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Constructed-node budget per attempt.")

let retries =
  Arg.(
    value & opt int Service.default_config.Service.retries
    & info [ "retries" ] ~docv:"N" ~doc:"Extra attempts for declared-transient failures.")

let quarantine_after =
  Arg.(
    value & opt int 0
    & info [ "quarantine-after" ] ~docv:"N"
        ~doc:
          "Quarantine a template after $(docv) consecutive generation failures (0 \
           disables).")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Write each generated document to $(docv)/<id>.xml.")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print service counters.")

let cmd =
  let doc = "serve batches of document generations from AWB models" in
  Cmd.v
    (Cmd.info "awbserve" ~doc)
    Term.(
      const run $ templates_dir $ sample $ model_file $ engine $ domains $ repeat
      $ deadline_ms $ cache_capacity $ fuel $ max_depth $ max_nodes $ retries
      $ quarantine_after $ out_dir $ stats)

let () = exit (Cmd.eval' cmd)
