(* awbserve — drive the document-generation service over a directory of
   template files, either as a one-shot batch (the default) or as an
   overload-resilient HTTP server ([awbserve serve]).

   Examples:
     dune exec bin/awbserve.exe -- --templates examples/ --sample banking
     dune exec bin/awbserve.exe -- -T tpls/ --model m.xml --domains 4 --repeat 8 --stats
     dune exec bin/awbserve.exe -- -T tpls/ --sample glass --engine functional \
       --deadline 250 --out generated/
     dune exec bin/awbserve.exe -- serve --port 8080 --max-inflight 4 \
       --queue-cap 64 --rate 50 --drain-deadline 5 *)

open Cmdliner

let list_templates dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort compare
    |> List.map (fun f -> (Filename.remove_extension f, Filename.concat dir f))
  | exception Sys_error m -> failwith m

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_model sample model_file =
  match (sample, model_file) with
  | Some "banking", None -> Ok (Service.Model_value (Awb.Samples.banking_model ()))
  | Some "glass", None -> Ok (Service.Model_value (Awb.Samples.glass_model ()))
  | Some other, None -> Error (Printf.sprintf "unknown sample %S (banking|glass)" other)
  | None, Some path -> (
    (* Route through the service's model cache: repeated requests import
       the XML once. *)
    try Ok (Service.Model_xml { metamodel = Awb.Samples.it_architecture; xml = read_file path })
    with Sys_error m -> Error m)
  | None, None -> Ok (Service.Model_value (Awb.Samples.banking_model ()))
  | Some _, Some _ -> Error "choose one of --sample or --model"

let fail m =
  prerr_endline ("awbserve: " ^ m);
  exit 1

let fault_config fault_seed crash_rate deadline_rate transient_rate =
  match (fault_seed, crash_rate, deadline_rate, transient_rate) with
  | None, 0., 0., 0. -> None
  | seed, crash_rate, deadline_rate, transient_rate ->
    Some
      {
        Service.Fault.none with
        Service.Fault.seed = Option.value seed ~default:0;
        crash_rate;
        deadline_rate;
        transient_rate;
      }

(* ------------------------------------------------------------------ *)
(* Batch mode (the default command)                                    *)
(* ------------------------------------------------------------------ *)

let run templates_dir sample model_file engine domains repeat deadline_ms cache_capacity
    fuel max_depth max_nodes retries quarantine_after out_dir stats metrics =
  let engine =
    match Docgen.engine_of_string engine with Ok e -> e | Error m -> fail m
  in
  let model = match load_model sample model_file with Ok m -> m | Error m -> fail m in
  let templates =
    match list_templates templates_dir with
    | [] -> fail (Printf.sprintf "no .xml templates in %s" templates_dir)
    | ts -> ts
    | exception Failure m -> fail m
  in
  let svc =
    Service.create
      ~config:
        {
          Service.default_config with
          Service.domains;
          cache_capacity;
          default_deadline = Option.map (fun ms -> ms /. 1000.) deadline_ms;
          fuel;
          max_depth;
          max_nodes;
          retries;
          quarantine_after;
        }
      ()
  in
  let requests =
    List.concat_map
      (fun round ->
        List.map
          (fun (name, path) ->
            let id = if repeat = 1 then name else Printf.sprintf "%s.%d" name round in
            Service.request ~engine ~id
              ~template:(Service.Template_xml (read_file path))
              ~model ())
          templates)
      (List.init (max 1 repeat) (fun i -> i + 1))
  in
  (* Monotonic clock: batch timing must not jump with NTP/wall-clock
     adjustments. *)
  let t0 = Clock.now () in
  let responses = Service.run_batch svc requests in
  let elapsed_ms = (Clock.now () -. t0) *. 1000. in
  (match out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (r : Service.response) ->
        match r.Service.result with
        | Ok out ->
          let oc = open_out (Filename.concat dir (r.Service.request_id ^ ".xml")) in
          output_string oc out.Service.document;
          output_char oc '\n';
          close_out oc
        | Error _ -> ())
      responses);
  let ok, failed =
    List.partition (fun (r : Service.response) -> Result.is_ok r.Service.result) responses
  in
  List.iter
    (fun (r : Service.response) ->
      match r.Service.result with
      | Ok out ->
        Printf.printf "ok   %-24s %6d bytes  %7.2f ms%s\n" r.Service.request_id
          (String.length out.Service.document)
          (out.Service.timings.Service.total_s *. 1000.)
          (match out.Service.problems with
          | [] -> ""
          | ps -> Printf.sprintf "  (%d problems)" (List.length ps))
      | Error e ->
        Printf.printf "FAIL %-24s %s\n" r.Service.request_id (Service.error_to_string e))
    responses;
  Printf.printf "\n%d requests (%d ok, %d failed) in %.2f ms across %d domain%s\n"
    (List.length responses) (List.length ok) (List.length failed) elapsed_ms domains
    (if domains = 1 then "" else "s");
  if stats then Format.printf "%a@." Service.pp_counters (Service.counters svc);
  if metrics then print_string (Service.counters_to_prometheus (Service.counters svc));
  if failed = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* Serve mode                                                          *)
(* ------------------------------------------------------------------ *)

let serve host port max_inflight queue_cap tenant_cap rate burst deadline_ms
    drain_deadline brownout result_cache_cap sample model_file engine cache_capacity
    fuel max_depth max_nodes retries quarantine_after fault_seed crash_rate
    deadline_rate transient_rate keepalive idle_timeout max_conn_requests shards
    record chaos_seed hedge breaker_failures breaker_cooldown store_dir replicas
    write_quorum scrub_interval =
  let engine =
    match Docgen.engine_of_string engine with Ok e -> e | Error m -> fail m
  in
  let model = match load_model sample model_file with Ok m -> m | Error m -> fail m in
  let fault = fault_config fault_seed crash_rate deadline_rate transient_rate in
  if chaos_seed <> None && shards <= 0 then
    fail "--chaos injects faults on the shard transport; it needs --shards >= 1";
  (* The result cache exists for brownout's stale-while-revalidate: on
     by default exactly when --brownout is, overridable either way. *)
  let result_cache_cap =
    match result_cache_cap with
    | Some n -> n
    | None -> if brownout then 256 else 0
  in
  let svc =
    Service.create
      ~config:
        {
          Service.default_config with
          Service.cache_capacity;
          result_cache_cap;
          fuel;
          max_depth;
          max_nodes;
          retries;
          quarantine_after;
          fault;
        }
      ()
  in
  (* Sharded mode: the backends own the generation caches, so they get
     the configured cache sizes and the fallback model spec; the front's
     local service still answers stale-cache lookups. *)
  let cluster =
    if shards <= 0 then None
    else begin
      let model_spec =
        match (sample, model_file) with
        | Some s, None -> s
        | None, Some path -> "file:" ^ path
        | _ -> "banking"
      in
      Some
        (Server.Shard.start
           ~config:
             {
               Server.Shard.default_cluster_config with
               Server.Shard.shards;
               cache_capacity;
               result_cache_cap;
               model_spec;
               chaos = Option.map Server.Chaos.of_seed chaos_seed;
               breaker =
                 {
                   Server.Breaker.default_config with
                   Server.Breaker.failure_threshold = breaker_failures;
                   cooldown_s = breaker_cooldown;
                 };
               hedge;
             }
           ())
    end
  in
  let recorder = Option.map (fun _ -> Server.Recorder.create ()) record in
  (* Incremental capture durability: the ring alone only survives a
     clean drain; the sink flushes to disk every 32 admitted requests,
     so a kill -9 loses at most that window. *)
  (match (record, recorder) with
  | Some path, Some r -> Server.Recorder.attach_sink r ~path ~every:32 ()
  | _ -> ());
  if replicas > 0 && store_dir = None then fail "--replicas needs --store DIR";
  if replicas > 0 && (write_quorum < 1 || write_quorum > replicas) then
    fail "--write-quorum must be between 1 and --replicas";
  (* Replicated mode replaces the in-process store with a cluster of
     backend processes: every write is quorum-acked, reads follow the
     primary through failover. The two are exclusive — [repl] wins in
     the server's store tier when both are set, so we only ever set
     one. *)
  let repl =
    match (store_dir, replicas > 0) with
    | Some dir, true ->
      let cl =
        Server.Store.Replica.create
          ~config:
            {
              Server.Store.Replica.default_config with
              Server.Store.Replica.replicas;
              write_quorum;
              scrub_interval_s = scrub_interval;
            }
          ~dir ()
      in
      Printf.printf
        "awbserve: replicated store %s: %d replicas, write quorum %d, primary %d \
         (epoch %d)\n\
         %!"
        dir replicas write_quorum
        (Server.Store.Replica.primary cl)
        (Server.Store.Replica.epoch cl);
      Some cl
    | _ -> None
  in
  let store =
    if repl <> None then None
    else
      Option.map
        (fun dir ->
          let s = Server.Store.open_store dir in
          let q = Server.Store.quarantined s in
          Printf.printf "awbserve: store %s: %d docs in %d segments%s\n%!" dir
            (Server.Store.doc_count s) (Server.Store.segment_count s)
            (if q = [] then ""
             else Printf.sprintf ", %d segments QUARANTINED" (List.length q));
          s)
        store_dir
  in
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          Server.host;
          port;
          max_inflight;
          queue_cap;
          tenant_cap = Option.value tenant_cap ~default:Server.default_config.Server.tenant_cap;
          rate;
          burst;
          default_deadline_s = Option.map (fun ms -> ms /. 1000.) deadline_ms;
          drain_deadline_s = drain_deadline;
          default_engine = engine;
          model = Some model;
          fault;
          brownout = (if brownout then Some Server.Brownout.default_config else None);
          keepalive;
          idle_timeout_s = idle_timeout;
          max_conn_requests;
          recorder;
          store;
          repl;
          scrub_interval_s = scrub_interval;
        }
      ?cluster svc
  in
  Server.install_sigterm server;
  Server.install_sighup server;
  Server.start server;
  Printf.printf "awbserve: listening on %s:%d (%d workers, queue %d%s%s%s%s%s%s%s%s)\n%!"
    host (Server.port server) max_inflight queue_cap
    (if rate > 0. then Printf.sprintf ", %.1f req/s per client" rate else "")
    (if brownout then ", brownout on" else "")
    (if keepalive then ", keep-alive on" else "")
    (match cluster with
    | None -> ""
    | Some c -> Printf.sprintf ", %d shards" (Server.Shard.shard_count c))
    (match chaos_seed with
    | None -> ""
    | Some s -> Printf.sprintf ", chaos seed %d" s)
    (if hedge then ", hedging on" else "")
    (if record <> None then ", recording" else "")
    (match store_dir with
    | None -> ""
    | Some d ->
      if replicas > 0 then Printf.sprintf ", store %s x%d (W=%d)" d replicas write_quorum
      else ", store " ^ d);
  (* Blocks until SIGTERM (or a remote drain) completes; exit 0 is the
     contract a process supervisor keys on. *)
  Server.await server;
  Printf.printf "awbserve: drained (%d in-flight completed, %d queued flushed)\n%!"
    (Service.counters svc).Service.requests
    (Server.Metrics.drained (Server.metrics server));
  (match (record, recorder) with
  | Some path, Some r ->
    (* The sink already holds everything that was admitted (the ring
       drops its oldest past capacity); finalize flushes the backlog. *)
    let n = Server.Recorder.detach_sink r in
    Printf.printf "awbserve: wrote %d recorded requests to %s (%d dropped by ring)\n%!" n
      path (Server.Recorder.dropped r)
  | _ -> ());
  (match store with
  | Some s ->
    Server.Store.close s;
    Printf.printf "awbserve: store checkpointed and closed\n%!"
  | None -> ());
  (* The drain already shut the cluster down (Server owns it); this is
     just the operator-facing confirmation. *)
  (match repl with
  | Some _ -> Printf.printf "awbserve: replicas drained and closed\n%!"
  | None -> ());
  0

(* ------------------------------------------------------------------ *)
(* Replay mode                                                         *)
(* ------------------------------------------------------------------ *)

(* A minimal blocking HTTP client, one request per connection. The
   replayer is open-loop — every recorded entry fires at its recorded
   offset (divided by --speed) on its own thread, whether or not
   earlier responses have come back — so server-side pushback shows up
   as shed/timeout responses rather than as a slowed-down workload. *)
let replay_request ~port (e : Server.Recorder.entry) =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let deadline_hdr =
        if e.e_deadline_ms > 0 then Printf.sprintf "x-deadline-ms: %d\r\n" e.e_deadline_ms
        else ""
      in
      let data =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: replay\r\nConnection: close\r\nx-tenant: \
           %s\r\n%sContent-Length: %d\r\n\r\n%s"
          e.e_meth e.e_path e.e_tenant deadline_hdr (String.length e.e_body) e.e_body
      in
      let bytes = Bytes.unsafe_of_string data in
      let rec send off =
        if off < Bytes.length bytes then
          send (off + Unix.write fd bytes off (Bytes.length bytes - off))
      in
      send 0;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        end
      in
      (try recv () with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      let raw = Buffer.contents buf in
      if String.length raw < 12 then None
      else int_of_string_opt (String.sub raw 9 3))

let replay file speed shards chaos_seed hedge sample model_file engine cache_capacity
    max_inflight queue_cap store_dir =
  if speed <= 0. then fail "--speed must be positive";
  if chaos_seed <> None && shards <= 0 then
    fail "--chaos injects faults on the shard transport; it needs --shards >= 1";
  let entries =
    match Server.Recorder.load file with
    | [] -> fail (Printf.sprintf "capture file %s holds no requests" file)
    | es -> es
    | exception Server.Frame.Protocol_error m -> fail m
    | exception Sys_error m -> fail m
  in
  let engine =
    match Docgen.engine_of_string engine with Ok e -> e | Error m -> fail m
  in
  let model = match load_model sample model_file with Ok m -> m | Error m -> fail m in
  let cluster =
    if shards <= 0 then None
    else
      Some
        (Server.Shard.start
           ~config:
             {
               Server.Shard.default_cluster_config with
               Server.Shard.shards;
               cache_capacity;
               model_spec =
                 (match (sample, model_file) with
                 | Some s, None -> s
                 | None, Some path -> "file:" ^ path
                 | _ -> "banking");
               chaos = Option.map Server.Chaos.of_seed chaos_seed;
               hedge;
               (* A replay is a bounded run: a recorded request with no
                  deadline must not ride the 300 s production default
                  when a chaos drop eats its frame. *)
               call_timeout_s = 10.;
             }
           ())
  in
  let svc = Service.create ~config:{ Service.default_config with Service.cache_capacity } () in
  (* A capture with store traffic (the /collections routes) replays
     against a real store so the mixed workload exercises the same
     write path. *)
  let store = Option.map Server.Store.open_store store_dir in
  let server =
    Server.create
      ~config:
        {
          Server.default_config with
          Server.port = 0;
          max_inflight;
          queue_cap;
          default_engine = engine;
          model = Some model;
          store;
        }
      ?cluster svc
  in
  Server.start server;
  let port = Server.port server in
  Printf.printf "awbserve: replaying %d requests at %.1fx against port %d (%s%s%s)\n%!"
    (List.length entries) speed port
    (if shards > 0 then Printf.sprintf "%d shards" shards else "in-process")
    (match chaos_seed with
    | None -> ""
    | Some s -> Printf.sprintf ", chaos seed %d" s)
    (if hedge then ", hedging" else "");
  (* Client-side ledger: every request resolves exactly once, as a
     status or as a connection error — the first invariant. *)
  let mu = Mutex.create () in
  let responses = ref 0 and conn_errors = ref 0 in
  let statuses = Hashtbl.create 8 in
  let note = function
    | Some st ->
      Mutex.lock mu;
      incr responses;
      Hashtbl.replace statuses st (1 + Option.value ~default:0 (Hashtbl.find_opt statuses st));
      Mutex.unlock mu
    | None ->
      Mutex.lock mu;
      incr conn_errors;
      Mutex.unlock mu
  in
  let t0 = Clock.now () in
  let threads =
    List.map
      (fun (e : Server.Recorder.entry) ->
        let due = t0 +. (e.e_ts /. speed) in
        let d = due -. Clock.now () in
        if d > 0. then Thread.delay d;
        Thread.create
          (fun () ->
            note (try replay_request ~port e with Unix.Unix_error _ | Sys_error _ -> None))
          ())
      entries
  in
  List.iter Thread.join threads;
  (* Let server-side connection teardown finish checking pooled buffers
     back in before the books are audited. *)
  Thread.delay 0.3;
  (* After the storm the breakers must find their way home: the
     supervisor respawns any corpse, the work probe passes, success
     closes the circuit. A breaker still open after the grace window is
     a real defect, reported as an invariant violation below. *)
  let breakers_settled =
    match Server.cluster server with
    | None -> true
    | Some c ->
      let deadline = Clock.now () +. 15. in
      let rec go () =
        if Array.for_all (fun s -> s = 0) (Server.Shard.breaker_states c) then true
        else if Clock.now () > deadline then false
        else begin
          Thread.delay 0.2;
          go ()
        end
      in
      go ()
  in
  let metrics_text = Server.metrics_body server in
  let cluster_report =
    match Server.cluster server with
    | None -> ""
    | Some c ->
      Printf.sprintf "replay: %d failovers, %d restarts, %d hedges (%d won), breakers [%s]\n"
        (Server.Shard.failovers c) (Server.Shard.restarts c) (Server.Shard.hedges c)
        (Server.Shard.hedge_wins c)
        (String.concat "; "
           (Array.to_list
              (Array.map string_of_int (Server.Shard.breaker_states c))))
  in
  Server.drain server;
  Option.iter Server.Store.close store;
  let ledger =
    {
      Server.Recorder.sent = List.length entries;
      responses = !responses;
      conn_errors = !conn_errors;
      status_counts = Hashtbl.fold (fun st n acc -> (st, n) :: acc) statuses [];
    }
  in
  let violations = Server.Recorder.check_invariants ~ledger ~metrics_text in
  let violations =
    if breakers_settled then violations
    else violations @ [ "circuit breakers never returned to Closed after the run" ]
  in
  let ok = Option.value ~default:0 (Hashtbl.find_opt statuses 200) in
  Printf.printf "replay: %d sent, %d responses (%d ok), %d connection errors\n"
    ledger.Server.Recorder.sent !responses ok !conn_errors;
  List.sort compare (Hashtbl.fold (fun st n acc -> (st, n) :: acc) statuses [])
  |> List.iter (fun (st, n) -> Printf.printf "replay:   %3d x %d\n" st n);
  print_string cluster_report;
  match violations with
  | [] ->
    Printf.printf "replay: invariants clean\n";
    0
  | vs ->
    List.iter (fun v -> Printf.eprintf "replay: invariant violation: %s\n" v) vs;
    1

(* ------------------------------------------------------------------ *)
(* Scrub mode                                                          *)
(* ------------------------------------------------------------------ *)

(* Offline integrity pass over a store directory: verify every checksum
   in every segment, read-only, and report torn tails, mid-log damage
   and whether the manifest already quarantines it. Exit 0 only when no
   unquarantined damage remains. *)
let scrub dir =
  let report = Server.Store.Scrub.run dir in
  print_string (Server.Store.Scrub.render report);
  if Server.Store.Scrub.clean report then 0 else 1

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let templates_dir =
  Arg.(
    required
    & opt (some dir) None
    & info [ "T"; "templates" ] ~docv:"DIR" ~doc:"Directory of .xml template files.")

let sample =
  Arg.(value & opt (some string) None & info [ "sample" ] ~docv:"NAME" ~doc:"banking or glass.")

let model_file =
  Arg.(value & opt (some file) None & info [ "model" ] ~docv:"XML" ~doc:"awb-model export.")

let engine =
  Arg.(
    value & opt string "host"
    & info [ "engine" ] ~docv:"E" ~doc:"host, functional, or xq.")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N" ~doc:"Fan the batch across $(docv) OCaml domains.")

let repeat =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"K"
        ~doc:"Serve the template set $(docv) times (exercises the caches).")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"MS" ~doc:"Per-request deadline in milliseconds.")

let cache_capacity =
  Arg.(
    value & opt int 128
    & info [ "cache" ] ~docv:"N" ~doc:"Artifact cache capacity (0 disables caching).")

let fuel =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Evaluator step budget per generation attempt (resource:fuel on trip).")

let max_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-depth" ] ~docv:"N" ~doc:"User-function recursion depth budget.")

let max_nodes =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Constructed-node budget per attempt.")

let retries =
  Arg.(
    value & opt int Service.default_config.Service.retries
    & info [ "retries" ] ~docv:"N" ~doc:"Extra attempts for declared-transient failures.")

let quarantine_after =
  Arg.(
    value & opt int 0
    & info [ "quarantine-after" ] ~docv:"N"
        ~doc:
          "Quarantine a template after $(docv) consecutive generation failures (0 \
           disables).")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Write each generated document to $(docv)/<id>.xml.")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print service counters.")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print service counters in Prometheus text format after the batch.")

(* serve-only flags *)

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port =
  Arg.(
    value & opt int 8080
    & info [ "port" ] ~docv:"PORT" ~doc:"Listen port (0 picks an ephemeral port).")

let max_inflight =
  Arg.(
    value & opt int Server.default_config.Server.max_inflight
    & info [ "max-inflight" ] ~docv:"N" ~doc:"Worker domains executing requests.")

let queue_cap =
  Arg.(
    value & opt int Server.default_config.Server.queue_cap
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Admission queue capacity; requests beyond it are shed with 503.")

let tenant_cap =
  Arg.(
    value
    & opt (some int) None
    & info [ "tenant-cap" ] ~docv:"N"
        ~doc:
          "Per-tenant bulkhead within the admission queue (tenant = X-Tenant header, \
           else client address); a tenant past its cap gets 429 while other tenants \
           keep their queue space. Default: no bulkhead.")

let brownout =
  Arg.(
    value & flag
    & info [ "brownout" ]
        ~doc:
          "Enable the graceful-degradation controller: under sustained load the \
           server steps Normal -> Degraded -> Critical, serving stale cached results \
           and skeleton documents instead of shedding everything.")

let result_cache_cap =
  Arg.(
    value
    & opt (some int) None
    & info [ "result-cache-cap" ] ~docv:"N"
        ~doc:
          "Completed-generation cache capacity for stale-while-revalidate (0 \
           disables). Default: 256 with --brownout, 0 without.")

let rate =
  Arg.(
    value & opt float 0.
    & info [ "rate" ] ~docv:"R"
        ~doc:"Per-client token-bucket refill, requests/second (0 disables).")

let burst =
  Arg.(
    value & opt float Server.default_config.Server.burst
    & info [ "burst" ] ~docv:"B" ~doc:"Per-client token-bucket size.")

let drain_deadline =
  Arg.(
    value & opt float Server.default_config.Server.drain_deadline_s
    & info [ "drain-deadline" ] ~docv:"S"
        ~doc:"Seconds in-flight requests may run after SIGTERM before their \
              evaluator deadlines are tightened to now.")

let fault_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Deterministic fault-injection seed.")

let crash_rate =
  Arg.(
    value & opt float 0.
    & info [ "fault-crash-rate" ] ~docv:"P"
        ~doc:"Probability a request kills its worker domain (supervisor restarts it).")

let deadline_rate =
  Arg.(
    value & opt float 0.
    & info [ "fault-deadline-rate" ] ~docv:"P"
        ~doc:"Probability a request's deadline is forced into the past.")

let transient_rate =
  Arg.(
    value & opt float 0.
    & info [ "fault-transient-rate" ] ~docv:"P"
        ~doc:"Probability of a declared-transient failure (retried with backoff).")

let keepalive =
  Arg.(
    value & flag
    & info [ "keepalive" ]
        ~doc:
          "Persistent HTTP/1.1 connections: per-connection request loop, pipelining, \
           pooled parse buffers, idle-connection timeout. Off by default (one \
           request per connection).")

let idle_timeout =
  Arg.(
    value & opt float 5.
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Close a keep-alive connection after $(docv) with no request on it. Only \
           meaningful with $(b,--keepalive).")

let max_conn_requests =
  Arg.(
    value & opt int 1000
    & info [ "max-conn-requests" ] ~docv:"N"
        ~doc:
          "Serve at most $(docv) requests on one keep-alive connection, then answer \
           with Connection: close. Bounds per-connection resource drift.")

let shards =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Run $(docv) backend worker processes and consistent-hash route generate \
           bodies to them over Unix-domain sockets, so each backend's caches stay \
           warm on its slice of the key space. SIGHUP rolls the backends one at a \
           time (zero-downtime reload). 0 (the default) serves in-process.")

let record =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:
          "Capture every admitted /generate request (method, path, tenant, deadline, \
           body, monotonic timestamp) into a bounded ring and write it to $(docv) on \
           drain, for $(b,awbserve replay).")

let chaos_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "Deterministic fault injection on the shard transport: delays, drops, \
           truncations, CRC corruption, duplicates, and stalls, each a pure function \
           of ($(docv), shard, frame sequence) — one seed replays one byte-identical \
           fault schedule. Requires $(b,--shards).")

let hedge =
  Arg.(
    value & flag
    & info [ "hedge" ]
        ~doc:
          "Hedged requests: when a sharded generate is still in flight past the p95 \
           latency estimate, re-issue it to the ring successor and use whichever \
           response lands first. Cuts tail latency under stalls at the cost of \
           duplicate work.")

let breaker_failures =
  Arg.(
    value & opt int Server.Breaker.default_config.Server.Breaker.failure_threshold
    & info [ "breaker-failures" ] ~docv:"N"
        ~doc:
          "Consecutive shard-call failures that trip that shard's circuit breaker \
           open (routing then skips it until a half-open probe succeeds).")

let breaker_cooldown =
  Arg.(
    value & opt float Server.Breaker.default_config.Server.Breaker.cooldown_s
    & info [ "breaker-cooldown" ] ~docv:"S"
        ~doc:"Seconds an open breaker dwells before admitting its half-open probe.")

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Crash-safe persistent collection store rooted at $(docv) (created if \
           missing, recovered on open). Enables $(b,PUT/GET/DELETE) \
           /collections/:name/docs/:id and $(b,POST) /collections/:name/query, \
           where doc() resolves against the named collection.")

let replicas =
  Arg.(
    value & opt int 0
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Replicate the store (requires $(b,--store)) across $(docv) backend \
           processes with quorum-acked log shipping: a write is acknowledged only \
           once $(b,--write-quorum) of them have fsync'd it, the primary fails over \
           when its breaker trips, and rejoining replicas are repaired by \
           anti-entropy before serving. 0 (the default) serves the store \
           in-process, unreplicated.")

let write_quorum =
  Arg.(
    value
    & opt int Server.Store.Replica.default_config.Server.Store.Replica.write_quorum
    & info [ "write-quorum" ] ~docv:"W"
        ~doc:
          "Fsync'd copies required before a replicated write is acknowledged; short \
           of $(docv) reachable replicas, writes are rolled back and answered 503 + \
           Retry-After while reads keep serving.")

let scrub_interval =
  Arg.(
    value & opt float 0.
    & info [ "scrub-interval" ] ~docv:"S"
        ~doc:
          "Run one incremental online scrub pass against the store every $(docv) \
           seconds from a background thread: checksum-verify the next live segment, \
           quarantine rot, export scrub counters on /metrics. 0 (the default) \
           disables. Replicated backends scrub themselves on the same cadence.")

(* replay-only flags *)

let capture_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Capture file written by $(b,serve --record).")

let speed =
  Arg.(
    value & opt float 1.
    & info [ "speed" ] ~docv:"X"
        ~doc:"Replay at $(docv) times the recorded cadence (open loop).")

let replay_shards =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:"Back the replay server with $(docv) shard backends (0 = in-process).")

let replay_max_inflight =
  Arg.(
    value & opt int Server.default_config.Server.max_inflight
    & info [ "max-inflight" ] ~docv:"N" ~doc:"Worker domains executing requests.")

let replay_queue_cap =
  Arg.(
    value & opt int Server.default_config.Server.queue_cap
    & info [ "queue-cap" ] ~docv:"N" ~doc:"Admission queue capacity.")

let batch_term =
  Term.(
    const run $ templates_dir $ sample $ model_file $ engine $ domains $ repeat
    $ deadline_ms $ cache_capacity $ fuel $ max_depth $ max_nodes $ retries
    $ quarantine_after $ out_dir $ stats $ metrics)

let serve_cmd =
  let doc = "serve document generation over HTTP with admission control and drain" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve $ host $ port $ max_inflight $ queue_cap $ tenant_cap $ rate $ burst
      $ deadline_ms $ drain_deadline $ brownout $ result_cache_cap $ sample
      $ model_file $ engine $ cache_capacity $ fuel $ max_depth $ max_nodes $ retries
      $ quarantine_after $ fault_seed $ crash_rate $ deadline_rate $ transient_rate
      $ keepalive $ idle_timeout $ max_conn_requests $ shards $ record $ chaos_seed
      $ hedge $ breaker_failures $ breaker_cooldown $ store_dir $ replicas
      $ write_quorum $ scrub_interval)

let replay_cmd =
  let doc =
    "replay a recorded workload against a fresh server and check conservation \
     invariants"
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const replay $ capture_file $ speed $ replay_shards $ chaos_seed $ hedge
      $ sample $ model_file $ engine $ cache_capacity $ replay_max_inflight
      $ replay_queue_cap $ store_dir)

let scrub_cmd =
  let doc =
    "verify every checksum in a store directory offline and report torn tails, \
     mid-log damage and quarantine state"
  in
  let scrub_dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Store directory to scrub (read-only).")
  in
  Cmd.v (Cmd.info "scrub" ~doc) Term.(const scrub $ scrub_dir)

let cmd =
  let doc = "serve batches of document generations from AWB models" in
  Cmd.group ~default:batch_term (Cmd.info "awbserve" ~doc)
    [ serve_cmd; replay_cmd; scrub_cmd ]

let () =
  (* When exec'd as a shard backend this serves frames and exits —
     before any argument parsing, so backend argv stays an internal
     contract rather than part of the CLI. The same re-exec discipline
     turns this process into a store crash-oracle child ingester. *)
  Server.Shard.maybe_run_backend ();
  Server.Store.Oracle.maybe_run_child ();
  Server.Store.Replica.maybe_run_backend ();
  exit (Cmd.eval' cmd)
