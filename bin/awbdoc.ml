(* awbdoc — generate a document from a template and a model.

   Examples:
     dune exec bin/awbdoc.exe -- --template tpl.xml --sample banking
     dune exec bin/awbdoc.exe -- --template tpl.xml --model m.xml --engine functional
     dune exec bin/awbdoc.exe -- --template tpl.xml --sample glass --stats *)

open Cmdliner

let load_model sample model_file =
  match (sample, model_file) with
  | Some "banking", None -> Ok (Awb.Samples.banking_model ())
  | Some "glass", None -> Ok (Awb.Samples.glass_model ())
  | Some other, None -> Error (Printf.sprintf "unknown sample %S (banking|glass)" other)
  | None, Some path -> (
    try Ok (Awb.Xml_io.import Awb.Samples.it_architecture (Xml_base.Parser.parse_file path))
    with Failure m | Sys_error m -> Error m)
  | None, None -> Ok (Awb.Samples.banking_model ())
  | Some _, Some _ -> Error "choose one of --sample or --model"

let run template_file sample model_file engine pretty html stats =
  match load_model sample model_file with
  | Error m ->
    prerr_endline ("awbdoc: " ^ m);
    1
  | Ok model -> (
    match Xml_base.Parser.parse_file template_file with
    | exception Xml_base.Parser.Parse_error { line; col; message } ->
      Printf.eprintf "awbdoc: template, line %d col %d: %s\n" line col message;
      1
    | exception Sys_error m ->
      prerr_endline ("awbdoc: " ^ m);
      1
    | template ->
      let template = Xml_base.Parser.strip_whitespace template in
      let engine =
        match Docgen.engine_of_string engine with
        | Ok e -> e
        | Error m ->
          prerr_endline ("awbdoc: " ^ m);
          exit 1
      in
      let result = Docgen.generate ~engine model ~template in
      let s =
        if html then Xml_base.Serialize.to_html_string result.Docgen.Spec.document
        else if pretty then Xml_base.Serialize.to_pretty_string result.Docgen.Spec.document
        else Xml_base.Serialize.to_string result.Docgen.Spec.document
      in
      print_endline s;
      if result.Docgen.Spec.problems <> [] then begin
        prerr_endline "problems:";
        List.iter (fun p -> prerr_endline ("  - " ^ p)) result.Docgen.Spec.problems
      end;
      if stats then begin
        let st = result.Docgen.Spec.stats in
        Printf.eprintf
          "stats: phases=%d nodes_copied=%d error_checks=%d exceptions=%d visited=%d queries=%d\n"
          st.Docgen.Spec.phases st.Docgen.Spec.nodes_copied st.Docgen.Spec.error_checks
          st.Docgen.Spec.exceptions_raised st.Docgen.Spec.visited_count
          st.Docgen.Spec.queries_run
      end;
      0)

let template_file =
  Arg.(
    required & opt (some file) None & info [ "t"; "template" ] ~docv:"XML" ~doc:"Template file.")

let sample =
  Arg.(value & opt (some string) None & info [ "sample" ] ~docv:"NAME" ~doc:"banking or glass.")

let model_file =
  Arg.(value & opt (some file) None & info [ "model" ] ~docv:"XML" ~doc:"awb-model export.")

let engine =
  Arg.(
    value & opt string "host"
    & info [ "engine" ] ~docv:"E"
        ~doc:
          "host (the rewrite), functional (the XQuery style), or xq (the actual \
           XQuery core).")

let pretty = Arg.(value & flag & info [ "pretty" ] ~doc:"Indent the output.")
let html = Arg.(value & flag & info [ "html" ] ~doc:"Serialize as HTML (void elements, raw script/style).")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics to stderr.")

let cmd =
  let doc = "generate documents from AWB models" in
  Cmd.v
    (Cmd.info "awbdoc" ~doc)
    Term.(const run $ template_file $ sample $ model_file $ engine $ pretty $ html $ stats)

let () = exit (Cmd.eval' cmd)
