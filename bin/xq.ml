(* xq — run an XQuery query from the command line.

   Examples:
     dune exec bin/xq.exe -- -e 'for $i in 1 to 5 return $i * $i'
     dune exec bin/xq.exe -- -e 'count(//book)' --input library.xml
     dune exec bin/xq.exe -- --file query.xq --input doc.xml --galax
     dune exec bin/xq.exe -- -e '//section/title' -i doc.xml --plan --explain *)

open Cmdliner

let run_query expr file input galax typed no_optimize mode plan_flag explain time fuel
    max_depth max_nodes deadline =
  let source =
    match (expr, file) with
    | Some e, None -> Ok e
    | None, Some path -> (
      try
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Ok s
      with Sys_error m -> Error m)
    | _ -> Error "provide exactly one of -e EXPR or --file QUERY.xq"
  in
  let mode =
    if plan_flag then Ok Xquery.Engine.Exec_opts.Plan
    else Xquery.Engine.Exec_opts.mode_of_string mode
  in
  match (source, mode) with
  | Error m, _ | _, Error m ->
    prerr_endline ("xq: " ^ m);
    1
  | Ok source, Ok mode -> (
    let compat =
      if galax then Xquery.Context.galax_compat else Xquery.Context.default_compat
    in
    let context_item =
      match input with
      | None -> None
      | Some path -> Some (Xquery.Value.Node (Xml_base.Parser.parse_file path))
    in
    if explain then begin
      match Xquery.Engine.compile ~compat ~optimize:(not no_optimize) source with
      | compiled ->
        print_string (Xquery.Engine.explain compiled ~mode);
        0
      | exception Xquery.Errors.Error { code; message } ->
        Printf.eprintf "xq: %s: %s\n" code message;
        2
    end
    else
    (* Phase timings for --time: parse and optimize measured separately
       (Engine.compile fuses them), then plan compilation — forced
       explicitly so a plan-cache hit shows up as ~0 compile time — and
       finally execution on its own. *)
    (* Monotonic clock: phase timings must not jump with wall-clock
       adjustments. *)
    let timed cell f =
      let t0 = Clock.now () in
      let v = f () in
      cell := Clock.now () -. t0;
      v
    in
    let parse_s = ref 0. and opt_s = ref 0. and compile_s = ref 0. and eval_s = ref 0. in
    let limits =
      match (fuel, max_depth, max_nodes, deadline) with
      | None, None, None, None -> None
      | _ ->
        Some
          (Xquery.Context.make_limits ?fuel ?max_depth ?max_nodes
             ?deadline_ns:
               (Option.map (fun s -> Clock.now_ns () + Clock.ns_of_s s) deadline)
             ())
    in
    match
      let program = timed parse_s (fun () -> Xquery.Parser.parse_program source) in
      let program, opt_stats =
        if no_optimize then (program, None)
        else
          timed opt_s (fun () ->
              let p, st =
                Xquery.Optimizer.optimize_program
                  ~treat_trace_as_pure:compat.Xquery.Context.treat_trace_as_pure program
              in
              (p, Some st))
      in
      let compiled =
        Xquery.Engine.make_compiled ?opt_stats ~compat ~typed_mode:typed program
      in
      (if mode = Xquery.Engine.Exec_opts.Plan then
         timed compile_s (fun () -> ignore (Xquery.Engine.plan_of compiled)));
      let opts = Xquery.Engine.Exec_opts.make ~mode ?limits ?context_item () in
      timed eval_s (fun () -> Xquery.Engine.run ~opts compiled)
    with
    | result ->
      List.iter
        (fun item -> print_endline (Xquery.Value.item_to_string item))
        result;
      if time then
        Printf.eprintf
          "xq: parse %.3f ms, optimize %.3f ms, compile %.3f ms, execute %.3f ms (%s)\n"
          (!parse_s *. 1000.) (!opt_s *. 1000.) (!compile_s *. 1000.) (!eval_s *. 1000.)
          (Xquery.Engine.Exec_opts.mode_name mode);
      0
    | exception Xquery.Errors.Error { code; message } ->
      Printf.eprintf "xq: %s: %s\n" code message;
      2
    | exception Xquery.Errors.Resource_exhausted { resource; limit; used } ->
      Printf.eprintf "xq: %s: %s\n"
        (Xquery.Errors.resource_code resource)
        (Xquery.Errors.resource_message resource ~limit ~used);
      3
    | exception Xml_base.Parser.Parse_error { line; col; message } ->
      Printf.eprintf "xq: input XML, line %d col %d: %s\n" line col message;
      2)

let expr =
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Query text.")

let file =
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Query file.")

let input =
  Arg.(
    value
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"XML" ~doc:"XML document bound as the context item.")

let galax =
  Arg.(
    value & flag
    & info [ "galax" ]
        ~doc:
          "2004-era compatibility: Galax error messages, duplicate attributes kept, \
           trace() treated as dead code by the optimizer.")

let typed = Arg.(value & flag & info [ "typed" ] ~doc:"Enforce sequence-type annotations.")

let no_optimize =
  Arg.(value & flag & info [ "no-optimize" ] ~doc:"Skip the optimizer entirely.")

let mode =
  Arg.(
    value & opt string "fast"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Execution mode: $(b,seed) (reference algorithms), $(b,fast) (cached-key \
           interpreter), or $(b,plan) (compile to the physical plan).")

let plan_flag =
  Arg.(
    value & flag
    & info [ "plan" ] ~doc:"Shorthand for $(b,--mode plan): run the compiled plan.")

let explain =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print what would run instead of running it: the optimized program, or with \
           $(b,--plan) the rendered physical plan.")

let time =
  Arg.(
    value & flag
    & info [ "time" ]
        ~doc:
          "Print parse/optimize/compile/execute phase timings to stderr after the \
           result (compile is plan lowering; ~0 on a plan-cache hit).")

let fuel =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"STEPS"
        ~doc:"Abort evaluation after $(docv) evaluation steps (resource:fuel).")

let max_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-depth" ] ~docv:"N"
        ~doc:"Abort when user-function recursion exceeds $(docv) frames (resource:depth).")

let max_nodes =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:"Abort after constructing $(docv) XML nodes (resource:nodes).")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Abort evaluation $(docv) seconds after start, measured on the monotonic \
           clock (resource:deadline).")

let cmd =
  let doc = "run XQuery queries with the Lopsided engine" in
  Cmd.v
    (Cmd.info "xq" ~doc)
    Term.(
      const run_query $ expr $ file $ input $ galax $ typed $ no_optimize $ mode
      $ plan_flag $ explain $ time $ fuel $ max_depth $ max_nodes $ deadline)

let () = exit (Cmd.eval' cmd)
