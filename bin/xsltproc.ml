(* xsltproc — apply an XSLT-lite stylesheet to an XML document.

   Transforms go through the Service layer: the stylesheet is compiled
   through the service's content-hash-keyed cache, so repeated
   invocations in one process (and the error taxonomy) match what the
   HTTP front end would serve.

   Example:
     dune exec bin/xsltproc.exe -- --stylesheet split.xsl --input streams.xml *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run stylesheet_file input_file pretty =
  match (read_file stylesheet_file, Xml_base.Parser.parse_file input_file) with
  | exception Xml_base.Parser.Parse_error { line; col; message } ->
    Printf.eprintf "xsltproc: line %d col %d: %s\n" line col message;
    1
  | exception Sys_error m ->
    prerr_endline ("xsltproc: " ^ m);
    1
  | stylesheet_xml, source -> (
    let service = Service.create () in
    match Service.apply_stylesheet service ~stylesheet_xml source with
    | Ok results ->
      List.iter
        (fun n ->
          print_endline
            (if pretty then Xml_base.Serialize.to_pretty_string n
             else Xml_base.Serialize.to_string n))
        results;
      0
    | Error (Service.Template_error m) ->
      prerr_endline ("xsltproc: stylesheet: " ^ m);
      1
    | Error e ->
      prerr_endline ("xsltproc: " ^ Service.error_to_string e);
      2)

let stylesheet_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "stylesheet" ] ~docv:"XSL" ~doc:"Stylesheet file.")

let input_file =
  Arg.(required & opt (some file) None & info [ "i"; "input" ] ~docv:"XML" ~doc:"Source document.")

let pretty = Arg.(value & flag & info [ "pretty" ] ~doc:"Indent the output.")

let cmd =
  let doc = "apply XSLT-lite stylesheets" in
  Cmd.v (Cmd.info "xsltproc" ~doc) Term.(const run $ stylesheet_file $ input_file $ pretty)

let () = exit (Cmd.eval' cmd)
