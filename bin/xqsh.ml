(* xqsh — an interactive XQuery shell.

   The paper's author "rarely wrote more than half a dozen lines of XQuery
   between test runs"; this is the loop that workflow wanted (and Galax of
   2004 didn't have). One query per line; : commands control the session.

     $ dune exec bin/xqsh.exe
     xq> :load library.xml
     xq> count(//book)
     4
     xq> :let cheap //book[number(price) < 20]
     xq> :set mode plan
     xq> :explain let $d := trace(1, 'x') return 2

   Queries run through the Service layer, not the bare engine: repeated
   queries hit the compiled-query (and plan) cache, budgets from the
   service config apply, and :counters shows what the session cost.

   Also runs non-interactively: pipe a script into stdin. *)

type session = {
  service : Service.t;
  mutable context : Xquery.Value.item option;
  mutable vars : (string * Xquery.Value.sequence) list;
  mutable galax : bool;
  mutable typed : bool;
  mutable optimize : bool;
  mutable mode : Xquery.Engine.Exec_opts.mode;
}

let compat s = if s.galax then Xquery.Context.galax_compat else Xquery.Context.default_compat

let run_query s q =
  Service.run_query s.service ~compat:(compat s) ~typed_mode:s.typed
    ~optimize:s.optimize ?context_item:s.context ~vars:s.vars ~mode:s.mode q

let print_result result =
  match result with
  | [] -> print_endline "()"
  | items -> List.iter (fun i -> print_endline (Xquery.Value.item_to_string i)) items

let on_off = function true -> "on" | false -> "off"

let help () =
  print_string
    {|commands:
  :load FILE        parse FILE and bind it as the context item (and $doc)
  :let NAME QUERY   bind $NAME to the query's result
  :vars             list bound variables
  :set galax|typed|optimize on|off
  :set mode seed|fast|plan
  :explain QUERY    show what would run: the optimized program, or the
                    physical plan when the mode is plan
  :counters         service counters for this session (caches, plans)
  :help             this text
  :quit             leave
anything else is evaluated as a query (through the service layer).
|}

let handle_command s line =
  let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  match words with
  | [ ":quit" ] | [ ":q" ] -> false
  | [ ":help" ] ->
    help ();
    true
  | [ ":load"; path ] ->
    (try
       let doc = Xml_base.Parser.parse_file path in
       s.context <- Some (Xquery.Value.Node doc);
       s.vars <- ("doc", Xquery.Value.of_node doc) :: List.remove_assoc "doc" s.vars;
       Printf.printf "loaded %s as the context item (and $doc)\n" path
     with
    | Sys_error m -> prerr_endline m
    | Xml_base.Parser.Parse_error { line; col; message } ->
      Printf.eprintf "parse error at %d:%d: %s\n" line col message);
    true
  | ":let" :: name :: rest when rest <> [] ->
    let q = String.concat " " rest in
    (match run_query s q with
    | Ok v ->
      s.vars <- (name, v) :: List.remove_assoc name s.vars;
      Printf.printf "$%s bound to %d item(s)\n" name (List.length v)
    | Error e -> prerr_endline (Service.error_to_string e));
    true
  | [ ":vars" ] ->
    if s.vars = [] then print_endline "(no variables)"
    else
      List.iter
        (fun (n, v) -> Printf.printf "$%-12s %d item(s)\n" n (List.length v))
        s.vars;
    true
  | [ ":set"; "galax"; v ] ->
    s.galax <- v = "on";
    Printf.printf "galax compat %s\n" (on_off s.galax);
    true
  | [ ":set"; "typed"; v ] ->
    s.typed <- v = "on";
    Printf.printf "typed mode %s\n" (on_off s.typed);
    true
  | [ ":set"; "optimize"; v ] ->
    s.optimize <- v = "on";
    Printf.printf "optimizer %s\n" (on_off s.optimize);
    true
  | [ ":set"; "mode"; v ] ->
    (match Xquery.Engine.Exec_opts.mode_of_string v with
    | Ok m ->
      s.mode <- m;
      Printf.printf "mode %s\n" (Xquery.Engine.Exec_opts.mode_name m)
    | Error m -> prerr_endline m);
    true
  | [ ":counters" ] ->
    Format.printf "%a@." Service.pp_counters (Service.counters s.service);
    true
  | ":explain" :: rest when rest <> [] ->
    let q = String.concat " " rest in
    (try
       let compiled = Xquery.Engine.compile ~compat:(compat s) ~optimize:s.optimize q in
       print_string (Xquery.Engine.explain compiled ~mode:s.mode)
     with Xquery.Errors.Error { code; message } -> Printf.eprintf "%s: %s\n" code message);
    true
  | w :: _ when String.length w > 0 && w.[0] = ':' ->
    Printf.eprintf "unknown command %s (:help for help)\n" w;
    true
  | _ ->
    (match run_query s line with
    | Ok v -> print_result v
    | Error e -> prerr_endline (Service.error_to_string e));
    true

let () =
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    print_endline "Lopsided XQuery shell (:help for commands, :quit to leave)";
    print_string "xq> "
  end;
  let s =
    {
      service = Service.create ();
      context = None;
      vars = [];
      galax = false;
      typed = false;
      optimize = true;
      mode = Xquery.Engine.Exec_opts.Fast;
    }
  in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      let continue = if line = "" then true else handle_command s line in
      if continue then begin
        if interactive then print_string "xq> ";
        loop ()
      end
  in
  loop ()
