(* A simulated workbench session: the user edits the model through the
   command layer while the Omissions window (live advisory validation +
   calculus queries) updates beside them — the always-visible UI feature
   whose query needs doomed the XQuery document generator.

   Run with: dune exec examples/workbench_session.exe *)

module M = Lopsided.Awb.Model
module Ed = Lopsided.Awb.Edit
module V = Lopsided.Awb.Validate

let show_omissions s step =
  Printf.printf "\n-- omissions window (after: %s) --\n" step;
  let ws = Ed.warnings_now s in
  if ws = [] then print_endline "   (nothing to warn about)"
  else
    List.iter (fun w -> Format.printf "   ! %a@." V.pp_warning w) ws;
  (* And the query-driven part of the window: documents lacking versions,
     through the calculus. *)
  let missing =
    Lopsided.Query.Native.eval_string (Ed.model s)
      "start type(Document); filter not-has-prop(version); sort-by label"
  in
  List.iter
    (fun n -> Printf.printf "   ? %s has no version information\n" (M.label (Ed.model s) n))
    missing

let () =
  let s = Ed.start (Lopsided.Awb.Samples.banking_model ()) in
  show_omissions s "opening the model";

  print_endline "\n>> the architect drafts a new document (forgetting the version)";
  Ed.apply s
    (Ed.Add_node
       {
         id = Some "NDOC";
         ntype = "Document";
         props = [ ("name", M.V_string "Capacity Plan") ];
       });
  show_omissions s "adding Capacity Plan";

  print_endline "\n>> they wire it up, and connect a user straight to a program";
  Ed.apply s
    (Ed.Relate { id = None; rtype = "has"; source_id = "N1"; target_id = "NDOC" });
  let carol =
    (List.find (fun n -> M.prop_string n "name" = "carol") (M.nodes (Ed.model s))).M.id
  in
  Ed.apply s
    (Ed.Relate { id = None; rtype = "runs"; source_id = carol; target_id = "NDOC" });
  show_omissions s "off-metamodel edits (accepted, flagged)";

  print_endline "\n>> versions get filled in";
  Ed.apply s
    (Ed.Set_property
       { node_id = "NDOC"; pname = "version"; value = M.V_string "0.1" });
  Ed.apply s
    (Ed.Set_property
       { node_id = "N16"; pname = "version"; value = M.V_string "1.0" });
  show_omissions s "setting versions";

  print_endline "\n>> second thoughts: undo everything";
  while Ed.undo s do
    ()
  done;
  show_omissions s "undo-all";

  Printf.printf "\ncommands left in history: %d\n" (List.length (Ed.history s))
