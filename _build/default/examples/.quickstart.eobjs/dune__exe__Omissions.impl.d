examples/omissions.ml: Float List Lopsided Printf Unix
