examples/system_context.ml: List Lopsided Printf String
