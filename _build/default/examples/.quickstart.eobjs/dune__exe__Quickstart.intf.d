examples/quickstart.mli:
