examples/glass_catalog.mli:
