examples/glass_catalog.ml: List Lopsided Printf
