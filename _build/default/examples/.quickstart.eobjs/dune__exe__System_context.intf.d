examples/system_context.mli:
