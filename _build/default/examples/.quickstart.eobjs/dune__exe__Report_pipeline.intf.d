examples/report_pipeline.mli:
