examples/metamodel_doc.mli:
