examples/metamodel_doc.ml: List Lopsided Printf
