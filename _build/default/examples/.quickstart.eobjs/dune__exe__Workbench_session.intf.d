examples/workbench_session.mli:
