examples/omissions.mli:
