examples/pitfalls_tour.ml: Lopsided Printf
