examples/workbench_session.ml: Format List Lopsided Printf
