examples/report_pipeline.ml: List Lopsided Printf String Xslt
