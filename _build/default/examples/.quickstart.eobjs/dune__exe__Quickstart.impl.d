examples/quickstart.ml: Lopsided Printf
