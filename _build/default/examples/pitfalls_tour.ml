(* A guided tour of the paper's XQuery pitfalls, each demonstrated live on
   the engine.

   Run with: dune exec examples/pitfalls_tour.exe *)

module V = Lopsided.Xq.Value
module E = Lopsided.Xq.Engine
module Err = Lopsided.Xq.Errors

let run ?compat ?vars q =
  match E.eval_query ?compat ?vars q with
  | r -> V.to_display_string r
  | exception Err.Error { code; message } -> Printf.sprintf "%s: %s" code message

let demo title query ?compat ?vars note =
  Printf.printf "  %s\n    %-58s => %s\n" title query (run ?compat ?vars query);
  (match note with "" -> () | n -> Printf.printf "    (%s)\n" n);
  print_newline ()

let () =
  print_endline "================================================================";
  print_endline " Lopsided Little Languages: the pitfalls, live";
  print_endline "================================================================\n";

  print_endline "-- 1. Syntactic quirks --------------------------------------";
  demo "$n-1 is a variable named n-1, not subtraction"
    "let $n-1 := 99 return $n-1" "";
  demo "subtraction needs breathing room" "let $n := 5 return $n - 1" "";
  demo "/ is a path step, not division" "7 div 2" "division is spelled div";
  demo "x is a child step, never a variable" "x"
    "the error is about the context item";
  Printf.printf "  the same mistake under Galax compat:\n    %-58s => %s\n\n" "x"
    (run ~compat:Lopsided.Xq.Context.galax_compat "x");

  print_endline "-- 2. = means nonempty intersection --------------------------";
  demo "1 = (1,2,3)" "1 = (1,2,3)" "";
  demo "(1,2,3) = 3" "(1,2,3) = 3" "";
  demo "but of course" "1 = 3" "";
  demo "!= is existential too, so these are both true"
    "((1,2) = (1,2), (1,2) != (1,2))" "use eq/ne for singletons";

  print_endline "-- 3. Sequences flatten --------------------------------------";
  demo "all structure washes out" "(1,(2,3,4),(),(5,((6,7))))" "";
  demo "a 'list' of two 'points' has four elements"
    "count(((1,2),(3,4)))" "generic containers are impossible";
  demo "indexing a container does not return what you stored"
    "let $X := (\"1a\",\"1b\") let $Y := 2 return string(($X, $Y)[2])"
    "that is part of X, not Y";

  print_endline "-- 4. Attribute nodes fold into parents ----------------------";
  demo "the paper's example" "let $x := attribute troubles {1} return <el> {$x} </el>" "";
  demo "after content, an error"
    "let $x := attribute troubles {1} return <el> doom {$x} </el>" "";

  print_endline "-- 5. Error handling: the only channel is the return value ---";
  demo "error() kills the program" "(1, error(\"local:oops\", \"it broke\"), 3)" "";
  print_endline "  so every call needs:  if is-error($r) then propagate else continue";
  print_endline "  (run `dune exec examples/system_context.exe` to watch both styles)\n";

  print_endline "-- 6. Debugging: trace() vs the optimizer --------------------";
  let show_trace compat label =
    let traced = ref 0 in
    let result =
      E.execute
        ~trace_out:(fun _ -> incr traced)
        (E.compile ~compat "let $x := 1 let $dummy := trace($x, 'x=') return $x + 1")
    in
    Printf.printf "  %-28s result=%s, trace lines printed=%d\n" label
      (V.to_display_string result) !traced
  in
  show_trace Lopsided.Xq.Context.default_compat "fixed optimizer:";
  show_trace Lopsided.Xq.Context.galax_compat "2004-era optimizer:";
  print_endline "  the dead let carrying the trace was 'helpfully' optimized away;";
  print_endline "  the workaround is to insinuate the trace into non-dead code:";
  show_trace Lopsided.Xq.Context.galax_compat "  insinuated (see below):";
  let traced = ref 0 in
  ignore
    (E.execute
       ~trace_out:(fun _ -> incr traced)
       (E.compile ~compat:Lopsided.Xq.Context.galax_compat
          "let $x := trace(1, 'x=') return $x + 1"));
  Printf.printf "  %-28s trace lines printed=%d\n\n" "let $x := trace(1, 'x=')" !traced;

  print_endline "-- 7. What XQuery is actually great at -----------------------";
  demo "dissect, sift, reassemble — in one line"
    "<r>{for $i in 1 to 3 return <i v=\"{$i * $i}\"/>}</r>"
    "simple dissections and constructions are several times harder in Java";
  demo "quantifiers over trees"
    "some $y in <k><foo/><foo/><bar/></k> satisfies count($y//foo) gt count($y//bar)"
    "the paper's kids/foo/bar example, inlined"
