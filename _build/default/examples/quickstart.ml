(* Quickstart: parse XML, run XQuery over it, build new XML.

   Run with: dune exec examples/quickstart.exe *)

let catalog =
  {|<library>
      <book year="1983"><title>Tales of Tensors</title><price>12</price></book>
      <book year="2001"><title>More Monads</title><price>30</price></book>
      <book year="1999"><title>Querying Quietly</title><price>18</price></book>
    </library>|}

let show title result =
  Printf.printf "%-42s %s\n" (title ^ ":") (Lopsided.Xq.Value.to_display_string result)

let () =
  print_endline "== Lopsided quickstart: the XQuery engine ==\n";
  let doc = Lopsided.Xml.Parser.parse_string catalog in
  let run q =
    Lopsided.Xq.Engine.eval_query ~context_item:(Lopsided.Xq.Value.Node doc) q
  in

  (* Dissecting XML: XPath over the document. *)
  show "titles" (run "library/book/title/text()");
  show "books after 1990" (run "count(library/book[@year > 1990])");
  show "cheapest price" (run "min(library/book/price)");

  (* Computing with the pieces: FLWOR. *)
  show "sorted by price"
    (run
       "string-join(for $b in library/book order by number($b/price) return string($b/title), ' | ')");

  (* Constructing XML out of the pieces. *)
  show "rebuilt"
    (run
       "<sale>{for $b in library/book where number($b/price) lt 20 return <item \
        title=\"{$b/title}\" was=\"{$b/price}\" now=\"{number($b/price) idiv 2}\"/>}</sale>");

  (* The quirks the paper documents, live: *)
  print_newline ();
  print_endline "== The paper's quirks ==";
  show "sequences flatten" (run "(1,(2,3,4),(),(5,((6,7))))");
  show "general = is existential (1 = (1,2,3))" (run "1 = (1,2,3)");
  show "but 1 eq 1 is a value comparison" (run "1 eq 1");
  show "bare x = children of '.' named x (none)" (run "x");
  (match Lopsided.Xq.Engine.eval_query "x" with
  | exception Lopsided.Xq.Errors.Error { message; _ } ->
    Printf.printf "%-42s %s\n" "and with no context item at all:" message
  | r -> show "x" r);

  (* And the helper in the umbrella module: *)
  print_newline ();
  Printf.printf "one-liner: %s\n"
    (Lopsided.xquery_string ~xml:catalog ~query:"string(library/book[1]/title)")
