(* The Omissions window: "a window listing incomplete parts of the model"
   — the UI feature that forced the query calculus to have a second,
   native implementation and doomed the XQuery document generator.

   This example runs the same calculus queries through both
   implementations and times them, previewing experiment E1.

   Run with: dune exec examples/omissions.exe *)

module M = Lopsided.Awb.Model

let omission_queries =
  [
    ("documents without version info", "start type(Document); filter not-has-prop(version); sort-by label");
    ("servers that run nothing", "start type(Server); sort-by label");
    ("users that use no system", "start type(User); sort-by label");
    ("off-catalog favorites", "start type(User); follow likes; distinct; sort-by label");
  ]

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let model = Lopsided.Awb.Synth.generate_of_size ~seed:11 300 in
  Printf.printf "Synthetic model: %d nodes, %d relations\n\n" (M.node_count model)
    (M.relation_count model);

  (* The UI would re-run these queries constantly; the paper judged
     calling XQuery for them "preposterously inefficient". *)
  let export_root =
    List.hd (Lopsided.Xml.Node.children (Lopsided.Awb.Xml_io.export model))
  in
  List.iter
    (fun (label, q) ->
      let parsed = Lopsided.Query.Parser.parse q in
      let native, t_native =
        time_it (fun () -> Lopsided.Query.Native.eval model parsed)
      in
      let xq, t_xq =
        time_it (fun () ->
            Lopsided.Query.To_xquery.eval_on_export model ~export_root parsed)
      in
      Printf.printf "%-34s native %4d results in %8.3f ms | xquery %4d results in %8.3f ms (%.0fx)\n"
        label (List.length native) (t_native *. 1000.) (List.length xq)
        (t_xq *. 1000.)
        (t_xq /. Float.max 1e-9 t_native))
    omission_queries;

  print_newline ();
  print_endline "First few omissions (documents missing version info):";
  let missing =
    Lopsided.Query.Native.eval_string model
      "start type(Document); filter not-has-prop(version); sort-by label; limit 5"
  in
  List.iter
    (fun n -> Printf.printf "  ! %s might want version information\n" (M.label model n))
    missing
