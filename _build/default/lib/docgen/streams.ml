(* Output streams. XQuery "produces only a single output stream", so the
   functional engine wraps the document and the problem report into one
   <output-streams> element; this module is the "little XSLT program" that
   splits them apart afterwards. The host engine produces both streams
   directly, but routes them through the same wrapper so the two engines
   stay output-compatible. *)

module N = Xml_base.Node

type split = { document : N.t; problems : string list }

exception Malformed_stream of string

let split (wrapped : N.t) : split =
  if not (N.is_element wrapped && N.name wrapped = "output-streams") then
    raise (Malformed_stream "expected an <output-streams> element");
  let doc_holder =
    match N.child_element wrapped "document" with
    | Some d -> d
    | None -> raise (Malformed_stream "missing <document> stream")
  in
  let document =
    match N.child_elements doc_holder with
    | [ d ] -> d
    | _ -> raise (Malformed_stream "the <document> stream must hold one element")
  in
  let problems =
    match N.child_element wrapped "problems" with
    | None -> []
    | Some p -> List.map N.string_value (N.child_elements_named p "problem")
  in
  { document; problems }

(* The same splitter as an actual XSLT program — what the paper's team
   did: "the XQuery component could produce a big XML file with all the
   output streams as children of the root element, and a little XSLT
   program could split them apart." *)

let document_stylesheet =
  {|<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
      <xsl:template match="/">
        <xsl:apply-templates select="output-streams/document"/>
      </xsl:template>
      <xsl:template match="document">
        <xsl:copy-of select="*"/>
      </xsl:template>
    </xsl:stylesheet>|}

let problems_stylesheet =
  {|<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
      <xsl:template match="/">
        <problem-report>
          <xsl:for-each select="output-streams/problems/problem">
            <line><xsl:value-of select="string(.)"/></line>
          </xsl:for-each>
        </problem-report>
      </xsl:template>
    </xsl:stylesheet>|}

let split_via_xslt (wrapped : N.t) : split =
  if not (N.is_element wrapped && N.name wrapped = "output-streams") then
    raise (Malformed_stream "expected an <output-streams> element");
  (* XSLT wants a document as source. *)
  let doc = N.document [ N.copy wrapped ] in
  let document =
    match
      Xslt.apply (Xslt.compile_string document_stylesheet) doc
      |> List.filter N.is_element
    with
    | [ d ] -> d
    | _ -> raise (Malformed_stream "the <document> stream must hold one element")
  in
  let report =
    Xslt.apply_to_element (Xslt.compile_string problems_stylesheet) doc
  in
  let problems = List.map N.string_value (N.child_elements_named report "line") in
  { document; problems }
