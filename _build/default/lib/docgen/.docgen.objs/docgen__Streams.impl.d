lib/docgen/streams.ml: List Xml_base Xslt
