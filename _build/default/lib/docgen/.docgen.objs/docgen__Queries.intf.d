lib/docgen/queries.mli: Awb Awb_query Spec
