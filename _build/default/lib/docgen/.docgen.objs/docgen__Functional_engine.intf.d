lib/docgen/functional_engine.mli: Awb Spec Xml_base
