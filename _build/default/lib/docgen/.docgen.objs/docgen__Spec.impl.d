lib/docgen/spec.ml: Awb Hashtbl List Printf String Xml_base
