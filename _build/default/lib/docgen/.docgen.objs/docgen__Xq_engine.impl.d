lib/docgen/xq_engine.ml: Awb List Xml_base Xquery
