lib/docgen/host_engine.ml: Array Astring Awb Format Hashtbl List Option Printf Queries Spec String Xml_base
