lib/docgen/host_engine.mli: Awb Spec Xml_base
