lib/docgen/functional_engine.ml: Astring Awb Awb_query Either Format Hashtbl List Option Printf Queries Spec String Xml_base
