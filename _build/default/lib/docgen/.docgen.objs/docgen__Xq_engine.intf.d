lib/docgen/xq_engine.mli: Awb Xml_base
