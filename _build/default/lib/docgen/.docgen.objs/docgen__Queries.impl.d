lib/docgen/queries.ml: Awb Awb_query List Option Spec Xml_base
