(** The document-generator dispatch core as an actual XQuery program, run
    by the engine in lib/xquery — "a quite straightforward recursive walk
    over the XML structure of the template".

    Supports the core subset: [for] (with [nodes="all"] or
    [nodes="type:T"], subtype-aware via the exported metamodel), [if]
    with [focus-is-type]/[has-prop]/[not] conditions, [label],
    [property], and copy-through of everything else. Failures use the
    paper's error-value convention: the only way to detect them is to
    find [<error>] elements in the result. *)

val query_source : string
(** The XQuery text itself. *)

type result = { document : Xml_base.Node.t option; error : string option }

val generate : Awb.Model.t -> template:Xml_base.Node.t -> result
