(* The project's XQuery utility library — "Following standard software
   engineering practice, we wrote our own utility functions: set
   manipulation routines, some string- and element-handling functions like
   without-leading-or-trailing-spaces($string) and
   child-element-named($parent, $name) that XQuery chose not to provide, a
   bit of trigonometry, and other routine things. This proved to be a
   fruitful source of trouble."

   This is that library, in actual XQuery, run by the engine in
   lib/xquery. The set routines work on STRINGS ONLY — the paper's
   conclusion after discovering that sequences flatten and attribute nodes
   fold: "We decided to limit ourselves to a set-of-string data
   structure, for which sequences do work." The trigonometry is where the
   project's 15 uses of division lived. *)

let prolog =
  {|
(: ---- string sets, represented as flat sequences of strings ---- :)

declare function util:set-empty() { () };

declare function util:set-member($set, $x) {
  (: general = as deliberate membership test; "noted in a comment that we
     intended to use it this way" :)
  $set = $x
};

declare function util:set-add($set, $x) {
  if (util:set-member($set, $x)) then $set else ($set, $x)
};

declare function util:set-union($a, $b) {
  ($a, for $x in $b return if (util:set-member($a, $x)) then () else $x)
};

declare function util:set-intersection($a, $b) {
  for $x in $a return if (util:set-member($b, $x)) then $x else ()
};

declare function util:set-difference($a, $b) {
  for $x in $a return if (util:set-member($b, $x)) then () else $x
};

declare function util:set-size($set) { count($set) };

(: ---- string handling ---- :)

declare function util:without-leading-or-trailing-spaces($s) {
  (: XQuery's normalize-space also collapses inner runs; a faithful trim
     must work harder. :)
  let $cps := string-to-codepoints($s)
  let $n := count($cps)
  let $first := (for $i in 1 to $n
                 where not($cps[$i] = (32, 9, 10, 13))
                 return $i)[1]
  let $last := (for $i in 1 to $n
                where not($cps[$n + 1 - $i] = (32, 9, 10, 13))
                return $n + 1 - $i)[1]
  return
    if (empty($first)) then ""
    else codepoints-to-string(for $i in $first to $last return $cps[$i])
};

declare function util:string-repeat($s, $n) {
  string-join(for $i in 1 to $n return $s, "")
};

declare function util:pad-left($s, $width) {
  concat(util:string-repeat(" ", $width - string-length($s)), $s)
};

(: ---- element handling ---- :)

declare function util:child-element-named($parent, $name) {
  ($parent/element()[name(.) = $name])[1]
};

declare function util:children-named($parent, $name) {
  $parent/element()[name(.) = $name]
};

declare function util:has-child-named($parent, $name) {
  exists(util:children-named($parent, $name))
};

(: ---- binary search over a sorted sequence of integers ----
   one of the project's rare legitimate uses of division. :)

declare function util:binary-search($sorted, $x, $lo, $hi) {
  if ($lo gt $hi) then 0
  else
    let $mid := ($lo + $hi) idiv 2
    let $v := $sorted[$mid]
    return
      if ($v eq $x) then $mid
      else if ($v lt $x) then util:binary-search($sorted, $x, $mid + 1, $hi)
      else util:binary-search($sorted, $x, $lo, $mid - 1)
};

declare function util:index-of-sorted($sorted, $x) {
  util:binary-search($sorted, $x, 1, count($sorted))
};

(: ---- a bit of trigonometry (Taylor series; the other 14 divisions) ---- :)

declare function util:pi() { 3.14159265358979 };

declare function util:sin($x) {
  (: reduce to [-pi, pi], then a Horner-form Taylor series :)
  let $tau := 2 * util:pi()
  let $r0 := $x - ($tau * (($x div $tau) cast as xs:integer))
  let $r := if ($r0 gt util:pi()) then $r0 - $tau
            else if ($r0 lt -util:pi()) then $r0 + $tau
            else $r0
  let $x2 := $r * $r
  return
    $r * (1 - $x2 div 6 * (1 - $x2 div 20 * (1 - $x2 div 42
       * (1 - $x2 div 72 * (1 - $x2 div 110 * (1 - $x2 div 156))))))
};

declare function util:cos($x) {
  util:sin($x + util:pi() div 2)
};

declare function util:deg-to-rad($d) { $d * util:pi() div 180 };
|}

(* Compile a query against the utility prolog. The util: prefix is
   declared as a namespace for looks; the engine treats prefixed names as
   plain strings, as the rest of the project does. *)
let with_prolog body = "declare namespace util = \"urn:awb:util\";\n" ^ prolog ^ "\n" ^ body

let eval ?vars body = Xquery.Engine.eval_query ?vars (with_prolog body)

let eval_string ?vars body = Xquery.Value.to_display_string (eval ?vars body)
