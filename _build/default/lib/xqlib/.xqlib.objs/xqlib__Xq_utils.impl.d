lib/xqlib/xq_utils.ml: Xquery
