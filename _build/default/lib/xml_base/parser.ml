exception Parse_error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make_state src = { src; pos = 0; line = 1; col = 1 }

let error st message = raise (Parse_error { line = st.line; col = st.col; message })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st = c then advance st
  else error st (Printf.sprintf "expected %C, found %C" c (peek st))

let expect_str st s =
  String.iter (fun c -> expect st c) s

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip_str st s =
  if looking_at st s then begin
    String.iter (fun _ -> advance st) s;
    true
  end
  else false

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then
    error st (Printf.sprintf "expected a name, found %C" (peek st));
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Entity / character references. *)
let parse_reference st =
  expect st '&';
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    let ok c =
      if hex then
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while (not (eof st)) && ok (peek st) do
      advance st
    done;
    if st.pos = start then error st "empty character reference";
    let digits = String.sub st.src start (st.pos - start) in
    expect st ';';
    let code =
      match int_of_string_opt ((if hex then "0x" else "") ^ digits) with
      | Some c -> c
      | None -> error st "character reference out of range"
    in
    if code < 0 || code > 0x10FFFF then error st "character reference out of range";
    (* UTF-8 encode. *)
    let b = Buffer.create 4 in
    let add = Buffer.add_char b in
    if code < 0x80 then add (Char.chr code)
    else if code < 0x800 then begin
      add (Char.chr (0xC0 lor (code lsr 6)));
      add (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      add (Char.chr (0xE0 lor (code lsr 12)));
      add (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      add (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      add (Char.chr (0xF0 lor (code lsr 18)));
      add (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      add (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      add (Char.chr (0x80 lor (code land 0x3F)))
    end;
    Buffer.contents b
  end
  else begin
    let name = parse_name st in
    expect st ';';
    match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "quot" -> "\""
    | "apos" -> "'"
    | other -> error st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected a quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      go ()
    end
    else if peek st = '<' then error st "'<' not allowed in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_comment st =
  (* Called just after "<!--". *)
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated comment"
    else if skip_str st "-->" then ()
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Node.comment (Buffer.contents buf)

let parse_pi st =
  (* Called just after "<?". *)
  let target = parse_name st in
  skip_ws st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated processing instruction"
    else if skip_str st "?>" then ()
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Node.pi ~target (Buffer.contents buf)

let parse_cdata st =
  (* Called just after "<![CDATA[". *)
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated CDATA section"
    else if skip_str st "]]>" then ()
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let rec parse_element st =
  (* Called just after '<' with a name-start char next. *)
  let tag = parse_name st in
  let attrs = ref [] in
  let rec attrs_loop () =
    skip_ws st;
    if is_name_start (peek st) then begin
      let aname = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let v = parse_attr_value st in
      if List.exists (fun a -> Node.name a = aname) !attrs then
        error st (Printf.sprintf "duplicate attribute %s" aname);
      attrs := !attrs @ [ Node.attribute aname v ];
      attrs_loop ()
    end
  in
  attrs_loop ();
  skip_ws st;
  if skip_str st "/>" then Node.element ~attrs:!attrs tag
  else begin
    expect st '>';
    let kids = parse_content st in
    expect_str st "</";
    let close = parse_name st in
    if close <> tag then
      error st (Printf.sprintf "mismatched closing tag: expected </%s>, found </%s>" tag close);
    skip_ws st;
    expect st '>';
    Node.element ~attrs:!attrs ~children:kids tag
  end

and parse_content st =
  (* Children up to (not consuming) "</". *)
  let items = ref [] in
  let textbuf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length textbuf > 0 then begin
      items := Node.text (Buffer.contents textbuf) :: !items;
      Buffer.clear textbuf
    end
  in
  let rec go () =
    if eof st then ()
    else if looking_at st "</" then ()
    else if looking_at st "<!--" then begin
      flush_text ();
      expect_str st "<!--";
      items := parse_comment st :: !items;
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      expect_str st "<![CDATA[";
      Buffer.add_string textbuf (parse_cdata st);
      go ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      expect_str st "<?";
      items := parse_pi st :: !items;
      go ()
    end
    else if peek st = '<' then begin
      flush_text ();
      advance st;
      items := parse_element st :: !items;
      go ()
    end
    else if peek st = '&' then begin
      Buffer.add_string textbuf (parse_reference st);
      go ()
    end
    else begin
      Buffer.add_char textbuf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  flush_text ();
  List.rev !items

let skip_prolog st =
  skip_ws st;
  if looking_at st "<?xml" then begin
    expect_str st "<?";
    ignore (parse_pi st)
  end;
  skip_ws st;
  while looking_at st "<!--" || looking_at st "<!DOCTYPE" do
    if looking_at st "<!--" then begin
      expect_str st "<!--";
      ignore (parse_comment st)
    end
    else begin
      (* Skip DOCTYPE up to the matching '>'; internal subsets in brackets
         are skipped without interpretation. *)
      expect_str st "<!DOCTYPE";
      let depth = ref 0 in
      let continue = ref true in
      while !continue do
        if eof st then error st "unterminated DOCTYPE"
        else begin
          (match peek st with
          | '[' -> incr depth
          | ']' -> decr depth
          | '>' when !depth = 0 -> continue := false
          | _ -> ());
          advance st
        end
      done
    end;
    skip_ws st
  done

let parse_string src =
  let st = make_state src in
  skip_prolog st;
  skip_ws st;
  if not (peek st = '<' && is_name_start (peek2 st)) then
    error st "expected a root element";
  advance st;
  let rootelt = parse_element st in
  skip_ws st;
  let trailing = ref [] in
  while looking_at st "<!--" || looking_at st "<?" do
    if looking_at st "<!--" then begin
      expect_str st "<!--";
      trailing := parse_comment st :: !trailing
    end
    else begin
      expect_str st "<?";
      trailing := parse_pi st :: !trailing
    end;
    skip_ws st
  done;
  if not (eof st) then error st "trailing content after the root element";
  Node.document (rootelt :: List.rev !trailing)

let parse_fragment src =
  let st = make_state src in
  let items = parse_content st in
  if not (eof st) then error st "unexpected closing tag at top level";
  items

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string content

let is_blank s = String.for_all is_space s

let rec strip_whitespace n =
  match Node.kind n with
  | Node.Document -> Node.document (strip_kids n)
  | Node.Element ->
    Node.element
      ~attrs:(List.map Node.copy (Node.attributes n))
      ~children:(strip_kids n) (Node.name n)
  | Node.Attribute | Node.Text | Node.Comment | Node.Processing_instruction ->
    Node.copy n

and strip_kids n =
  Node.children n
  |> List.filter (fun k ->
         not (Node.is_text k && is_blank (Node.string_value k)))
  |> List.map strip_whitespace
