lib/xml_base/parser.ml: Buffer Char List Node Printf String
