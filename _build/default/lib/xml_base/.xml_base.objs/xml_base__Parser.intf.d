lib/xml_base/parser.mli: Node
