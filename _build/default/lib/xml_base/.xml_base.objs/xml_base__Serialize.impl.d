lib/xml_base/serialize.ml: Buffer List Node String
