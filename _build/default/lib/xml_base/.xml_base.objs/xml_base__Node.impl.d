lib/xml_base/node.ml: Buffer Format List
