lib/xml_base/serialize.mli: Node
