lib/xml_base/node.mli: Format
