(** XML serialization. *)

val escape_text : string -> string
(** Escape ampersand, less-than, and greater-than for character-data positions. *)

val escape_attr : string -> string
(** Escape ampersand, less-than, and double-quote for double-quoted attribute values. *)

val to_string : ?decl:bool -> Node.t -> string
(** Compact serialization. [decl] (default false) prepends an XML
    declaration when the node is a document. Attribute nodes serialize as
    name="value"; text as escaped character data. *)

val to_pretty_string : ?indent:int -> Node.t -> string
(** Indented serialization. Elements whose content is pure text are kept on
    one line; whitespace-only text between elements is dropped. [indent]
    defaults to 2. *)

val write_file : string -> Node.t -> unit

val to_html_string : Node.t -> string
(** HTML serialization: void elements (br, hr, img, input, meta, link,
    col, area, base, embed, source, track, wbr) emit without closing
    tags or self-closing slashes; other empty elements keep an explicit
    closing tag (<div></div>, never <div/>); script and style content is
    emitted raw. Attribute values stay double-quoted and escaped. *)
