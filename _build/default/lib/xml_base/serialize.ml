let escape buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quot:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~quot:true s;
  Buffer.contents buf

let add_attrs buf n =
  List.iter
    (fun a ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Node.name a);
      Buffer.add_string buf "=\"";
      escape buf ~quot:true (Node.string_value a);
      Buffer.add_char buf '"')
    (Node.attributes n)

let rec add_node buf n =
  match Node.kind n with
  | Node.Document -> List.iter (add_node buf) (Node.children n)
  | Node.Element ->
    Buffer.add_char buf '<';
    Buffer.add_string buf (Node.name n);
    add_attrs buf n;
    (match Node.children n with
    | [] -> Buffer.add_string buf "/>"
    | kids ->
      Buffer.add_char buf '>';
      List.iter (add_node buf) kids;
      Buffer.add_string buf "</";
      Buffer.add_string buf (Node.name n);
      Buffer.add_char buf '>')
  | Node.Attribute ->
    Buffer.add_string buf (Node.name n);
    Buffer.add_string buf "=\"";
    escape buf ~quot:true (Node.string_value n);
    Buffer.add_char buf '"'
  | Node.Text -> escape buf ~quot:false (Node.string_value n)
  | Node.Comment ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf (Node.string_value n);
    Buffer.add_string buf "-->"
  | Node.Processing_instruction ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf (Node.pi_target n);
    (match Node.string_value n with
    | "" -> ()
    | content ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf content);
    Buffer.add_string buf "?>"

let to_string ?(decl = false) n =
  let buf = Buffer.create 256 in
  if decl && Node.kind n = Node.Document then
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  add_node buf n;
  Buffer.contents buf

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

let to_pretty_string ?(indent = 2) n =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let significant_kids n =
    List.filter
      (fun k -> not (Node.is_text k && is_blank (Node.string_value k)))
      (Node.children n)
  in
  let rec go depth n =
    match Node.kind n with
    | Node.Document ->
      List.iter
        (fun k ->
          go depth k;
          Buffer.add_char buf '\n')
        (significant_kids n)
    | Node.Element ->
      pad depth;
      let kids = significant_kids n in
      let text_only = List.for_all Node.is_text kids in
      Buffer.add_char buf '<';
      Buffer.add_string buf (Node.name n);
      add_attrs buf n;
      (match kids with
      | [] -> Buffer.add_string buf "/>"
      | kids when text_only ->
        Buffer.add_char buf '>';
        List.iter (fun k -> escape buf ~quot:false (Node.string_value k)) kids;
        Buffer.add_string buf "</";
        Buffer.add_string buf (Node.name n);
        Buffer.add_char buf '>'
      | kids ->
        Buffer.add_string buf ">\n";
        List.iter
          (fun k ->
            go (depth + 1) k;
            Buffer.add_char buf '\n')
          kids;
        pad depth;
        Buffer.add_string buf "</";
        Buffer.add_string buf (Node.name n);
        Buffer.add_char buf '>')
    | Node.Attribute | Node.Text | Node.Comment | Node.Processing_instruction ->
      pad depth;
      add_node buf n
  in
  go 0 n;
  Buffer.contents buf

let write_file path n =
  let oc = open_out_bin path in
  output_string oc (to_string ~decl:true n);
  close_out oc

let html_void_elements =
  [ "area"; "base"; "br"; "col"; "embed"; "hr"; "img"; "input"; "link"; "meta";
    "source"; "track"; "wbr" ]

let html_raw_text_elements = [ "script"; "style" ]

let to_html_string n =
  let buf = Buffer.create 256 in
  let rec go n =
    match Node.kind n with
    | Node.Document -> List.iter go (Node.children n)
    | Node.Element ->
      let tag = String.lowercase_ascii (Node.name n) in
      Buffer.add_char buf '<';
      Buffer.add_string buf (Node.name n);
      add_attrs buf n;
      Buffer.add_char buf '>';
      if List.mem tag html_void_elements then ()
      else begin
        (if List.mem tag html_raw_text_elements then
           Buffer.add_string buf (Node.string_value n)
         else List.iter go (Node.children n));
        Buffer.add_string buf "</";
        Buffer.add_string buf (Node.name n);
        Buffer.add_char buf '>'
      end
    | Node.Text -> escape buf ~quot:false (Node.string_value n)
    | Node.Comment ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf (Node.string_value n);
      Buffer.add_string buf "-->"
    | Node.Attribute | Node.Processing_instruction -> ()
  in
  go n;
  Buffer.contents buf
