(** Hand-written XML parser.

    Supports elements, attributes (single or double quoted), character data,
    the five predefined entities plus numeric character references, CDATA
    sections, comments, processing instructions, an optional XML declaration,
    and a skipped DOCTYPE. No namespaces processing (qualified names are kept
    as plain strings) and no external entities — matching what the AWB export
    format needs. *)

exception Parse_error of { line : int; col : int; message : string }

val parse_string : string -> Node.t
(** Parse a complete document; the result is a {!Node.kind.Document} node.
    @raise Parse_error on malformed input. *)

val parse_fragment : string -> Node.t list
(** Parse a sequence of top-level nodes (elements, text, comments) without
    requiring a single root. Useful for templates and tests. *)

val parse_file : string -> Node.t

val strip_whitespace : Node.t -> Node.t
(** Deep copy with whitespace-only text nodes removed and remaining text
    trimmed is NOT applied; only pure-whitespace texts between elements are
    dropped. Convenient for template processing. *)
