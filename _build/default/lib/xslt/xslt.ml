module N = Xml_base.Node

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

type pattern_step = P_name of string | P_star | P_text | P_node

type pattern = {
  steps : pattern_step list; (* outermost first; [] means the root pattern "/" *)
  anchored : bool; (* leading "/" *)
  source : string;
}

let parse_pattern src =
  let src = String.trim src in
  if src = "/" then { steps = []; anchored = true; source = src }
  else begin
    let anchored = String.length src > 0 && src.[0] = '/' in
    let body = if anchored then String.sub src 1 (String.length src - 1) else src in
    let steps =
      List.map
        (fun piece ->
          match String.trim piece with
          | "*" -> P_star
          | "text()" -> P_text
          | "node()" -> P_node
          | "" -> fail "empty step in pattern %S" src
          | name ->
            String.iter
              (fun c ->
                if not
                     ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                     || (c >= '0' && c <= '9')
                     || c = '-' || c = '_' || c = '.' || c = ':')
                then fail "unsupported pattern %S" src)
              name;
            P_name name)
        (String.split_on_char '/' body)
    in
    { steps; anchored; source = src }
  end

let step_matches step (n : N.t) =
  match step with
  | P_name name -> N.is_element n && N.name n = name
  | P_star -> N.is_element n
  | P_text -> N.kind n = N.Text
  | P_node -> N.kind n <> N.Document

let pattern_matches pat (n : N.t) =
  if pat.steps = [] then N.kind n = N.Document
  else begin
    let rec up node = function
      | [] ->
        (* All steps consumed; anchored patterns additionally require the
           chain to sit directly under the document root. *)
        (not pat.anchored)
        || (match N.parent node with
           | Some p -> N.kind p = N.Document
           | None -> true)
      | step :: above -> (
        step_matches step node
        &&
        match above with
        | [] ->
          (not pat.anchored)
          || (match N.parent node with
             | Some p -> N.kind p = N.Document
             | None -> true)
        | _ -> (
          match N.parent node with Some p -> up p above | None -> false))
    in
    up n (List.rev pat.steps)
  end

let default_priority pat =
  match pat.steps with
  | [] -> 0.5 (* the root pattern *)
  | [ P_star ] | [ P_node ] -> -0.5
  | [ P_text ] -> -0.5
  | [ P_name _ ] -> 0.0
  | _ -> 0.5 (* qualified paths are more specific *)

(* ------------------------------------------------------------------ *)
(* Stylesheets                                                         *)
(* ------------------------------------------------------------------ *)

type rule = {
  pattern : pattern;
  priority : float;
  order : int; (* document order; later wins ties *)
  body : N.t list; (* template children (from the stylesheet tree) *)
}

type stylesheet = { rules : rule list (* sorted best-first *) }

let is_xsl n tag = N.is_element n && N.name n = "xsl:" ^ tag

let compile (doc : N.t) =
  let root =
    match N.kind doc with
    | N.Document -> (
      match N.child_elements doc with
      | [ r ] -> r
      | _ -> fail "stylesheet must have one root element")
    | _ -> doc
  in
  if not (N.name root = "xsl:stylesheet" || N.name root = "xsl:transform") then
    fail "expected <xsl:stylesheet>, found <%s>" (N.name root);
  let rules =
    List.filter (fun tpl -> not (is_xsl tpl "output")) (N.child_elements root)
    |> List.mapi
      (fun order tpl ->
        if not (is_xsl tpl "template") then
          fail "expected <xsl:template>, found <%s>" (N.name tpl)
        else begin
          let match_src =
            match N.attr tpl "match" with
            | Some m -> m
            | None -> fail "<xsl:template> needs a match attribute"
          in
          let pattern = parse_pattern match_src in
          let priority =
            match N.attr tpl "priority" with
            | Some p -> (
              match float_of_string_opt p with
              | Some f -> f
              | None -> fail "bad priority %S" p)
            | None -> default_priority pattern
          in
          { pattern; priority; order; body = N.children tpl }
        end)
  in
  (* Best-first: higher priority, then later in document order. *)
  let sorted =
    List.sort
      (fun a b ->
        match compare b.priority a.priority with 0 -> compare b.order a.order | c -> c)
      rules
  in
  { rules = sorted }

let compile_string s = compile (Xml_base.Parser.parse_string s)

(* ------------------------------------------------------------------ *)
(* Expression evaluation (shared with the XQuery engine)               *)
(* ------------------------------------------------------------------ *)

type env = {
  xq : Xquery.Context.env;
  mutable expr_cache : (string * Xquery.Ast.expr) list;
}

let make_env () =
  let xq = Xquery.Context.make_env () in
  Xquery.Functions.register_all xq;
  { xq; expr_cache = [] }

let parse_expr env src =
  match List.assoc_opt src env.expr_cache with
  | Some e -> e
  | None -> (
    match Xquery.Parser.parse_expression src with
    | e ->
      env.expr_cache <- (src, e) :: env.expr_cache;
      e
    | exception Xquery.Errors.Error { message; _ } ->
      fail "bad expression %S: %s" src message)

type ctx = {
  env : env;
  node : N.t;
  pos : int;
  size : int;
  vars : Xquery.Value.sequence Xquery.Context.StringMap.t;
}

let eval_expr ctx src =
  let expr = parse_expr ctx.env src in
  let dyn = Xquery.Context.make_dyn ctx.env.xq in
  let dyn =
    Xquery.Context.with_context dyn (Xquery.Value.Node ctx.node) ctx.pos ctx.size
  in
  let dyn = { dyn with Xquery.Context.vars = ctx.vars } in
  try Xquery.Eval.eval dyn expr
  with Xquery.Errors.Error { code; message } ->
    fail "evaluating %S: %s: %s" src code message

let eval_nodes ctx src =
  match Xquery.Value.all_nodes (eval_expr ctx src) with
  | Some ns -> ns
  | None -> fail "select=%S must evaluate to nodes" src

let eval_string_of ctx src = Xquery.Value.string_value
    (match eval_expr ctx src with [] -> [] | x :: _ -> [ x ])

let eval_bool ctx src = Xquery.Value.effective_boolean_value (eval_expr ctx src)

(* Attribute value templates in literal result elements: {expr} holes. *)
let expand_avt ctx s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && s.[i] = '{' && s.[i + 1] = '{' then begin
      Buffer.add_char buf '{';
      go (i + 2)
    end
    else if i + 1 < n && s.[i] = '}' && s.[i + 1] = '}' then begin
      Buffer.add_char buf '}';
      go (i + 2)
    end
    else if s.[i] = '{' then begin
      match String.index_from_opt s (i + 1) '}' with
      | None -> fail "unterminated { in attribute value template %S" s
      | Some j ->
        let expr = String.sub s (i + 1) (j - i - 1) in
        Buffer.add_string buf
          (String.concat " "
             (List.map Xquery.Value.string_of_atomic
                (Xquery.Value.atomize (eval_expr ctx expr))));
        go (j + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* xsl:sort children of for-each/apply-templates. *)
let sort_specs item =
  List.filter (fun k -> is_xsl k "sort") (N.child_elements item)

let apply_sorts ctx specs nodes =
  if specs = [] then nodes
  else begin
    let keyed =
      List.map
        (fun n ->
          let key_ctx = { ctx with node = n } in
          let keys =
            List.map
              (fun spec ->
                let sel = Option.value ~default:"string(.)" (N.attr spec "select") in
                let s = eval_string_of key_ctx sel in
                let numeric = N.attr spec "data-type" = Some "number" in
                let descending = N.attr spec "order" = Some "descending" in
                (s, numeric, descending))
              specs
          in
          (keys, n))
        nodes
    in
    let compare_keys k1 k2 =
      let rec go = function
        | [], [] -> 0
        | (a, numeric, desc) :: r1, (b, _, _) :: r2 ->
          let c =
            if numeric then
              compare
                (Option.value ~default:Float.nan (float_of_string_opt a))
                (Option.value ~default:Float.nan (float_of_string_opt b))
            else compare a b
          in
          if c <> 0 then if desc then -c else c else go (r1, r2)
        | _ -> 0
      in
      go (k1, k2)
    in
    List.map snd (List.stable_sort (fun (k1, _) (k2, _) -> compare_keys k1 k2) keyed)
  end

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

let rec apply_rules sheet env vars (n : N.t) ~pos ~size : N.t list =
  let ctx = { env; node = n; pos; size; vars } in
  match List.find_opt (fun r -> pattern_matches r.pattern n) sheet.rules with
  | Some rule -> instantiate sheet ctx rule.body
  | None -> builtin_rule sheet env vars n

and builtin_rule sheet env vars n =
  match N.kind n with
  | N.Document | N.Element ->
    let kids = N.children n in
    let size = List.length kids in
    List.concat (List.mapi (fun i k -> apply_rules sheet env vars k ~pos:(i + 1) ~size) kids)
  | N.Text -> [ N.text (N.string_value n) ]
  | N.Attribute | N.Comment | N.Processing_instruction -> []

and instantiate sheet ctx (body : N.t list) : N.t list =
  (* xsl:variable declarations scope over their following siblings. *)
  let rec go ctx = function
    | [] -> []
    | item :: rest when is_xsl item "variable" ->
      let name =
        match N.attr item "name" with
        | Some v -> v
        | None -> fail "<xsl:variable> needs a name"
      in
      let value =
        match N.attr item "select" with
        | Some sel -> eval_expr ctx sel
        | None ->
          (* Content-valued variable: an element-less result tree fragment
             is approximated by its nodes. *)
          List.map
            (fun n -> Xquery.Value.Node n)
            (instantiate sheet ctx (N.children item))
      in
      let ctx =
        { ctx with vars = Xquery.Context.StringMap.add name value ctx.vars }
      in
      go ctx rest
    | item :: rest -> instantiate_one sheet ctx item @ go ctx rest
  in
  go ctx body

and instantiate_one sheet ctx (item : N.t) : N.t list =
  match N.kind item with
  | N.Text ->
    let s = N.string_value item in
    if String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s then []
    else [ N.text s ]
  | N.Comment -> []
  | N.Attribute | N.Processing_instruction | N.Document -> []
  | N.Element -> (
    match N.name item with
    | "xsl:apply-templates" ->
      let nodes =
        match N.attr item "select" with
        | Some sel -> eval_nodes ctx sel
        | None -> N.children ctx.node
      in
      let nodes = apply_sorts ctx (sort_specs item) nodes in
      let size = List.length nodes in
      List.concat
        (List.mapi
           (fun i n -> apply_rules sheet ctx.env ctx.vars n ~pos:(i + 1) ~size)
           nodes)
    | "xsl:value-of" -> (
      let sel =
        match N.attr item "select" with
        | Some s -> s
        | None -> fail "<xsl:value-of> needs select"
      in
      match eval_string_of ctx sel with "" -> [] | s -> [ N.text s ])
    | "xsl:copy-of" -> (
      match N.attr item "select" with
      | Some sel -> List.map N.copy (eval_nodes ctx sel)
      | None -> fail "<xsl:copy-of> needs select")
    | "xsl:copy" -> (
      match N.kind ctx.node with
      | N.Element ->
        [ N.element (N.name ctx.node) ~children:(instantiate sheet ctx (N.children item)) ]
      | N.Document -> instantiate sheet ctx (N.children item)
      | _ -> [ N.copy ctx.node ])
    | "xsl:for-each" ->
      let sel =
        match N.attr item "select" with
        | Some s -> s
        | None -> fail "<xsl:for-each> needs select"
      in
      let nodes = apply_sorts ctx (sort_specs item) (eval_nodes ctx sel) in
      let size = List.length nodes in
      let body =
        List.filter (fun k -> not (is_xsl k "sort")) (N.children item)
      in
      List.concat
        (List.mapi
           (fun i n -> instantiate sheet { ctx with node = n; pos = i + 1; size } body)
           nodes)
    | "xsl:if" ->
      let test =
        match N.attr item "test" with
        | Some t -> t
        | None -> fail "<xsl:if> needs test"
      in
      if eval_bool ctx test then instantiate sheet ctx (N.children item) else []
    | "xsl:choose" ->
      let rec choose = function
        | [] -> []
        | branch :: rest when is_xsl branch "when" -> (
          match N.attr branch "test" with
          | Some t ->
            if eval_bool ctx t then instantiate sheet ctx (N.children branch)
            else choose rest
          | None -> fail "<xsl:when> needs test")
        | branch :: _ when is_xsl branch "otherwise" ->
          instantiate sheet ctx (N.children branch)
        | other :: _ -> fail "unexpected <%s> in <xsl:choose>" (N.name other)
      in
      choose (N.child_elements item)
    | "xsl:element" ->
      let name =
        match N.attr item "name" with
        | Some n -> expand_avt ctx n
        | None -> fail "<xsl:element> needs name"
      in
      let content = instantiate sheet ctx (N.children item) in
      let attrs, kids = List.partition N.is_attribute content in
      [ N.element name ~attrs ~children:kids ]
    | "xsl:attribute" ->
      let name =
        match N.attr item "name" with
        | Some n -> expand_avt ctx n
        | None -> fail "<xsl:attribute> needs name"
      in
      let value =
        String.concat ""
          (List.map N.string_value (instantiate sheet ctx (N.children item)))
      in
      [ N.attribute name value ]
    | "xsl:text" -> [ N.text (N.string_value item) ]
    | "xsl:variable" -> assert false (* handled in [instantiate] *)
    | name when String.length name >= 4 && String.sub name 0 4 = "xsl:" ->
      fail "unsupported instruction <%s>" name
    | _ ->
      (* Literal result element: attributes are value templates, children
         instantiate; attribute nodes produced by content fold in. *)
      let attrs =
        List.map
          (fun a -> N.attribute (N.name a) (expand_avt ctx (N.string_value a)))
          (N.attributes item)
      in
      let content = instantiate sheet ctx (N.children item) in
      let extra_attrs, kids = List.partition N.is_attribute content in
      [ N.element (N.name item) ~attrs:(attrs @ extra_attrs) ~children:kids ])

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let apply sheet source =
  let env = make_env () in
  apply_rules sheet env Xquery.Context.StringMap.empty source ~pos:1 ~size:1

let apply_to_element sheet source =
  match List.filter N.is_element (apply sheet source) with
  | [ e ] -> e
  | other -> fail "expected one element result, got %d" (List.length other)
