(** A little XSLT 1.0-style transformation engine.

    The paper's system was "mostly in XQuery, with a bit of XSLT sprinkled
    in at the end" — notably "a little XSLT program" that split the single
    output stream apart. This module is that substrate: template rules
    matched by pattern, applied recursively, with the usual instruction
    set ([apply-templates], [value-of], [for-each], [if],
    [choose]/[when]/[otherwise], [copy], [copy-of], [element],
    [attribute], [text], [variable]).

    Select and test expressions reuse the XQuery engine's XPath subset,
    evaluated with the current node as context item, so the two little
    languages share one expression language — as they do in the real
    standards.

    Supported match patterns: ["/"] (the document), [name], [*], [text()],
    [node()], and parent-qualified paths like [a/b] or [/doc/a/b]
    (anchored at the root when they start with [/]). Template conflicts
    resolve by explicit [priority], then specificity, then document order
    (later wins). Built-in rules: elements and documents recurse; text
    copies; attributes and comments produce nothing. *)

exception Error of string

type stylesheet

val compile : Xml_base.Node.t -> stylesheet
(** Compile a parsed stylesheet (root [xsl:stylesheet] or
    [xsl:transform]; the [xsl:] prefix is required on instruction
    elements). @raise Error on malformed stylesheets. *)

val compile_string : string -> stylesheet

val apply : stylesheet -> Xml_base.Node.t -> Xml_base.Node.t list
(** Transform a source node (usually a document); the result sequence is
    the instantiation of the best-matching template for it. *)

val apply_to_element : stylesheet -> Xml_base.Node.t -> Xml_base.Node.t
(** Like {!apply} but expects exactly one element result.
    @raise Error otherwise. *)
