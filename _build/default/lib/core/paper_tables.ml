(* Printable reproductions of the paper's literal artifacts (T1, T2),
   shared by the benchmark harness and the examples. The test suite
   asserts the same behaviours cell-by-cell (test/test_paper_tables.ml). *)

module V = Xquery.Value
module E = Xquery.Engine
module Err = Xquery.Errors

let run q =
  match E.eval_query q with
  | [] -> "()"
  | s -> V.to_display_string s
  | exception Err.Error { code; _ } -> code

let t1_rows =
  [
    ("Y itself", "1", "2", "3");
    ("Some part of Y", "1", "(2, \"2a\")", "4");
    ("Z", "1", "()", "3");
    ("A part of X", "(\"1a\",\"1b\")", "2", "3");
    ("A part of Z", "1", "()", "(\"3a\",\"3b\")");
    ("Nothing", "()", "(2)", "()");
  ]

let t1_report () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "T1 - sequence/element indexing pitfalls (paper: Data Structures and Abstractions)\n";
  Buffer.add_string b
    "Store X, Y, Z in a container; ask for Y back with [2] (sequence) or /node()[2] (element).\n\n";
  Buffer.add_string b
    (Printf.sprintf "  %-18s %-14s %-22s %-14s %-12s %-14s\n" "Result" "X" "Y" "Z"
       "($X,$Y,$Z)[2]" "elem node()[2]");
  List.iter
    (fun (label, x, y, z) ->
      let seq =
        run
          (Printf.sprintf
             "let $X := %s let $Y := %s let $Z := %s return string(($X, $Y, $Z)[2])" x y z)
      in
      let el =
        run
          (Printf.sprintf
             "let $X := %s let $Y := %s let $Z := %s return string((<el>{$X}{$Y}{$Z}</el>/node())[2])"
             x y z)
      in
      let blank s = if s = "" then "()" else s in
      Buffer.add_string b
        (Printf.sprintf "  %-18s %-14s %-22s %-14s %-12s %-14s\n" label x y z (blank seq)
           (blank el)))
    t1_rows;
  let attr_row =
    run
      "let $X := 1 let $Y := attribute y {\"why?\"} let $Z := 2 return <el>{$X}{$Y}{$Z}</el>"
  in
  Buffer.add_string b
    (Printf.sprintf "  %-18s %-14s %-22s %-14s %-12s %-14s\n" "An error (elem)" "1"
       "attribute y {...}" "2" "why?" attr_row);
  Buffer.add_string b
    "\n  (element representation: adjacent atomics merge into one text node, so every\n\
    \   atomic row collapses to 'Nothing' - stricter than the paper's table, same moral)\n";
  Buffer.contents b

let t2_report () =
  let b = Buffer.create 512 in
  Buffer.add_string b "T2 - attribute folding (paper: Treatment of Child Elements)\n\n";
  let show label q =
    Buffer.add_string b (Printf.sprintf "  %-52s => %s\n" label (run q))
  in
  show "let $x := attribute troubles {1} in <el> {$x} </el>"
    "let $x := attribute troubles {1} return <el> {$x} </el>";
  show "duplicate names, draft semantics (one survives)"
    "let $a := attribute a {1} let $b := attribute a {2} let $c := attribute b {3} \
     return <el> {$a}{$b}{$c} </el>";
  let galax =
    match
      E.eval_query ~compat:Xquery.Context.galax_compat
        "let $a := attribute a {1} let $b := attribute a {2} let $c := attribute b {3} \
         return <el> {$a}{$b}{$c} </el>"
    with
    | s -> V.to_display_string s
    | exception Err.Error { code; _ } -> code
  in
  Buffer.add_string b
    (Printf.sprintf "  %-52s => %s\n" "duplicate names, Galax-2004 (did not honor it)" galax);
  show "attribute after content"
    "let $x := attribute troubles {1} return <el> doom {$x} </el>";
  Buffer.contents b
