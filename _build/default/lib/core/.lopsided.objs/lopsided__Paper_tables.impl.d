lib/core/paper_tables.ml: Buffer List Printf Xquery
