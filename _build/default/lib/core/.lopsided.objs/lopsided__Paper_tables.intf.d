lib/core/paper_tables.mli:
