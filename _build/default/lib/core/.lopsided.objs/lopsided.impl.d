lib/core/lopsided.ml: Awb Awb_query Docgen Paper_tables Xml_base Xqlib Xquery Xslt
