(** One-stop public API for the Lopsided Little Languages reproduction.

    {1 What this library is}

    A from-scratch OCaml reproduction of the systems in Bard Bloom's
    "Lopsided Little Languages: Experience with XQuery in a Document
    Generation Subsystem" (SIGMOD Record, 2005):

    - {!Xml}: an XML substrate with node identity, document order, and
      in-place mutation (the host-engine side needs it).
    - {!Xq}: an XQuery-subset engine with the exact semantics the paper
      reports on — flat sequences, attribute folding, existential [=],
      and an optimizer whose dead-code elimination can silently delete
      [trace()] calls ({!Xq.Context.galax_compat}).
    - {!Awb}: the Architect's Workbench substrate — metamodel, annotated
      multigraph model, advisory validation, XML export.
    - {!Query}: the AWB query calculus with two implementations (native
      and compiled-to-XQuery) that must agree.
    - {!Docgen}: the document generator twice over — the functional
      XQuery-style engine and the host-style rewrite — plus a genuine
      XQuery core run by {!Xq}.
    - {!Xq_utils}: the project's XQuery utility library (string sets,
      trimming, binary search, trigonometry) in actual XQuery.

    {1 Quickstart}

    {[
      let model = Lopsided.Awb.Samples.banking_model () in
      let template =
        Lopsided.Xml.Parser.parse_string
          "<document><for nodes=\"start type(User); sort-by label\"><p><label/></p></for></document>"
      in
      let result = Lopsided.Docgen.Host_engine.generate model ~template in
      print_endline (Lopsided.Xml.Serialize.to_string result.Lopsided.Docgen.Spec.document)
    ]} *)

module Xml = Xml_base
module Xq = Xquery
module Awb = Awb
module Query = Awb_query
module Docgen = Docgen
module Xq_utils = Xqlib.Xq_utils
module Xslt = Xslt
module Paper_tables = Paper_tables

(** Run an XQuery query over an XML string and return the printed result
    — the two-line hello world. *)
let xquery_string ~xml ~query =
  let doc = Xml_base.Parser.parse_string xml in
  Xquery.Value.to_display_string
    (Xquery.Engine.eval_query ~context_item:(Xquery.Value.Node doc) query)

(** Generate a document from template + model XML strings with the host
    engine; returns (document XML, problems). *)
let generate_document ~metamodel ~model_xml ~template_xml =
  let model = Awb.Xml_io.import_string metamodel model_xml in
  let template =
    Xml_base.Parser.strip_whitespace (Xml_base.Parser.parse_string template_xml)
  in
  let result = Docgen.Host_engine.generate model ~template in
  (Xml_base.Serialize.to_string result.Docgen.Spec.document, result.Docgen.Spec.problems)
