(* Recursive-descent parser for the XQuery subset.

   Token-level lookahead is at most two tokens; direct element constructors
   switch the lexer into raw character mode, as real XQuery grammars must.
   Keywords are not reserved: [for] is a FLWOR head only when followed by a
   variable, [if] only when followed by '(', and so on — so paths may use
   those words as element names, faithful to the real grammar. *)

module L = Lexer
open Ast

let kind_test_names =
  [
    "node"; "text"; "comment"; "processing-instruction"; "element"; "attribute";
    "document-node";
  ]

let err t fmt = L.syntax_error t fmt

(* -------------------------------------------------------------------- *)
(* Sequence types                                                        *)
(* -------------------------------------------------------------------- *)

let parse_occurrence t =
  match L.peek t with
  | L.T_question ->
    ignore (L.next t);
    Stype.Zero_or_one
  | L.T_star ->
    ignore (L.next t);
    Stype.Zero_or_more
  | L.T_plus ->
    ignore (L.next t);
    Stype.One_or_more
  | _ -> Stype.Exactly_one

let parse_sequence_type t =
  match L.next t with
  | L.T_name "empty-sequence" ->
    L.expect t L.T_lparen;
    L.expect t L.T_rparen;
    Stype.Empty_sequence
  | L.T_name name when L.peek t = L.T_lparen ->
    ignore (L.next t);
    let inner_name =
      match L.peek t with
      | L.T_name n ->
        ignore (L.next t);
        Some n
      | _ -> None
    in
    L.expect t L.T_rparen;
    let item =
      match name with
      | "item" -> Stype.It_item
      | "node" -> Stype.It_node
      | "element" -> Stype.It_element inner_name
      | "attribute" -> Stype.It_attribute inner_name
      | "text" -> Stype.It_text
      | "document-node" -> Stype.It_document
      | other -> err t "unknown item type %s()" other
    in
    Stype.Seq (item, parse_occurrence t)
  | L.T_name name -> Stype.Seq (Stype.It_atomic name, parse_occurrence t)
  | tok -> err t "expected a sequence type, found %s" (L.token_to_string tok)

(* -------------------------------------------------------------------- *)
(* Expressions                                                           *)
(* -------------------------------------------------------------------- *)

let rec parse_expr t =
  let first = parse_expr_single t in
  if L.peek t = L.T_comma then begin
    let items = ref [ first ] in
    while L.peek t = L.T_comma do
      ignore (L.next t);
      items := parse_expr_single t :: !items
    done;
    E_seq (List.rev !items)
  end
  else first

and parse_expr_single t =
  (* peek2 only behind a peek guard: lexing two tokens ahead is unsafe when
     the next token could already be the '}' closing an enclosed
     expression (what follows is XML content, not tokens). *)
  match L.peek t with
  | L.T_name ("for" | "let") when is_var (L.peek2 t) -> parse_flwor t
  | L.T_name ("some" | "every") when is_var (L.peek2 t) -> parse_quantified t
  | L.T_name "if" when L.peek2 t = L.T_lparen -> parse_if t
  | L.T_name "typeswitch" when L.peek2 t = L.T_lparen -> parse_typeswitch t
  | _ -> parse_or t

and is_var = function L.T_var _ -> true | _ -> false

and parse_flwor t =
  let clauses = ref [] in
  let rec clause_loop () =
    match (L.peek t, L.peek2 t) with
    | L.T_name "for", L.T_var _ ->
      ignore (L.next t);
      let rec one_binding () =
        let var = match L.next t with L.T_var v -> v | _ -> err t "expected $var" in
        let var_type =
          if L.peek t = L.T_name "as" then begin
            ignore (L.next t);
            Some (parse_sequence_type t)
          end
          else None
        in
        let pos_var =
          if L.peek t = L.T_name "at" then begin
            ignore (L.next t);
            match L.next t with
            | L.T_var v -> Some v
            | _ -> err t "expected $var after 'at'"
          end
          else None
        in
        (match L.next t with
        | L.T_name "in" -> ()
        | tok -> err t "expected 'in', found %s" (L.token_to_string tok));
        let source = parse_expr_single t in
        clauses := For { var; var_type; pos_var; source } :: !clauses;
        if L.peek t = L.T_comma then begin
          ignore (L.next t);
          one_binding ()
        end
      in
      one_binding ();
      clause_loop ()
    | L.T_name "let", L.T_var _ ->
      ignore (L.next t);
      let rec one_binding () =
        let var = match L.next t with L.T_var v -> v | _ -> err t "expected $var" in
        let var_type =
          if L.peek t = L.T_name "as" then begin
            ignore (L.next t);
            Some (parse_sequence_type t)
          end
          else None
        in
        L.expect t L.T_assign;
        let value = parse_expr_single t in
        clauses := Let { var; var_type; value } :: !clauses;
        if L.peek t = L.T_comma then begin
          ignore (L.next t);
          one_binding ()
        end
      in
      one_binding ();
      clause_loop ()
    | L.T_name "where", _ ->
      ignore (L.next t);
      let cond = parse_expr_single t in
      clauses := Where cond :: !clauses;
      clause_loop ()
    | _ -> ()
  in
  clause_loop ();
  let order_by = ref [] in
  (if L.peek t = L.T_name "stable" && L.peek2 t = L.T_name "order" then
     ignore (L.next t));
  if L.peek t = L.T_name "order" && L.peek2 t = L.T_name "by" then begin
    ignore (L.next t);
    ignore (L.next t);
    let rec one_key () =
      let key = parse_expr_single t in
      let descending =
        match L.peek t with
        | L.T_name "ascending" ->
          ignore (L.next t);
          false
        | L.T_name "descending" ->
          ignore (L.next t);
          true
        | _ -> false
      in
      let empty_greatest =
        if L.peek t = L.T_name "empty" then begin
          ignore (L.next t);
          match L.next t with
          | L.T_name "greatest" -> true
          | L.T_name "least" -> false
          | tok -> err t "expected greatest/least, found %s" (L.token_to_string tok)
        end
        else false
      in
      order_by := { key; descending; empty_greatest } :: !order_by;
      if L.peek t = L.T_comma then begin
        ignore (L.next t);
        one_key ()
      end
    in
    one_key ()
  end;
  (match L.next t with
  | L.T_name "return" -> ()
  | tok -> err t "expected 'return', found %s" (L.token_to_string tok));
  let return = parse_expr_single t in
  E_flwor { clauses = List.rev !clauses; order_by = List.rev !order_by; return }

and parse_quantified t =
  let quant =
    match L.next t with
    | L.T_name "some" -> Some_q
    | L.T_name "every" -> Every_q
    | _ -> assert false
  in
  let bindings = ref [] in
  let rec one_binding () =
    let var = match L.next t with L.T_var v -> v | _ -> err t "expected $var" in
    (match L.next t with
    | L.T_name "in" -> ()
    | tok -> err t "expected 'in', found %s" (L.token_to_string tok));
    let source = parse_expr_single t in
    bindings := (var, source) :: !bindings;
    if L.peek t = L.T_comma then begin
      ignore (L.next t);
      one_binding ()
    end
  in
  one_binding ();
  (match L.next t with
  | L.T_name "satisfies" -> ()
  | tok -> err t "expected 'satisfies', found %s" (L.token_to_string tok));
  let body = parse_expr_single t in
  E_quantified (quant, List.rev !bindings, body)

and parse_if t =
  ignore (L.next t);
  L.expect t L.T_lparen;
  let cond = parse_expr t in
  L.expect t L.T_rparen;
  (match L.next t with
  | L.T_name "then" -> ()
  | tok -> err t "expected 'then', found %s" (L.token_to_string tok));
  let then_ = parse_expr_single t in
  (match L.next t with
  | L.T_name "else" -> ()
  | tok -> err t "expected 'else', found %s" (L.token_to_string tok));
  let else_ = parse_expr_single t in
  E_if (cond, then_, else_)

and parse_typeswitch t =
  ignore (L.next t);
  L.expect t L.T_lparen;
  let operand = parse_expr t in
  L.expect t L.T_rparen;
  let cases = ref [] in
  while L.peek t = L.T_name "case" do
    ignore (L.next t);
    let case_var =
      match L.peek t with
      | L.T_var v ->
        ignore (L.next t);
        (match L.next t with
        | L.T_name "as" -> ()
        | tok -> err t "expected 'as', found %s" (L.token_to_string tok));
        Some v
      | _ -> None
    in
    let case_type = parse_sequence_type t in
    (match L.next t with
    | L.T_name "return" -> ()
    | tok -> err t "expected 'return', found %s" (L.token_to_string tok));
    let case_return = parse_expr_single t in
    cases := { case_var; case_type; case_return } :: !cases
  done;
  (match L.next t with
  | L.T_name "default" -> ()
  | tok -> err t "expected 'default', found %s" (L.token_to_string tok));
  let default_var =
    match L.peek t with
    | L.T_var v ->
      ignore (L.next t);
      Some v
    | _ -> None
  in
  (match L.next t with
  | L.T_name "return" -> ()
  | tok -> err t "expected 'return', found %s" (L.token_to_string tok));
  let default = parse_expr_single t in
  E_typeswitch { operand; cases = List.rev !cases; default_var; default }

and parse_or t =
  let lhs = parse_and t in
  if L.peek t = L.T_name "or" then begin
    ignore (L.next t);
    E_or (lhs, parse_or t)
  end
  else lhs

and parse_and t =
  let lhs = parse_comparison t in
  if L.peek t = L.T_name "and" then begin
    ignore (L.next t);
    E_and (lhs, parse_and t)
  end
  else lhs

and parse_comparison t =
  let lhs = parse_range t in
  let general op =
    ignore (L.next t);
    E_general_cmp (op, lhs, parse_range t)
  in
  let value op =
    ignore (L.next t);
    E_value_cmp (op, lhs, parse_range t)
  in
  let node op =
    ignore (L.next t);
    E_node_cmp (op, lhs, parse_range t)
  in
  match L.peek t with
  | L.T_eq -> general Eq
  | L.T_ne -> general Ne
  | L.T_lt -> general Lt
  | L.T_le -> general Le
  | L.T_gt -> general Gt
  | L.T_ge -> general Ge
  | L.T_name "eq" -> value Eq
  | L.T_name "ne" -> value Ne
  | L.T_name "lt" -> value Lt
  | L.T_name "le" -> value Le
  | L.T_name "gt" -> value Gt
  | L.T_name "ge" -> value Ge
  | L.T_name "is" -> node Is
  | L.T_ll -> node Precedes
  | L.T_gg -> node Follows
  | _ -> lhs

and parse_range t =
  let lhs = parse_additive t in
  if L.peek t = L.T_name "to" then begin
    ignore (L.next t);
    E_range (lhs, parse_additive t)
  end
  else lhs

and parse_additive t =
  let lhs = ref (parse_multiplicative t) in
  let rec go () =
    match L.peek t with
    | L.T_plus ->
      ignore (L.next t);
      lhs := E_arith (Add, !lhs, parse_multiplicative t);
      go ()
    | L.T_minus ->
      ignore (L.next t);
      lhs := E_arith (Sub, !lhs, parse_multiplicative t);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative t =
  let lhs = ref (parse_union t) in
  let rec go () =
    let op =
      match L.peek t with
      | L.T_star -> Some Mul
      | L.T_name "div" -> Some Div
      | L.T_name "idiv" -> Some Idiv
      | L.T_name "mod" -> Some Mod
      | _ -> None
    in
    match op with
    | Some op ->
      ignore (L.next t);
      lhs := E_arith (op, !lhs, parse_union t);
      go ()
    | None -> ()
  in
  go ();
  !lhs

and parse_union t =
  let lhs = ref (parse_intersect t) in
  let rec go () =
    match L.peek t with
    | L.T_pipe | L.T_name "union" ->
      ignore (L.next t);
      lhs := E_set_op (Union, !lhs, parse_intersect t);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_intersect t =
  let lhs = ref (parse_instance t) in
  let rec go () =
    let op =
      match L.peek t with
      | L.T_name "intersect" -> Some Intersect
      | L.T_name "except" -> Some Except
      | _ -> None
    in
    match op with
    | Some op ->
      ignore (L.next t);
      lhs := E_set_op (op, !lhs, parse_instance t);
      go ()
    | None -> ()
  in
  go ();
  !lhs

and parse_instance t =
  let lhs = parse_treat t in
  match L.peek t with
  | L.T_name "instance" when L.peek2 t = L.T_name "of" ->
    ignore (L.next t);
    ignore (L.next t);
    E_instance_of (lhs, parse_sequence_type t)
  | _ -> lhs

and parse_treat t =
  let lhs = parse_cast t in
  match L.peek t with
  | L.T_name "treat" when L.peek2 t = L.T_name "as" ->
    ignore (L.next t);
    ignore (L.next t);
    E_treat (lhs, parse_sequence_type t)
  | _ -> lhs

and cast_target_of_name t name =
  match name with
  | "xs:integer" | "xs:int" | "xs:long" -> To_int
  | "xs:double" | "xs:decimal" | "xs:float" -> To_double
  | "xs:string" -> To_string
  | "xs:boolean" -> To_bool
  | other -> err t "unsupported cast target %s" other

and parse_cast t =
  let lhs = parse_unary t in
  match L.peek t with
  | L.T_name (("cast" | "castable") as kw) when L.peek2 t = L.T_name "as" ->
    ignore (L.next t);
    ignore (L.next t);
    let name = match L.next t with L.T_name n -> n | _ -> err t "expected a type name" in
    let target = cast_target_of_name t name in
    if L.peek t = L.T_question then ignore (L.next t);
    if kw = "cast" then E_cast (target, lhs) else E_castable (target, lhs)
  | _ -> lhs

and parse_unary t =
  match L.peek t with
  | L.T_minus ->
    ignore (L.next t);
    E_neg (parse_unary t)
  | L.T_plus ->
    ignore (L.next t);
    parse_unary t
  | _ -> parse_path t

and desc_step = E_step (Descendant_or_self, Kind_node)

and parse_path t =
  match L.peek t with
  | L.T_slash ->
    ignore (L.next t);
    (* Absolute path; a bare "/" is the root itself. *)
    if starts_step t then E_path (E_root, parse_relative_path t) else E_root
  | L.T_dslash ->
    ignore (L.next t);
    E_path (E_path (E_root, desc_step), parse_relative_path t)
  | _ -> parse_relative_path t

and parse_relative_path t =
  let lhs = ref (parse_step_expr t) in
  let rec go () =
    match L.peek t with
    | L.T_slash ->
      ignore (L.next t);
      lhs := E_path (!lhs, parse_step_expr t);
      go ()
    | L.T_dslash ->
      ignore (L.next t);
      lhs := E_path (E_path (!lhs, desc_step), parse_step_expr t);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

(* Can the upcoming token begin a step/primary? Used after a leading "/". *)
and starts_step t =
  match L.peek t with
  | L.T_name _ | L.T_var _ | L.T_int _ | L.T_double _ | L.T_string _ | L.T_lparen
  | L.T_dot | L.T_dotdot | L.T_at | L.T_star ->
    true
  | L.T_lt -> is_name_start_char (L.char_after_peeked t)
  | _ -> false

and is_name_start_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

and parse_step_expr t =
  let base = parse_step_or_primary t in
  let result = ref base in
  while L.peek t = L.T_lbracket do
    ignore (L.next t);
    let pred = parse_expr t in
    L.expect t L.T_rbracket;
    result := E_filter (!result, pred)
  done;
  !result

and parse_step_or_primary t =
  match L.peek t with
  | L.T_int n ->
    ignore (L.next t);
    E_int n
  | L.T_double f ->
    ignore (L.next t);
    E_double f
  | L.T_string s ->
    ignore (L.next t);
    E_string s
  | L.T_var v ->
    ignore (L.next t);
    E_var v
  | L.T_dot ->
    ignore (L.next t);
    E_context_item
  | L.T_dotdot ->
    ignore (L.next t);
    E_step (Parent, Kind_node)
  | L.T_lparen ->
    ignore (L.next t);
    if L.peek t = L.T_rparen then begin
      ignore (L.next t);
      E_seq []
    end
    else begin
      let e = parse_expr t in
      L.expect t L.T_rparen;
      e
    end
  | L.T_at ->
    ignore (L.next t);
    E_step (Attribute_axis, parse_node_test t)
  | L.T_star ->
    ignore (L.next t);
    E_step (Child, Wildcard)
  | L.T_lt when is_name_start_char (L.char_after_peeked t) -> parse_direct_element t
  | L.T_name name -> parse_named t name
  | tok -> err t "unexpected %s" (L.token_to_string tok)

and parse_named t name =
  match L.peek2 t with
  | L.T_axis_sep ->
    (* axis::test *)
    ignore (L.next t);
    ignore (L.next t);
    let axis =
      match name with
      | "child" -> Child
      | "descendant" -> Descendant
      | "descendant-or-self" -> Descendant_or_self
      | "self" -> Self
      | "parent" -> Parent
      | "ancestor" -> Ancestor
      | "ancestor-or-self" -> Ancestor_or_self
      | "following-sibling" -> Following_sibling
      | "preceding-sibling" -> Preceding_sibling
      | "following" -> Following
      | "preceding" -> Preceding
      | "attribute" -> Attribute_axis
      | other -> err t "unknown axis %s" other
    in
    E_step (axis, parse_node_test t)
  | L.T_lparen when List.mem name kind_test_names ->
    (* A kind test in child-axis position: text(), element(n), ... *)
    E_step (Child, parse_node_test t)
  | L.T_lparen when name = "if" -> parse_if t
  | L.T_lparen -> parse_function_call t name
  | L.T_lbrace
    when List.mem name [ "element"; "attribute"; "text"; "document"; "comment" ] ->
    parse_computed_constructor t name
  | L.T_name _ when name = "element" || name = "attribute" ->
    parse_computed_constructor t name
  | _ ->
    (* A plain name: a child step. This is the paper's quirk #1 — x means
       "children named x", never "the variable x". *)
    ignore (L.next t);
    E_step (Child, Name_test name)

and parse_node_test t =
  match L.peek t with
  | L.T_star ->
    ignore (L.next t);
    Wildcard
  | L.T_name name when L.peek2 t = L.T_lparen && List.mem name kind_test_names ->
    ignore (L.next t);
    ignore (L.next t);
    let arg =
      match L.peek t with
      | L.T_name n ->
        ignore (L.next t);
        Some n
      | L.T_string s ->
        ignore (L.next t);
        Some s
      | _ -> None
    in
    L.expect t L.T_rparen;
    (match name with
    | "node" -> Kind_node
    | "text" -> Kind_text
    | "comment" -> Kind_comment
    | "processing-instruction" -> Kind_pi arg
    | "element" -> Kind_element arg
    | "attribute" -> Kind_attribute arg
    | "document-node" -> Kind_document
    | _ -> assert false)
  | L.T_name name ->
    ignore (L.next t);
    Name_test name
  | tok -> err t "expected a node test, found %s" (L.token_to_string tok)

and parse_function_call t name =
  ignore (L.next t);
  L.expect t L.T_lparen;
  let args = ref [] in
  if L.peek t <> L.T_rparen then begin
    let rec one () =
      args := parse_expr_single t :: !args;
      if L.peek t = L.T_comma then begin
        ignore (L.next t);
        one ()
      end
    in
    one ()
  end;
  L.expect t L.T_rparen;
  E_call (name, List.rev !args)

and parse_computed_constructor t kw =
  ignore (L.next t);
  let name_spec_and_kind () =
    match L.peek t with
    | L.T_lbrace ->
      ignore (L.next t);
      let e = parse_expr t in
      L.expect t L.T_rbrace;
      Computed_name e
    | L.T_name n ->
      ignore (L.next t);
      Static_name n
    | tok -> err t "expected a name or {expr}, found %s" (L.token_to_string tok)
  in
  let enclosed_opt () =
    L.expect t L.T_lbrace;
    if L.peek t = L.T_rbrace then begin
      ignore (L.next t);
      []
    end
    else begin
      let e = parse_expr t in
      L.expect t L.T_rbrace;
      [ e ]
    end
  in
  match kw with
  | "element" ->
    let name = name_spec_and_kind () in
    E_elem (name, enclosed_opt ())
  | "attribute" ->
    let name = name_spec_and_kind () in
    E_attr (name, enclosed_opt ())
  | "text" ->
    (match enclosed_opt () with
    | [ e ] -> E_text e
    | [] -> E_text (E_string "")
    | _ -> assert false)
  | "comment" ->
    (match enclosed_opt () with
    | [ e ] -> E_comment_c e
    | [] -> E_comment_c (E_string "")
    | _ -> assert false)
  | "document" -> E_doc (enclosed_opt ())
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Direct element constructors: raw character mode                      *)
(* ------------------------------------------------------------------ *)

and parse_direct_element t =
  (* The '<' token is still peeked; consume it, then read raw. *)
  (match L.next t with L.T_lt -> () | _ -> assert false);
  parse_direct_element_raw t

and parse_direct_element_raw t =
  (* Raw position is right after '<'. *)
  let tag = L.raw_name t in
  let attrs = ref [] in
  let rec attr_loop () =
    L.raw_skip_ws t;
    let c = L.raw_peek t in
    if is_name_start_char c then begin
      let aname = L.raw_name t in
      L.raw_skip_ws t;
      if not (L.raw_skip t "=") then err t "expected '=' in attribute %s" aname;
      L.raw_skip_ws t;
      let quote = L.raw_next t in
      if quote <> '"' && quote <> '\'' then err t "expected a quoted attribute value";
      let contents = parse_attr_value_template t quote in
      attrs := E_attr (Static_name aname, contents) :: !attrs;
      attr_loop ()
    end
  in
  attr_loop ();
  L.raw_skip_ws t;
  if L.raw_skip t "/>" then E_elem (Static_name tag, List.rev !attrs)
  else if L.raw_skip t ">" then begin
    let content = parse_element_content t tag in
    E_elem (Static_name tag, List.rev !attrs @ content)
  end
  else err t "expected '>' or '/>' in constructor <%s ...>" tag

(* Attribute value template: text with {expr} holes; {{ and }} escape. *)
and parse_attr_value_template t quote =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := E_string (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec go () =
    let c = L.raw_peek t in
    if c = quote then ignore (L.raw_next t)
    else if c = '\000' then err t "unterminated attribute value"
    else if L.raw_looking_at t "{{" then begin
      ignore (L.raw_skip t "{{");
      Buffer.add_char buf '{';
      go ()
    end
    else if L.raw_looking_at t "}}" then begin
      ignore (L.raw_skip t "}}");
      Buffer.add_char buf '}';
      go ()
    end
    else if c = '{' then begin
      ignore (L.raw_next t);
      flush ();
      (* Switch to token mode for the enclosed expression. *)
      let e = parse_expr t in
      L.expect t L.T_rbrace;
      parts := e :: !parts;
      go ()
    end
    else if c = '&' then begin
      Buffer.add_string buf (parse_raw_entity t);
      go ()
    end
    else begin
      Buffer.add_char buf (L.raw_next t);
      go ()
    end
  in
  go ();
  flush ();
  List.rev !parts

and parse_raw_entity t =
  ignore (L.raw_next t);
  (* consumed '&' *)
  if L.raw_skip t "#" then begin
    let hex = L.raw_skip t "x" in
    let buf = Buffer.create 4 in
    let ok c =
      if hex then
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      else c >= '0' && c <= '9'
    in
    while ok (L.raw_peek t) do
      Buffer.add_char buf (L.raw_next t)
    done;
    if not (L.raw_skip t ";") then err t "expected ';' in character reference";
    let code =
      match int_of_string_opt ((if hex then "0x" else "") ^ Buffer.contents buf) with
      | Some c when c >= 0 && c <= 0x10FFFF -> c
      | _ -> err t "character reference out of range"
    in
    if code < 0x80 then String.make 1 (Char.chr code)
    else
      (* Multi-byte code points are rare in our corpus; UTF-8 encode. *)
      let b = Buffer.create 4 in
      (if code < 0x800 then begin
         Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
         Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
       end
       else begin
         Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
         Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
       end);
      Buffer.contents b
  end
  else begin
    let name = L.raw_name t in
    if not (L.raw_skip t ";") then err t "expected ';' after entity name";
    match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "quot" -> "\""
    | "apos" -> "'"
    | other -> err t "unknown entity &%s;" other
  end

and parse_element_content t tag =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  (* Default boundary-space policy is strip: whitespace-only literal text
     between constructs is discarded — unless it came from a CDATA section
     or a character reference, which make it deliberate. *)
  let forced = ref false in
  let is_ws s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s in
  let flush () =
    if Buffer.length buf > 0 then begin
      let text = Buffer.contents buf in
      if !forced || not (is_ws text) then
        parts := E_text (E_string text) :: !parts;
      Buffer.clear buf;
      forced := false
    end
  in
  let rec go () =
    if L.raw_looking_at t "</" then begin
      ignore (L.raw_skip t "</");
      let close = L.raw_name t in
      if close <> tag then err t "mismatched </%s>; expected </%s>" close tag;
      L.raw_skip_ws t;
      if not (L.raw_skip t ">") then err t "expected '>' in closing tag"
    end
    else if L.raw_peek t = '\000' then err t "unterminated element <%s>" tag
    else if L.raw_looking_at t "<!--" then begin
      flush ();
      ignore (L.raw_skip t "<!--");
      let cbuf = Buffer.create 16 in
      while not (L.raw_looking_at t "-->") do
        Buffer.add_char cbuf (L.raw_next t)
      done;
      ignore (L.raw_skip t "-->");
      parts := E_comment_c (E_string (Buffer.contents cbuf)) :: !parts;
      go ()
    end
    else if L.raw_looking_at t "<![CDATA[" then begin
      ignore (L.raw_skip t "<![CDATA[");
      while not (L.raw_looking_at t "]]>") do
        Buffer.add_char buf (L.raw_next t)
      done;
      ignore (L.raw_skip t "]]>");
      forced := true;
      go ()
    end
    else if L.raw_peek t = '<' then begin
      flush ();
      ignore (L.raw_next t);
      parts := parse_direct_element_raw t :: !parts;
      go ()
    end
    else if L.raw_looking_at t "{{" then begin
      ignore (L.raw_skip t "{{");
      Buffer.add_char buf '{';
      go ()
    end
    else if L.raw_looking_at t "}}" then begin
      ignore (L.raw_skip t "}}");
      Buffer.add_char buf '}';
      go ()
    end
    else if L.raw_peek t = '{' then begin
      ignore (L.raw_next t);
      flush ();
      let e = parse_expr t in
      L.expect t L.T_rbrace;
      parts := e :: !parts;
      go ()
    end
    else if L.raw_peek t = '&' then begin
      Buffer.add_string buf (parse_raw_entity t);
      forced := true;
      go ()
    end
    else begin
      Buffer.add_char buf (L.raw_next t);
      go ()
    end
  in
  go ();
  flush ();
  List.rev !parts

(* ------------------------------------------------------------------ *)
(* Prolog and program                                                   *)
(* ------------------------------------------------------------------ *)

let parse_prolog t =
  let decls = ref [] in
  (* Optional version declaration. *)
  (match (L.peek t, L.peek2 t) with
  | L.T_name "xquery", L.T_name "version" ->
    ignore (L.next t);
    ignore (L.next t);
    (match L.next t with
    | L.T_string _ -> ()
    | tok -> err t "expected a version string, found %s" (L.token_to_string tok));
    L.expect t L.T_semi
  | _ -> ());
  let rec loop () =
    match (L.peek t, L.peek2 t) with
    | L.T_name "declare", L.T_name "namespace" ->
      ignore (L.next t);
      ignore (L.next t);
      let prefix = match L.next t with L.T_name n -> n | _ -> err t "expected a prefix" in
      L.expect t L.T_eq;
      let uri =
        match L.next t with L.T_string s -> s | _ -> err t "expected a URI string"
      in
      L.expect t L.T_semi;
      decls := Declare_namespace (prefix, uri) :: !decls;
      loop ()
    | L.T_name "declare", L.T_name "variable" ->
      ignore (L.next t);
      ignore (L.next t);
      let vname = match L.next t with L.T_var v -> v | _ -> err t "expected $var" in
      let vtype =
        if L.peek t = L.T_name "as" then begin
          ignore (L.next t);
          Some (parse_sequence_type t)
        end
        else None
      in
      L.expect t L.T_assign;
      let init = parse_expr_single t in
      L.expect t L.T_semi;
      decls := Declare_variable { vname; vtype; init } :: !decls;
      loop ()
    | L.T_name "declare", L.T_name "function" ->
      ignore (L.next t);
      ignore (L.next t);
      let fname = match L.next t with L.T_name n -> n | _ -> err t "expected a name" in
      L.expect t L.T_lparen;
      let params = ref [] in
      if L.peek t <> L.T_rparen then begin
        let rec one () =
          let pname = match L.next t with L.T_var v -> v | _ -> err t "expected $param" in
          let ptype =
            if L.peek t = L.T_name "as" then begin
              ignore (L.next t);
              Some (parse_sequence_type t)
            end
            else None
          in
          params := (pname, ptype) :: !params;
          if L.peek t = L.T_comma then begin
            ignore (L.next t);
            one ()
          end
        in
        one ()
      end;
      L.expect t L.T_rparen;
      let return_type =
        if L.peek t = L.T_name "as" then begin
          ignore (L.next t);
          Some (parse_sequence_type t)
        end
        else None
      in
      L.expect t L.T_lbrace;
      let body = parse_expr t in
      L.expect t L.T_rbrace;
      L.expect t L.T_semi;
      decls :=
        Declare_function { fname; params = List.rev !params; return_type; body }
        :: !decls;
      loop ()
    | _ -> ()
  in
  loop ();
  List.rev !decls

let parse_program src =
  let t = L.make src in
  let prolog = parse_prolog t in
  let body = parse_expr t in
  (match L.peek t with
  | L.T_eof -> ()
  | tok -> err t "unexpected %s after the query body" (L.token_to_string tok));
  { prolog; body }

let parse_expression src =
  let t = L.make src in
  let e = parse_expr t in
  (match L.peek t with
  | L.T_eof -> ()
  | tok -> err t "unexpected %s after the expression" (L.token_to_string tok));
  e
