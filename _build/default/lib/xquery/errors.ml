exception Error of { code : string; message : string }

let raise_error code fmt =
  Format.kasprintf (fun message -> raise (Error { code = "err:" ^ code; message })) fmt

let code_of = function Error { code; _ } -> Some code | _ -> None

let xpst0003 = "XPST0003"
let xpst0008 = "XPST0008"
let xpst0017 = "XPST0017"
let xpdy0002 = "XPDY0002"
let xpty0004 = "XPTY0004"
let xpty0018 = "XPTY0018"
let xpty0019 = "XPTY0019"
let forg0001 = "FORG0001"
let forg0006 = "FORG0006"
let foar0001 = "FOAR0001"
let foca0002 = "FOCA0002"
let fons0004 = "FONS0004"
let xqty0024 = "XQTY0024"
let xqdy0025 = "XQDY0025"
let foer0000 = "FOER0000"
let fodc0002 = "FODC0002"
let forx0002 = "FORX0002"
