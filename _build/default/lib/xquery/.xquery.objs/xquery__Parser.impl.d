lib/xquery/parser.pp.ml: Ast Buffer Char Lexer List String Stype
