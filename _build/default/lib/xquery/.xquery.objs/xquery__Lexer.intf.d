lib/xquery/lexer.pp.mli: Format
