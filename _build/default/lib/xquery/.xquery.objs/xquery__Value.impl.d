lib/xquery/value.pp.ml: Errors Float Format List Printf String Xml_base
