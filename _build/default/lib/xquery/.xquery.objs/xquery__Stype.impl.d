lib/xquery/stype.pp.ml: List Ppx_deriving_runtime Printf Value Xml_base
