lib/xquery/optimizer.pp.ml: Ast Context List
