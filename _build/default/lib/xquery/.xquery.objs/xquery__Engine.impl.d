lib/xquery/engine.pp.ml: Ast Context Eval Functions Optimizer Parser Static_check Value
