lib/xquery/optimizer.pp.mli: Ast
