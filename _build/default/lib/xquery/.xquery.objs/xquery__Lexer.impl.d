lib/xquery/lexer.pp.ml: Buffer Errors Format List Printf String
