lib/xquery/functions.pp.ml: Buffer Char Context Errors Float List Printf Re String Value Xml_base
