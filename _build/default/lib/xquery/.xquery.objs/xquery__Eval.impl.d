lib/xquery/eval.pp.ml: Ast Context Errors Float List String Stype Value Xml_base
