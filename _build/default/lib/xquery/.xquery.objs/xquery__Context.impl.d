lib/xquery/context.pp.ml: Ast Errors Hashtbl Map String Stype Value Xml_base
