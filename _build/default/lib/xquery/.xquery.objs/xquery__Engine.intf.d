lib/xquery/engine.pp.mli: Ast Context Optimizer Value Xml_base
