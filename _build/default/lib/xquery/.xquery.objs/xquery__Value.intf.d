lib/xquery/value.pp.mli: Format Xml_base
