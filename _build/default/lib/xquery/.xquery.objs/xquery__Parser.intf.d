lib/xquery/parser.pp.mli: Ast
