lib/xquery/unparse.pp.mli: Ast
