lib/xquery/ast.pp.ml: List Ppx_deriving_runtime Stype
