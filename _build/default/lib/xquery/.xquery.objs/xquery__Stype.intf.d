lib/xquery/stype.pp.mli: Format Value
