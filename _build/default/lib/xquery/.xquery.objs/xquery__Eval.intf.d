lib/xquery/eval.pp.mli: Ast Context Value Xml_base
