lib/xquery/errors.pp.mli: Format
