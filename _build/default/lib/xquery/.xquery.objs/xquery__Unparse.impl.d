lib/xquery/unparse.pp.ml: Ast Buffer Float List Printf String Stype Value
