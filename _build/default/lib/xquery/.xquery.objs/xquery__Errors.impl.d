lib/xquery/errors.pp.ml: Format
