lib/xquery/functions.pp.mli: Context Value
