lib/xquery/static_check.pp.ml: Ast Context Errors Functions Hashtbl List
