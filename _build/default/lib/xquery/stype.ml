module N = Xml_base.Node

type occurrence = Exactly_one | Zero_or_one | Zero_or_more | One_or_more
[@@deriving show { with_path = false }, eq]

type item_type =
  | It_item
  | It_atomic of string
  | It_node
  | It_element of string option
  | It_attribute of string option
  | It_text
  | It_document
[@@deriving show { with_path = false }, eq]

type t = Empty_sequence | Seq of item_type * occurrence
[@@deriving show { with_path = false }, eq]

let atomic_matches (a : Value.atomic) tyname =
  match (tyname, a) with
  | "xs:anyAtomicType", _ -> true
  | "xs:integer", Value.A_int _ -> true
  | ("xs:double" | "xs:decimal" | "xs:float"), (Value.A_int _ | Value.A_double _) -> true
  | "xs:string", Value.A_string _ -> true
  | "xs:boolean", Value.A_bool _ -> true
  | "xs:untypedAtomic", Value.A_untyped _ -> true
  | _ -> false

let item_matches (i : Value.item) it =
  match (it, i) with
  | It_item, _ -> true
  | It_atomic ty, Value.Atomic a -> atomic_matches a ty
  | It_atomic _, Value.Node _ -> false
  | (It_node | It_element _ | It_attribute _ | It_text | It_document), Value.Atomic _ ->
    false
  | It_node, Value.Node _ -> true
  | It_element name, Value.Node n ->
    N.is_element n && (match name with None -> true | Some nm -> N.name n = nm)
  | It_attribute name, Value.Node n ->
    N.is_attribute n && (match name with None -> true | Some nm -> N.name n = nm)
  | It_text, Value.Node n -> N.kind n = N.Text
  | It_document, Value.Node n -> N.kind n = N.Document

let matches (s : Value.sequence) t =
  match t with
  | Empty_sequence -> s = []
  | Seq (it, occ) ->
    let len_ok =
      match occ with
      | Exactly_one -> List.length s = 1
      | Zero_or_one -> List.length s <= 1
      | Zero_or_more -> true
      | One_or_more -> s <> []
    in
    len_ok && List.for_all (fun i -> item_matches i it) s

let item_type_to_string = function
  | It_item -> "item()"
  | It_atomic ty -> ty
  | It_node -> "node()"
  | It_element None -> "element()"
  | It_element (Some n) -> Printf.sprintf "element(%s)" n
  | It_attribute None -> "attribute()"
  | It_attribute (Some n) -> Printf.sprintf "attribute(%s)" n
  | It_text -> "text()"
  | It_document -> "document-node()"

let to_string = function
  | Empty_sequence -> "empty-sequence()"
  | Seq (it, occ) ->
    item_type_to_string it
    ^ (match occ with
      | Exactly_one -> ""
      | Zero_or_one -> "?"
      | Zero_or_more -> "*"
      | One_or_more -> "+")
