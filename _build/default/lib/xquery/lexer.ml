type token =
  | T_int of int
  | T_double of float
  | T_string of string
  | T_name of string
  | T_var of string
  | T_lparen
  | T_rparen
  | T_lbracket
  | T_rbracket
  | T_lbrace
  | T_rbrace
  | T_comma
  | T_semi
  | T_at
  | T_slash
  | T_dslash
  | T_dot
  | T_dotdot
  | T_star
  | T_plus
  | T_minus
  | T_pipe
  | T_eq
  | T_ne
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_ll
  | T_gg
  | T_assign
  | T_question
  | T_axis_sep
  | T_eof

let token_to_string = function
  | T_int n -> string_of_int n
  | T_double f -> string_of_float f
  | T_string s -> Printf.sprintf "%S" s
  | T_name n -> n
  | T_var v -> "$" ^ v
  | T_lparen -> "("
  | T_rparen -> ")"
  | T_lbracket -> "["
  | T_rbracket -> "]"
  | T_lbrace -> "{"
  | T_rbrace -> "}"
  | T_comma -> ","
  | T_semi -> ";"
  | T_at -> "@"
  | T_slash -> "/"
  | T_dslash -> "//"
  | T_dot -> "."
  | T_dotdot -> ".."
  | T_star -> "*"
  | T_plus -> "+"
  | T_minus -> "-"
  | T_pipe -> "|"
  | T_eq -> "="
  | T_ne -> "!="
  | T_lt -> "<"
  | T_le -> "<="
  | T_gt -> ">"
  | T_ge -> ">="
  | T_ll -> "<<"
  | T_gg -> ">>"
  | T_assign -> ":="
  | T_question -> "?"
  | T_axis_sep -> "::"
  | T_eof -> "end of query"

type cached = {
  tok : token;
  start_pos : int; (* after leading trivia *)
  start_line : int;
  start_col : int;
  end_pos : int;
  end_line : int;
  end_col : int;
}

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable cache : cached list; (* at most two entries *)
}

let make src = { src; pos = 0; line = 1; col = 1; cache = [] }

let line_col t =
  match t.cache with
  | _ :: _ -> (t.line, t.col) (* approximate: end of peeked token *)
  | [] -> (t.line, t.col)

let syntax_error t fmt =
  let line, col = line_col t in
  Format.kasprintf
    (fun message ->
      raise
        (Errors.Error
           {
             code = "err:" ^ Errors.xpst0003;
             message = Printf.sprintf "line %d, col %d: %s" line col message;
           }))
    fmt

let eof_raw t = t.pos >= String.length t.src
let cur t = if eof_raw t then '\000' else t.src.[t.pos]

let cur2 t =
  if t.pos + 1 >= String.length t.src then '\000' else t.src.[t.pos + 1]

let advance t =
  if not (eof_raw t) then begin
    (if t.src.[t.pos] = '\n' then begin
       t.line <- t.line + 1;
       t.col <- 1
     end
     else t.col <- t.col + 1);
    t.pos <- t.pos + 1
  end

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_digit c = c >= '0' && c <= '9'
let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

(* Skip whitespace and (: nested comments :). *)
let rec skip_trivia t =
  if is_space (cur t) then begin
    advance t;
    skip_trivia t
  end
  else if cur t = '(' && cur2 t = ':' then begin
    advance t;
    advance t;
    let depth = ref 1 in
    while !depth > 0 do
      if eof_raw t then syntax_error t "unterminated (: comment :)"
      else if cur t = '(' && cur2 t = ':' then begin
        advance t;
        advance t;
        incr depth
      end
      else if cur t = ':' && cur2 t = ')' then begin
        advance t;
        advance t;
        decr depth
      end
      else advance t
    done;
    skip_trivia t
  end

(* A name: NCName possibly followed by :NCName (but not ::, the axis
   separator). Dashes and dots are name characters — the paper's $n-1. *)
let lex_name t =
  let start = t.pos in
  while is_name_char (cur t) do
    advance t
  done;
  if cur t = ':' && is_name_start (cur2 t) then begin
    advance t;
    while is_name_char (cur t) do
      advance t
    done
  end;
  String.sub t.src start (t.pos - start)

let lex_number t =
  let start = t.pos in
  while is_digit (cur t) do
    advance t
  done;
  let is_double = ref false in
  if cur t = '.' && is_digit (cur2 t) then begin
    is_double := true;
    advance t;
    while is_digit (cur t) do
      advance t
    done
  end;
  if (cur t = 'e' || cur t = 'E')
     && (is_digit (cur2 t)
        || ((cur2 t = '+' || cur2 t = '-')
           && t.pos + 2 < String.length t.src
           && is_digit t.src.[t.pos + 2]))
  then begin
    is_double := true;
    advance t;
    if cur t = '+' || cur t = '-' then advance t;
    while is_digit (cur t) do
      advance t
    done
  end;
  let text = String.sub t.src start (t.pos - start) in
  if !is_double then T_double (float_of_string text)
  else
    match int_of_string_opt text with
    | Some n -> T_int n
    | None -> T_double (float_of_string text)

let lex_string t quote =
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof_raw t then syntax_error t "unterminated string literal"
    else if cur t = quote then begin
      advance t;
      (* Doubled quote is an escaped quote. *)
      if cur t = quote then begin
        Buffer.add_char buf quote;
        advance t;
        go ()
      end
    end
    else if cur t = '&' then begin
      (* Predefined entity references are valid in XQuery string literals. *)
      advance t;
      let name = lex_name t in
      if cur t <> ';' then syntax_error t "expected ';' after entity reference";
      advance t;
      (match name with
      | "lt" -> Buffer.add_char buf '<'
      | "gt" -> Buffer.add_char buf '>'
      | "amp" -> Buffer.add_char buf '&'
      | "quot" -> Buffer.add_char buf '"'
      | "apos" -> Buffer.add_char buf '\''
      | other -> syntax_error t "unknown entity &%s;" other);
      go ()
    end
    else begin
      Buffer.add_char buf (cur t);
      advance t;
      go ()
    end
  in
  go ();
  T_string (Buffer.contents buf)

let lex_token t =
  skip_trivia t;
  if eof_raw t then T_eof
  else
    let c = cur t in
    if is_digit c then lex_number t
    else if c = '.' && is_digit (cur2 t) then lex_number t
    else if is_name_start c then T_name (lex_name t)
    else if c = '"' || c = '\'' then lex_string t c
    else begin
      advance t;
      match c with
      | '$' ->
        if not (is_name_start (cur t)) then syntax_error t "expected a name after '$'";
        T_var (lex_name t)
      | '(' -> T_lparen
      | ')' -> T_rparen
      | '[' -> T_lbracket
      | ']' -> T_rbracket
      | '{' -> T_lbrace
      | '}' -> T_rbrace
      | ',' -> T_comma
      | ';' -> T_semi
      | '@' -> T_at
      | '?' -> T_question
      | '|' -> T_pipe
      | '+' -> T_plus
      | '-' -> T_minus
      | '*' -> T_star
      | '=' -> T_eq
      | '/' -> if cur t = '/' then (advance t; T_dslash) else T_slash
      | '.' -> if cur t = '.' then (advance t; T_dotdot) else T_dot
      | '!' ->
        if cur t = '=' then (advance t; T_ne)
        else syntax_error t "unexpected '!'"
      | '<' ->
        if cur t = '=' then (advance t; T_le)
        else if cur t = '<' then (advance t; T_ll)
        else T_lt
      | '>' ->
        if cur t = '=' then (advance t; T_ge)
        else if cur t = '>' then (advance t; T_gg)
        else T_gt
      | ':' ->
        if cur t = '=' then (advance t; T_assign)
        else if cur t = ':' then (advance t; T_axis_sep)
        else syntax_error t "unexpected ':'"
      | c -> syntax_error t "unexpected character %C" c
    end

let fill t n =
  while List.length t.cache < n do
    (* Record the pre-trivia position so a cache flush can rewind without
       losing whitespace, which is significant in XML content mode. *)
    let start_pos = t.pos and start_line = t.line and start_col = t.col in
    let tok = lex_token t in
    t.cache <-
      t.cache
      @ [
          {
            tok;
            start_pos;
            start_line;
            start_col;
            end_pos = t.pos;
            end_line = t.line;
            end_col = t.col;
          };
        ]
  done

let peek t =
  fill t 1;
  (List.hd t.cache).tok

let peek2 t =
  fill t 2;
  (List.nth t.cache 1).tok

let next t =
  fill t 1;
  match t.cache with
  | entry :: rest ->
    t.cache <- rest;
    entry.tok
  | [] -> assert false

let expect t tok =
  let got = next t in
  if got <> tok then
    syntax_error t "expected %s, found %s" (token_to_string tok) (token_to_string got)

let char_after_peeked t =
  fill t 1;
  let entry = List.hd t.cache in
  if entry.end_pos >= String.length t.src then '\000' else t.src.[entry.end_pos]

(* Raw mode. A peeked-but-unconsumed token was lexed under expression rules;
   rewind to its start so the raw reader sees the original characters. *)
let flush_cache t =
  match t.cache with
  | [] -> ()
  | entry :: _ ->
    t.pos <- entry.start_pos;
    t.line <- entry.start_line;
    t.col <- entry.start_col;
    t.cache <- []

let assert_raw t = flush_cache t

let raw_peek t =
  assert_raw t;
  cur t

let raw_next t =
  assert_raw t;
  let c = cur t in
  if eof_raw t then syntax_error t "unexpected end of input in constructor";
  advance t;
  c

let raw_looking_at t s =
  assert_raw t;
  let n = String.length s in
  t.pos + n <= String.length t.src && String.sub t.src t.pos n = s

let raw_skip t s =
  if raw_looking_at t s then begin
    String.iter (fun _ -> advance t) s;
    true
  end
  else false

let raw_skip_ws t =
  assert_raw t;
  while is_space (cur t) do
    advance t
  done

let raw_name t =
  assert_raw t;
  if not (is_name_start (cur t)) then
    syntax_error t "expected a name, found %C" (cur t);
  let start = t.pos in
  while is_name_char (cur t) || cur t = ':' do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let at_eof t = peek t = T_eof
