(** Sequence types — the slice of the XQuery type system used by function
    signatures ([declare function f($x as xs:string) as element()*]).

    The paper used XQuery in untyped mode after type annotations
    "metastatized"; we support both: annotations are parsed and, when the
    engine runs in typed mode, enforced dynamically at call and return. *)

type occurrence =
  | Exactly_one
  | Zero_or_one (* ? *)
  | Zero_or_more (* * *)
  | One_or_more (* + *)

type item_type =
  | It_item (* item() *)
  | It_atomic of string (* xs:integer, xs:string, ... (by name) *)
  | It_node (* node() *)
  | It_element of string option (* element(), element(n) *)
  | It_attribute of string option
  | It_text
  | It_document

type t = Empty_sequence | Seq of item_type * occurrence

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val matches : Value.sequence -> t -> bool
(** Dynamic conformance. Atomic types match by name with the numeric
    promotion ladder (xs:integer values match xs:double and xs:decimal
    annotations); untypedAtomic matches only xs:untypedAtomic and
    xs:anyAtomicType. *)

val to_string : t -> string
