(** The XQuery lexer.

    Tokens are produced on demand so the parser can drop to raw character
    mode inside direct element constructors, where XML content rules apply
    rather than expression rules.

    The lexical quirks the paper calls out live here:
    - ['-'] is a name character, so [$n-1] is one variable named [n-1];
      subtraction needs whitespace or parentheses around the minus;
    - an unprefixed name is just a name token — the parser will read it as
      a child step, never as a variable;
    - [(: ... :)] comments nest. *)

type token =
  | T_int of int
  | T_double of float
  | T_string of string
  | T_name of string (* NCName or prefix:local *)
  | T_var of string (* $name, without the $ *)
  | T_lparen
  | T_rparen
  | T_lbracket
  | T_rbracket
  | T_lbrace
  | T_rbrace
  | T_comma
  | T_semi
  | T_at
  | T_slash
  | T_dslash
  | T_dot
  | T_dotdot
  | T_star
  | T_plus
  | T_minus
  | T_pipe
  | T_eq
  | T_ne (* != *)
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_ll (* << *)
  | T_gg (* >> *)
  | T_assign (* := *)
  | T_question
  | T_axis_sep (* :: *)
  | T_eof

val token_to_string : token -> string

type t

val make : string -> t
val peek : t -> token
val peek2 : t -> token
val next : t -> token
val expect : t -> token -> unit
(** @raise Errors.Error XPST0003 with position info on mismatch *)

val line_col : t -> int * int
(** Position of the next token (for error messages). *)

val syntax_error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Raw mode}

    Only legal when no tokens are cached beyond what the operations below
    consume; the parser guarantees this by construction. *)

val char_after_peeked : t -> char
(** The source character immediately after the currently peeked token
    (['\000'] at end of input). Used to tell [<tag] from [< operand]:
    a direct constructor requires a name character hard against the [<]. *)

val raw_peek : t -> char
val raw_next : t -> char
val raw_looking_at : t -> string -> bool
val raw_skip : t -> string -> bool
val raw_skip_ws : t -> unit
val raw_name : t -> string
(** Read an XML name at the raw position. *)

val at_eof : t -> bool
