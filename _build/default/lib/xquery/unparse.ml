(* Render an AST back to XQuery source. The output is fully parenthesized
   where precedence could bite, so [parse (unparse e)] is structurally
   identical to [e] — a property the test suite checks on random
   expressions. Also used by tooling that wants to show compiled or
   optimized queries. *)

open Ast

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\"\""
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let arith_op = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Idiv -> "idiv"
  | Mod -> "mod"

let general_op = function Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
let value_op = function Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
let node_op = function Is -> "is" | Precedes -> "<<" | Follows -> ">>"

let set_op = function Union -> "union" | Intersect -> "intersect" | Except -> "except"

let cast_target = function
  | To_int -> "xs:integer"
  | To_double -> "xs:double"
  | To_string -> "xs:string"
  | To_bool -> "xs:boolean"

let node_test = function
  | Name_test n -> n
  | Wildcard -> "*"
  | Kind_node -> "node()"
  | Kind_text -> "text()"
  | Kind_comment -> "comment()"
  | Kind_pi None -> "processing-instruction()"
  | Kind_pi (Some t) -> Printf.sprintf "processing-instruction(%s)" t
  | Kind_element None -> "element()"
  | Kind_element (Some n) -> Printf.sprintf "element(%s)" n
  | Kind_attribute None -> "attribute()"
  | Kind_attribute (Some n) -> Printf.sprintf "attribute(%s)" n
  | Kind_document -> "document-node()"

let rec expr (e : Ast.expr) : string =
  match e with
  | E_int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | E_double f ->
    let s = Value.string_of_atomic (Value.A_double f) in
    (* NaN/INF have no literal; fall back to number(). *)
    if s = "NaN" then "number(\"NaN\")"
    else if s = "INF" then "number(\"INF\")"
    else if s = "-INF" then "(number(\"-INF\"))"
    else if Float.is_integer f then Printf.sprintf "%.1f" f
    else if f < 0.0 then Printf.sprintf "(%s)" s
    else s
  | E_string s -> quote_string s
  | E_var v -> "$" ^ v
  | E_context_item -> "."
  | E_seq es -> "(" ^ String.concat ", " (List.map expr es) ^ ")"
  | E_range (a, b) -> paren (expr a ^ " to " ^ expr b)
  | E_arith (op, a, b) -> paren (expr a ^ " " ^ arith_op op ^ " " ^ expr b)
  | E_neg a -> paren ("-" ^ expr a)
  | E_general_cmp (op, a, b) -> paren (expr a ^ " " ^ general_op op ^ " " ^ expr b)
  | E_value_cmp (op, a, b) -> paren (expr a ^ " " ^ value_op op ^ " " ^ expr b)
  | E_node_cmp (op, a, b) -> paren (expr a ^ " " ^ node_op op ^ " " ^ expr b)
  | E_and (a, b) -> paren (expr a ^ " and " ^ expr b)
  | E_or (a, b) -> paren (expr a ^ " or " ^ expr b)
  | E_set_op (op, a, b) -> paren (expr a ^ " " ^ set_op op ^ " " ^ expr b)
  | E_if (c, t, f) ->
    Printf.sprintf "(if (%s) then %s else %s)" (expr c) (expr t) (expr f)
  | E_flwor f -> paren (flwor f)
  | E_quantified (q, bindings, body) ->
    let kw = match q with Some_q -> "some" | Every_q -> "every" in
    Printf.sprintf "(%s %s satisfies %s)" kw
      (String.concat ", "
         (List.map (fun (v, src) -> Printf.sprintf "$%s in %s" v (expr src)) bindings))
      (expr body)
  | E_path (a, b) -> paren (expr a ^ "/" ^ expr b)
  | E_root -> "(/)"
  | E_step (Child, t) -> "child::" ^ node_test t
  | E_step (axis, t) -> Ast.axis_name axis ^ "::" ^ node_test t
  | E_filter (a, p) -> paren (expr a) ^ "[" ^ expr p ^ "]"
  | E_call (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr args))
  | E_cast (t, a) -> paren (expr a ^ " cast as " ^ cast_target t)
  | E_castable (t, a) -> paren (expr a ^ " castable as " ^ cast_target t)
  | E_instance_of (a, ty) -> paren (expr a ^ " instance of " ^ Stype.to_string ty)
  | E_treat (a, ty) -> paren (expr a ^ " treat as " ^ Stype.to_string ty)
  | E_elem (name, content) ->
    Printf.sprintf "element %s {%s}" (name_spec name)
      (String.concat ", " (List.map expr content))
  | E_attr (name, content) ->
    (* AVT parts were desugared by the parser; re-emit as a computed
       attribute whose value is the string-concatenation of the parts. *)
    Printf.sprintf "attribute %s {%s}" (name_spec name)
      (match content with
      | [] -> "\"\""
      | [ single ] -> expr single
      | parts ->
        "concat("
        ^ String.concat ", " (List.map (fun p -> "string((" ^ expr p ^ ", \"\")[1])") parts)
        ^ ")")
  | E_text a -> Printf.sprintf "text {%s}" (expr a)
  | E_comment_c a -> Printf.sprintf "comment {%s}" (expr a)
  | E_doc content ->
    Printf.sprintf "document {%s}" (String.concat ", " (List.map expr content))
  | E_typeswitch { operand; cases; default_var; default } ->
    Printf.sprintf "(typeswitch (%s) %s default %sreturn %s)" (expr operand)
      (String.concat " "
         (List.map
            (fun c ->
              Printf.sprintf "case %s%s return %s"
                (match c.case_var with Some v -> "$" ^ v ^ " as " | None -> "")
                (Stype.to_string c.case_type) (expr c.case_return))
            cases))
      (match default_var with Some v -> "$" ^ v ^ " " | None -> "")
      (expr default)

and paren s = "(" ^ s ^ ")"

and name_spec = function
  | Static_name n -> n
  | Computed_name e -> "{" ^ expr e ^ "}"

and flwor { clauses; order_by; return } =
  if clauses = [] && order_by = [] then expr return
  else flwor_nonempty { clauses; order_by; return }

and flwor_nonempty { clauses; order_by; return } =
  let clause = function
    | For { var; var_type; pos_var; source } ->
      Printf.sprintf "for $%s%s%s in %s" var
        (match var_type with Some t -> " as " ^ Stype.to_string t | None -> "")
        (match pos_var with Some pv -> " at $" ^ pv | None -> "")
        (expr source)
    | Let { var; var_type; value } ->
      Printf.sprintf "let $%s%s := %s" var
        (match var_type with Some t -> " as " ^ Stype.to_string t | None -> "")
        (expr value)
    | Where cond -> "where " ^ expr cond
  in
  let order =
    if order_by = [] then ""
    else
      " order by "
      ^ String.concat ", "
          (List.map
             (fun spec ->
               expr spec.key
               ^ (if spec.descending then " descending" else "")
               ^ if spec.empty_greatest then " empty greatest" else "")
             order_by)
  in
  String.concat " " (List.map clause clauses) ^ order ^ " return " ^ expr return

let prolog_decl = function
  | Declare_function { fname; params; return_type; body } ->
    Printf.sprintf "declare function %s(%s)%s { %s };" fname
      (String.concat ", "
         (List.map
            (fun (p, ty) ->
              "$" ^ p ^ match ty with Some t -> " as " ^ Stype.to_string t | None -> "")
            params))
      (match return_type with Some t -> " as " ^ Stype.to_string t | None -> "")
      (expr body)
  | Declare_variable { vname; vtype; init } ->
    Printf.sprintf "declare variable $%s%s := %s;" vname
      (match vtype with Some t -> " as " ^ Stype.to_string t | None -> "")
      (expr init)
  | Declare_namespace (prefix, uri) ->
    Printf.sprintf "declare namespace %s = %s;" prefix (quote_string uri)

let program (p : Ast.program) =
  String.concat "\n" (List.map prolog_decl p.prolog @ [ expr p.body ])
