(* Abstract syntax for the XQuery subset. Direct element constructors are
   desugared by the parser into the computed forms (E_elem / E_attr /
   E_text), with literal text carried as string literals. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Attribute_axis
[@@deriving show { with_path = false }, eq]

type node_test =
  | Name_test of string
  | Wildcard
  | Kind_node (* node() *)
  | Kind_text (* text() *)
  | Kind_comment (* comment() *)
  | Kind_pi of string option (* processing-instruction(), possibly named *)
  | Kind_element of string option (* element(), element(name) *)
  | Kind_attribute of string option
  | Kind_document (* document-node() *)
[@@deriving show { with_path = false }, eq]

type arith = Add | Sub | Mul | Div | Idiv | Mod
[@@deriving show { with_path = false }, eq]

type cmp = Eq | Ne | Lt | Le | Gt | Ge [@@deriving show { with_path = false }, eq]

type node_cmp = Is | Precedes | Follows [@@deriving show { with_path = false }, eq]

type quantifier = Some_q | Every_q [@@deriving show { with_path = false }, eq]

type set_op = Union | Intersect | Except [@@deriving show { with_path = false }, eq]

(* The few cast targets the paper's code used. *)
type cast_target = To_int | To_double | To_string | To_bool
[@@deriving show { with_path = false }, eq]

type expr =
  | E_int of int
  | E_double of float
  | E_string of string
  | E_var of string
  | E_context_item (* . *)
  | E_seq of expr list (* (e1, e2, ...) — flattens at runtime *)
  | E_range of expr * expr (* e1 to e2 *)
  | E_arith of arith * expr * expr
  | E_neg of expr
  | E_general_cmp of cmp * expr * expr (* = != < <= > >= : existential *)
  | E_value_cmp of cmp * expr * expr (* eq ne lt le gt ge : singleton *)
  | E_node_cmp of node_cmp * expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_set_op of set_op * expr * expr
  | E_if of expr * expr * expr
  | E_flwor of flwor
  | E_quantified of quantifier * (string * expr) list * expr
  | E_path of expr * expr
      (* e1/e2 : evaluate e2 once per item of e1 as context item; if all
         results are nodes, sort and dedup in document order *)
  | E_root (* leading "/" : root of the context node's tree *)
  | E_step of axis * node_test
  | E_filter of expr * expr (* e1[e2] — predicate, positional or boolean *)
  | E_call of string * expr list
  | E_cast of cast_target * expr
  | E_castable of cast_target * expr
  | E_instance_of of expr * Stype.t (* e instance of element()* etc. *)
  | E_treat of expr * Stype.t (* e treat as T : identity or XPDY0050 *)
  | E_typeswitch of {
      operand : expr;
      cases : ts_case list;
      default_var : string option;
      default : expr;
    }
  | E_elem of name_spec * expr list
      (* element constructor: content exprs evaluated left to right, then
         attribute folding applied *)
  | E_attr of name_spec * expr list
      (* attribute constructor; value = string-joined content *)
  | E_text of expr
  | E_doc of expr list (* document { ... } *)
  | E_comment_c of expr
[@@deriving show { with_path = false }, eq]

and name_spec = Static_name of string | Computed_name of expr
[@@deriving show { with_path = false }, eq]

and ts_case = { case_var : string option; case_type : Stype.t; case_return : expr }
[@@deriving show { with_path = false }, eq]

and flwor = {
  clauses : clause list;
  order_by : order_spec list;
  return : expr;
}
[@@deriving show { with_path = false }, eq]

and clause =
  | For of {
      var : string;
      var_type : Stype.t option;
      pos_var : string option;
      source : expr;
    }
  | Let of { var : string; var_type : Stype.t option; value : expr }
  | Where of expr
[@@deriving show { with_path = false }, eq]

and order_spec = { key : expr; descending : bool; empty_greatest : bool }
[@@deriving show { with_path = false }, eq]

type prolog_decl =
  | Declare_function of {
      fname : string;
      params : (string * Stype.t option) list;
      return_type : Stype.t option;
      body : expr;
    }
  | Declare_variable of { vname : string; vtype : Stype.t option; init : expr }
  | Declare_namespace of string * string (* accepted and recorded, unused *)

type program = { prolog : prolog_decl list; body : expr }

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Attribute_axis -> "attribute"
