(** The XQuery parser: recursive descent over {!Lexer}, with raw-mode
    switching for direct element constructors.

    Keywords are not reserved — [for], [if], [element] and friends parse
    as path steps unless followed by the tokens that make them
    constructs, exactly as the real grammar requires. All errors are
    {!Errors.Error} with code [err:XPST0003] and a line/column prefix. *)

val parse_program : string -> Ast.program
(** Parse a full query: optional version declaration, prolog
    (namespace/variable/function declarations), then the body. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (no prolog) — the form XSLT select/test
    attributes use. *)
