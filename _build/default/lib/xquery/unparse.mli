(** Render ASTs back to XQuery source.

    Output is parenthesized defensively so [parse (program p)] is a fixed
    point (checked by property tests); direct constructors re-emit in
    computed form. Useful for showing optimized or machine-generated
    queries (e.g. the calculus compiler's output). *)

val expr : Ast.expr -> string
val prolog_decl : Ast.prolog_decl -> string
val program : Ast.program -> string
val quote_string : string -> string
(** An XQuery string literal denoting exactly the given string. *)
