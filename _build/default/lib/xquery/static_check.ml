(* Static analysis: detect unbound variables (XPST0008) and unknown
   functions (XPST0017) at compile time instead of mid-query. Galax of
   the era surfaced these at runtime with little context; a static pass is
   the "more complete XQuery programming environment" the paper wished
   for, so the engine offers it as an option. *)

open Ast

type fenv = {
  known_arities : (string * int) list; (* user-declared functions *)
  builtins : (string * int, Context.func) Hashtbl.t;
}

let err = Errors.raise_error

let function_known fenv name arity =
  let base = Context.normalize_fname name in
  List.mem (base, arity) fenv.known_arities
  || Hashtbl.mem fenv.builtins (base, arity)
  || (base = "concat" && arity >= 2)

let rec check_expr fenv (bound : string list) (e : expr) : unit =
  let c = check_expr fenv bound in
  match e with
  | E_int _ | E_double _ | E_string _ | E_context_item | E_root | E_step _ -> ()
  | E_var v ->
    if not (List.mem v bound) then
      err Errors.xpst0008 "static error: undefined variable $%s" v
  | E_seq es -> List.iter c es
  | E_range (a, b)
  | E_arith (_, a, b)
  | E_general_cmp (_, a, b)
  | E_value_cmp (_, a, b)
  | E_node_cmp (_, a, b)
  | E_and (a, b)
  | E_or (a, b)
  | E_set_op (_, a, b)
  | E_path (a, b)
  | E_filter (a, b) ->
    c a;
    c b
  | E_neg a | E_cast (_, a) | E_castable (_, a) | E_instance_of (a, _)
  | E_treat (a, _) | E_text a | E_comment_c a ->
    c a
  | E_if (x, t, f) ->
    c x;
    c t;
    c f
  | E_typeswitch { operand; cases; default_var; default } ->
    c operand;
    List.iter
      (fun case ->
        let bound =
          match case.case_var with Some v -> v :: bound | None -> bound
        in
        check_expr fenv bound case.case_return)
      cases;
    let bound = match default_var with Some v -> v :: bound | None -> bound in
    check_expr fenv bound default
  | E_call (name, args) ->
    if not (function_known fenv name (List.length args)) then
      err Errors.xpst0017 "static error: unknown function %s/%d" name (List.length args);
    List.iter c args
  | E_elem (name, content) | E_attr (name, content) ->
    (match name with Computed_name e -> c e | Static_name _ -> ());
    List.iter c content
  | E_doc content -> List.iter c content
  | E_quantified (_, bindings, body) ->
    let bound =
      List.fold_left
        (fun bound (v, src) ->
          check_expr fenv bound src;
          v :: bound)
        bound bindings
    in
    check_expr fenv bound body
  | E_flwor { clauses; order_by; return } ->
    let bound =
      List.fold_left
        (fun bound clause ->
          match clause with
          | For { var; pos_var; source; _ } ->
            check_expr fenv bound source;
            let bound = var :: bound in
            (match pos_var with Some pv -> pv :: bound | None -> bound)
          | Let { var; value; _ } ->
            check_expr fenv bound value;
            var :: bound
          | Where cond ->
            check_expr fenv bound cond;
            bound)
        bound clauses
    in
    List.iter (fun spec -> check_expr fenv bound spec.key) order_by;
    check_expr fenv bound return

(* Check a whole program. [external_vars] are the variables the caller
   promises to bind at execution time (the $model of the world). *)
let check_program ?(external_vars = []) (prog : program) : unit =
  let builtins = Hashtbl.create 97 in
  let scratch_env = Context.make_env () in
  Functions.register_all scratch_env;
  Hashtbl.iter (fun k v -> Hashtbl.replace builtins k v) scratch_env.Context.functions;
  let known_arities =
    List.filter_map
      (function
        | Declare_function { fname; params; _ } ->
          Some (Context.normalize_fname fname, List.length params)
        | Declare_variable _ | Declare_namespace _ -> None)
      prog.prolog
  in
  let fenv = { known_arities; builtins } in
  (* Globals come into scope in declaration order; function bodies see all
     globals and their own parameters. *)
  let globals =
    List.fold_left
      (fun globals decl ->
        match decl with
        | Declare_variable { vname; init; _ } ->
          check_expr fenv globals init;
          vname :: globals
        | Declare_function _ | Declare_namespace _ -> globals)
      external_vars prog.prolog
  in
  List.iter
    (function
      | Declare_function { params; body; _ } ->
        check_expr fenv (List.map fst params @ globals) body
      | Declare_variable _ | Declare_namespace _ -> ())
    prog.prolog;
  check_expr fenv globals prog.body
