(** XQuery static and dynamic errors.

    Errors carry a W3C-style code (e.g. ["err:XPTY0004"]) and a message.
    [fn:error()] raises {!Error} with a user code. *)

exception Error of { code : string; message : string }

val raise_error : string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error "XPTY0004" fmt ...] raises {!Error} with the code
    prefixed by ["err:"]. *)

val code_of : exn -> string option
(** The error code if the exception is an XQuery {!Error}. *)

(** Commonly used codes, so call sites cannot typo them. *)

val xpst0003 : string (* syntax *)
val xpst0008 : string (* undefined variable *)
val xpst0017 : string (* unknown function *)
val xpdy0002 : string (* context item undefined *)
val xpty0004 : string (* type error *)
val xpty0018 : string (* path mixes nodes and atomics *)
val xpty0019 : string (* path step on a non-node *)
val forg0001 : string (* invalid cast *)
val forg0006 : string (* invalid argument type / EBV *)
val foar0001 : string (* division by zero *)
val foca0002 : string (* invalid lexical value *)
val fons0004 : string (* unknown namespace *)
val xqty0024 : string (* attribute node after non-attribute content *)
val xqdy0025 : string (* duplicate attribute name *)
val foer0000 : string (* fn:error default *)
val fodc0002 : string (* document retrieval failed *)
val forx0002 : string (* invalid regular expression *)
