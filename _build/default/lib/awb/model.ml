type value = V_string of string | V_int of int | V_bool of bool | V_html of string

let value_to_string = function
  | V_string s | V_html s -> s
  | V_int n -> string_of_int n
  | V_bool b -> if b then "true" else "false"

let value_of_string ty s =
  match ty with
  | Metamodel.P_string -> V_string s
  | Metamodel.P_html -> V_html s
  | Metamodel.P_int -> (
    match int_of_string_opt (String.trim s) with Some n -> V_int n | None -> V_string s)
  | Metamodel.P_bool -> (
    match String.trim s with
    | "true" -> V_bool true
    | "false" -> V_bool false
    | _ -> V_string s)

type node = { id : string; ntype : string; props : (string, value) Hashtbl.t }

type relation = {
  rel_id : string;
  rtype : string;
  source : string;
  target : string;
  rprops : (string, value) Hashtbl.t;
}

type t = {
  mm : Metamodel.t;
  node_tbl : (string, node) Hashtbl.t;
  mutable node_order : node list; (* reverse insertion order *)
  rel_tbl : (string, relation) Hashtbl.t;
  mutable rel_order : relation list;
  (* Adjacency indexes: relation objects by endpoint, in reverse insertion
     order. The UI's always-visible queries need O(degree) neighbour
     lookups, not O(|relations|) scans. *)
  out_idx : (string, relation list) Hashtbl.t;
  in_idx : (string, relation list) Hashtbl.t;
  mutable counter : int;
}

let create mm =
  {
    mm;
    node_tbl = Hashtbl.create 97;
    node_order = [];
    rel_tbl = Hashtbl.create 97;
    rel_order = [];
    out_idx = Hashtbl.create 97;
    in_idx = Hashtbl.create 97;
    counter = 0;
  }

let idx_add tbl key r =
  Hashtbl.replace tbl key (r :: Option.value ~default:[] (Hashtbl.find_opt tbl key))

let idx_remove tbl key rel_id =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some rs -> Hashtbl.replace tbl key (List.filter (fun r -> r.rel_id <> rel_id) rs)

let metamodel t = t.mm

let fresh_id t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s%d" prefix t.counter

let props_table props =
  let tbl = Hashtbl.create 7 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) props;
  tbl

let add_node t ?id ?(props = []) ntype =
  let id = match id with Some i -> i | None -> fresh_id t "N" in
  if Hashtbl.mem t.node_tbl id then
    invalid_arg (Printf.sprintf "Awb.Model: duplicate node id %s" id);
  let n = { id; ntype; props = props_table props } in
  Hashtbl.replace t.node_tbl id n;
  t.node_order <- n :: t.node_order;
  n

let relate t ?id ?(props = []) rtype ~source ~target =
  let rel_id = match id with Some i -> i | None -> fresh_id t "R" in
  if Hashtbl.mem t.rel_tbl rel_id then
    invalid_arg (Printf.sprintf "Awb.Model: duplicate relation id %s" rel_id);
  let r = { rel_id; rtype; source = source.id; target = target.id; rprops = props_table props } in
  Hashtbl.replace t.rel_tbl rel_id r;
  t.rel_order <- r :: t.rel_order;
  idx_add t.out_idx source.id r;
  idx_add t.in_idx target.id r;
  r

let find_node t id = Hashtbl.find_opt t.node_tbl id
let get_node t id = Hashtbl.find t.node_tbl id

let remove_relation t r =
  Hashtbl.remove t.rel_tbl r.rel_id;
  t.rel_order <- List.filter (fun x -> x.rel_id <> r.rel_id) t.rel_order;
  idx_remove t.out_idx r.source r.rel_id;
  idx_remove t.in_idx r.target r.rel_id

let remove_node t n =
  Hashtbl.remove t.node_tbl n.id;
  t.node_order <- List.filter (fun x -> x.id <> n.id) t.node_order;
  let incident = List.filter (fun r -> r.source = n.id || r.target = n.id) t.rel_order in
  List.iter (remove_relation t) incident

let set_prop n k v = Hashtbl.replace n.props k v
let prop n k = Hashtbl.find_opt n.props k

let prop_string n k =
  match prop n k with Some v -> value_to_string v | None -> ""

let label t n =
  let lp = Metamodel.label_property t.mm n.ntype in
  match prop n lp with
  | Some v -> value_to_string v
  | None -> ( match prop n "name" with Some v -> value_to_string v | None -> n.id)

let nodes t = List.rev t.node_order
let relations t = List.rev t.rel_order

let nodes_of_type t ntype =
  List.filter (fun n -> Metamodel.is_subtype t.mm n.ntype ntype) (nodes t)

let out_relations t n =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.out_idx n.id))

let in_relations t n =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.in_idx n.id))

let follow t n ?rtype dir =
  let matches r =
    match rtype with
    | None -> true
    | Some want -> Metamodel.is_subrelation t.mm r.rtype want
  in
  match dir with
  | `Forward ->
    List.filter_map
      (fun r -> if matches r then find_node t r.target else None)
      (out_relations t n)
  | `Backward ->
    List.filter_map
      (fun r -> if matches r then find_node t r.source else None)
      (in_relations t n)

let node_count t = Hashtbl.length t.node_tbl
let relation_count t = Hashtbl.length t.rel_tbl
