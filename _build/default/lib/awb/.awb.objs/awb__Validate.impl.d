lib/awb/validate.ml: Format Hashtbl List Metamodel Model
