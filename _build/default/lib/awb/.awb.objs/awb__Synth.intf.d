lib/awb/synth.mli: Model
