lib/awb/reflect.mli: Metamodel Model
