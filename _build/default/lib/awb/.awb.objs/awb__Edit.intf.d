lib/awb/edit.mli: Model Validate
