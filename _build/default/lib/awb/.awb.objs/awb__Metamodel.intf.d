lib/awb/metamodel.mli:
