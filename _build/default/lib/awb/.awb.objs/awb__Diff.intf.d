lib/awb/diff.mli: Model Xml_base
