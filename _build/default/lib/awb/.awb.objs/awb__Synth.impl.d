lib/awb/synth.ml: Array Model Printf Samples
