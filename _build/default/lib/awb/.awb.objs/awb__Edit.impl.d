lib/awb/edit.ml: Hashtbl List Model Printf Validate
