lib/awb/store.ml: Array Edit Filename List Metamodel Model Option Printf Scanf Sys Xml_base Xml_io
