lib/awb/samples.ml: Metamodel Model Option
