lib/awb/reflect.ml: Hashtbl List Metamodel Model Option Printf
