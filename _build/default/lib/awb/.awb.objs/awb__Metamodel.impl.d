lib/awb/metamodel.ml: Hashtbl List Printf
