lib/awb/xml_io.ml: Hashtbl List Metamodel Model Option Printf String Xml_base
