lib/awb/store.mli: Edit Metamodel Model Xml_base
