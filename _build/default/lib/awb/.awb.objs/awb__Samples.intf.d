lib/awb/samples.mli: Metamodel Model
