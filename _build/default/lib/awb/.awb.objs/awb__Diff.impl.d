lib/awb/diff.ml: Hashtbl List Model Printf Xml_base
