lib/awb/xml_io.mli: Metamodel Model Xml_base
