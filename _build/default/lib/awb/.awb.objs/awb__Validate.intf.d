lib/awb/validate.mli: Format Model
