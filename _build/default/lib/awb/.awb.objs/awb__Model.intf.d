lib/awb/model.mli: Hashtbl Metamodel
