lib/awb/model.ml: Hashtbl List Metamodel Option Printf String
