(** The AWB model exchange format — "AWB saves its models in a nice, clean
    XML format", which the document generator consumes.

    Layout:
    {v
    <awb-model metamodel="it-architecture">
      <node id="N1" type="Person">
        <property name="firstName" kind="string">Alice</property>
      </node>
      <relation id="R1" type="likes" source="N1" target="N2"/>
    </awb-model>
    v} *)

val export : Model.t -> Xml_base.Node.t
(** A document node whose root element is [awb-model]. HTML-valued
    properties are embedded as escaped text (the paper's "convenient for
    the implementation" choice: XML-valued attributes are strings
    internally and converted on output — we keep them as text, which is
    exactly why the project's schema stopped matching its data). *)

val export_string : Model.t -> string

val import : Metamodel.t -> Xml_base.Node.t -> Model.t
(** Rebuild a model from its export. Unknown node/relation types and
    undeclared properties are accepted (advisory metamodel); structural
    problems (missing ids, dangling endpoints) raise [Failure]. *)

val import_string : Metamodel.t -> string -> Model.t

val export_metamodel : Metamodel.t -> Xml_base.Node.t
(** The metamodel as XML, for consumers that must reason about the type
    hierarchy outside the host process (the XQuery document generator):
    {v
    <metamodel name="it-architecture">
      <node-type name="User" parent="Person"/>
      <relation-type name="favors" parent="likes"/>
    </metamodel>
    v} *)
