(** The AWB metamodel: what kinds of entities a workbench instance talks
    about.

    A metamodel declares a single-inheritance hierarchy of node types (each
    with scalar-typed properties), a hierarchy of relations (each with
    advisory source/target type pairs), and a set of advisory expectations
    ("there should be exactly one SystemBeingDesigned node"). Everything is
    suggestive rather than prescriptive: models may deviate, and the rest of
    the system must cope — the design stance the paper's error-handling
    section flows from. *)

type property_type = P_string | P_int | P_bool | P_html

type node_type = {
  nt_name : string;
  nt_parent : string option;
  nt_properties : (string * property_type) list;
  nt_label_property : string; (** which property names instances in UIs *)
}

type relation_type = {
  rt_name : string;
  rt_parent : string option;
  rt_pairs : (string * string) list;
      (** advisory (source type, target type) combinations *)
}

(** Advisory expectations; violations are warnings, never errors. *)
type advisory =
  | Expect_exactly_one of string (** node type *)
  | Expect_property of string * string
      (** instances of the node type should set this property *)
  | Expect_endpoints_declared
      (** relation instances should match a declared source/target pair *)

type t

val create : string -> t
val name : t -> string

val add_node_type :
  t ->
  ?parent:string ->
  ?properties:(string * property_type) list ->
  ?label_property:string ->
  string ->
  t
(** Functional update; raises [Invalid_argument] on duplicate names or an
    unknown parent. The default label property is ["name"]. *)

val add_relation_type :
  t -> ?parent:string -> ?pairs:(string * string) list -> string -> t

val add_advisory : t -> advisory -> t
val advisories : t -> advisory list

val find_node_type : t -> string -> node_type option
val find_relation_type : t -> string -> relation_type option
val node_type_names : t -> string list
val relation_type_names : t -> string list

val is_subtype : t -> string -> string -> bool
(** [is_subtype mm sub super]: reflexive-transitive over node-type
    inheritance. Unknown types are only subtypes of themselves. *)

val is_subrelation : t -> string -> string -> bool

val properties_of : t -> string -> (string * property_type) list
(** Including inherited properties, nearest declaration winning. *)

val label_property : t -> string -> string
(** The label property for a node type, walking up the hierarchy;
    ["name"] for unknown types. *)

val declared_pairs : t -> string -> (string * string) list
(** Source/target pairs for a relation, including inherited ones. *)
