(** An AWB model: a directed, annotated multigraph.

    Nodes have a type and scalar properties; edges ("relation objects")
    have a relation type, source, target, and their own properties. The
    metamodel is advisory: users may add undeclared properties and connect
    nodes the metamodel never anticipated — the model stores whatever it is
    given, and {!Validate} reports deviations as warnings. *)

type value = V_string of string | V_int of int | V_bool of bool | V_html of string

val value_to_string : value -> string
val value_of_string : Metamodel.property_type -> string -> value

type node = {
  id : string;
  ntype : string;
  props : (string, value) Hashtbl.t;
}

type relation = {
  rel_id : string;
  rtype : string;
  source : string; (** node id *)
  target : string; (** node id *)
  rprops : (string, value) Hashtbl.t;
}

type t

val create : Metamodel.t -> t
val metamodel : t -> Metamodel.t

val add_node : t -> ?id:string -> ?props:(string * value) list -> string -> node
(** [add_node m ~props ntype] creates a node. Fresh ids are ["N1"],
    ["N2"], ... Raises [Invalid_argument] on a duplicate id; an
    undeclared node type is accepted (advisory metamodel). *)

val relate :
  t -> ?id:string -> ?props:(string * value) list -> string -> source:node -> target:node -> relation
(** [relate m rtype ~source ~target]. Endpoints may violate the
    metamodel's declared pairs — that is a validation warning, not an
    error here. *)

val find_node : t -> string -> node option
val get_node : t -> string -> node
(** @raise Not_found *)

val remove_node : t -> node -> unit
(** Also removes incident relation objects. *)

val remove_relation : t -> relation -> unit

val set_prop : node -> string -> value -> unit
val prop : node -> string -> value option
val prop_string : node -> string -> string
(** [""] when absent. *)

val label : t -> node -> string
(** The node's label property per the metamodel (default "name"), falling
    back to the id. *)

val nodes : t -> node list
(** In insertion order. *)

val relations : t -> relation list

val nodes_of_type : t -> string -> node list
(** Includes instances of subtypes. *)

val out_relations : t -> node -> relation list
val in_relations : t -> node -> relation list

val follow : t -> node -> ?rtype:string -> [ `Forward | `Backward ] -> node list
(** Neighbors along relation objects; [rtype] filters by relation type
    including subrelations. Duplicates preserved (it is a multigraph). *)

val node_count : t -> int
val relation_count : t -> int
