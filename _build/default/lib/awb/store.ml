type t = { store_dir : string; mm : Metamodel.t }

let open_store ~dir mm =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "%s exists and is not a directory" dir));
  { store_dir = dir; mm }

let dir t = t.store_dir

let snapshot_file t n = Filename.concat t.store_dir (Printf.sprintf "snapshot-%d.xml" n)
let journal_file t = Filename.concat t.store_dir "journal.xml"

(* ------------------------------------------------------------------ *)
(* Command serialization                                               *)
(* ------------------------------------------------------------------ *)

module N = Xml_base.Node

let value_to_attrs v =
  match v with
  | Model.V_string s -> [ N.attribute "kind" "string"; N.attribute "value" s ]
  | Model.V_html s -> [ N.attribute "kind" "html"; N.attribute "value" s ]
  | Model.V_int n -> [ N.attribute "kind" "int"; N.attribute "value" (string_of_int n) ]
  | Model.V_bool b ->
    [ N.attribute "kind" "bool"; N.attribute "value" (if b then "true" else "false") ]

let value_of_elt e =
  let v = Option.value ~default:"" (N.attr e "value") in
  match Option.value ~default:"string" (N.attr e "kind") with
  | "int" -> Model.V_int (int_of_string v)
  | "bool" -> Model.V_bool (v = "true")
  | "html" -> Model.V_html v
  | _ -> Model.V_string v

let command_to_xml (c : Edit.command) =
  match c with
  | Edit.Add_node { id; ntype; props } ->
    N.element "add-node"
      ~attrs:
        (N.attribute "type" ntype
        :: (match id with Some i -> [ N.attribute "id" i ] | None -> []))
      ~children:
        (List.map
           (fun (pname, v) ->
             N.element "prop" ~attrs:(N.attribute "name" pname :: value_to_attrs v))
           props)
  | Edit.Remove_node id -> N.element "remove-node" ~attrs:[ N.attribute "id" id ]
  | Edit.Set_property { node_id; pname; value } ->
    N.element "set-property"
      ~attrs:
        (N.attribute "node" node_id :: N.attribute "name" pname :: value_to_attrs value)
  | Edit.Remove_property { node_id; pname } ->
    N.element "remove-property"
      ~attrs:[ N.attribute "node" node_id; N.attribute "name" pname ]
  | Edit.Relate { id; rtype; source_id; target_id } ->
    N.element "relate"
      ~attrs:
        (N.attribute "type" rtype
         :: N.attribute "source" source_id
         :: N.attribute "target" target_id
        :: (match id with Some i -> [ N.attribute "id" i ] | None -> []))
  | Edit.Unrelate rel_id -> N.element "unrelate" ~attrs:[ N.attribute "id" rel_id ]

let req e a =
  match N.attr e a with
  | Some v -> v
  | None -> failwith (Printf.sprintf "journal: <%s> lacks %s" (N.name e) a)

let command_of_xml e =
  match N.name e with
  | "add-node" ->
    Edit.Add_node
      {
        id = N.attr e "id";
        ntype = req e "type";
        props =
          List.map
            (fun p -> (req p "name", value_of_elt p))
            (N.child_elements_named e "prop");
      }
  | "remove-node" -> Edit.Remove_node (req e "id")
  | "set-property" ->
    Edit.Set_property
      { node_id = req e "node"; pname = req e "name"; value = value_of_elt e }
  | "remove-property" ->
    Edit.Remove_property { node_id = req e "node"; pname = req e "name" }
  | "relate" ->
    Edit.Relate
      {
        id = N.attr e "id";
        rtype = req e "type";
        source_id = req e "source";
        target_id = req e "target";
      }
  | "unrelate" -> Edit.Unrelate (req e "id")
  | other -> failwith (Printf.sprintf "journal: unknown command <%s>" other)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let versions t =
  if not (Sys.file_exists t.store_dir) then []
  else
    Sys.readdir t.store_dir |> Array.to_list
    |> List.filter_map (fun f ->
           match Scanf.sscanf_opt f "snapshot-%d.xml" (fun n -> n) with
           | Some n when snapshot_file t n = Filename.concat t.store_dir f -> Some n
           | _ -> None)
    |> List.sort compare

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let clear_journal t =
  if Sys.file_exists (journal_file t) then Sys.remove (journal_file t)

let save_snapshot t model =
  let next = match List.rev (versions t) with [] -> 1 | n :: _ -> n + 1 in
  write_file (snapshot_file t next) (Xml_io.export_string model);
  clear_journal t;
  next

let load_version t n =
  let path = snapshot_file t n in
  if Sys.file_exists path then
    Some (Xml_io.import t.mm (Xml_base.Parser.parse_string (read_file path)))
  else None

let load_latest t =
  match List.rev (versions t) with
  | [] -> None
  | n :: _ -> Option.map (fun m -> (n, m)) (load_version t n)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let journal t =
  if not (Sys.file_exists (journal_file t)) then []
  else
    let doc = Xml_base.Parser.parse_string (read_file (journal_file t)) in
    let root = List.hd (N.children doc) in
    List.map command_of_xml (N.child_elements root)

let write_journal t commands =
  let doc = N.document [ N.element "journal" ~children:(List.map command_to_xml commands) ] in
  write_file (journal_file t) (Xml_base.Serialize.to_string ~decl:true doc)

let append_command t c = write_journal t (journal t @ [ c ])

let recover t =
  match load_latest t with
  | None -> None
  | Some (_, model) ->
    let session = Edit.start model in
    List.iter
      (fun c -> try Edit.apply session c with Edit.Edit_error _ -> ())
      (journal t);
    Some (Edit.model session)
