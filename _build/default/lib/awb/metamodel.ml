type property_type = P_string | P_int | P_bool | P_html

type node_type = {
  nt_name : string;
  nt_parent : string option;
  nt_properties : (string * property_type) list;
  nt_label_property : string;
}

type relation_type = {
  rt_name : string;
  rt_parent : string option;
  rt_pairs : (string * string) list;
}

type advisory =
  | Expect_exactly_one of string
  | Expect_property of string * string
  | Expect_endpoints_declared

type t = {
  mm_name : string;
  node_types : node_type list; (* declaration order *)
  relation_types : relation_type list;
  mm_advisories : advisory list;
}

let create mm_name = { mm_name; node_types = []; relation_types = []; mm_advisories = [] }
let name t = t.mm_name

let find_node_type t n = List.find_opt (fun nt -> nt.nt_name = n) t.node_types
let find_relation_type t n = List.find_opt (fun rt -> rt.rt_name = n) t.relation_types
let node_type_names t = List.map (fun nt -> nt.nt_name) t.node_types
let relation_type_names t = List.map (fun rt -> rt.rt_name) t.relation_types

let add_node_type t ?parent ?(properties = []) ?(label_property = "name") nt_name =
  if find_node_type t nt_name <> None then
    invalid_arg (Printf.sprintf "Awb.Metamodel: duplicate node type %s" nt_name);
  (match parent with
  | Some p when find_node_type t p = None ->
    invalid_arg (Printf.sprintf "Awb.Metamodel: unknown parent type %s" p)
  | _ -> ());
  {
    t with
    node_types =
      t.node_types
      @ [
          {
            nt_name;
            nt_parent = parent;
            nt_properties = properties;
            nt_label_property = label_property;
          };
        ];
  }

let add_relation_type t ?parent ?(pairs = []) rt_name =
  if find_relation_type t rt_name <> None then
    invalid_arg (Printf.sprintf "Awb.Metamodel: duplicate relation type %s" rt_name);
  (match parent with
  | Some p when find_relation_type t p = None ->
    invalid_arg (Printf.sprintf "Awb.Metamodel: unknown parent relation %s" p)
  | _ -> ());
  {
    t with
    relation_types =
      t.relation_types @ [ { rt_name; rt_parent = parent; rt_pairs = pairs } ];
  }

let add_advisory t a = { t with mm_advisories = t.mm_advisories @ [ a ] }
let advisories t = t.mm_advisories

let rec is_subtype t sub super =
  sub = super
  ||
  match find_node_type t sub with
  | Some { nt_parent = Some p; _ } -> is_subtype t p super
  | _ -> false

let rec is_subrelation t sub super =
  sub = super
  ||
  match find_relation_type t sub with
  | Some { rt_parent = Some p; _ } -> is_subrelation t p super
  | _ -> false

let properties_of t ntype =
  let rec chain n =
    match find_node_type t n with
    | None -> []
    | Some nt -> (
      nt.nt_properties
      @ match nt.nt_parent with None -> [] | Some p -> chain p)
  in
  (* Nearest declaration wins on duplicate names. *)
  let seen = Hashtbl.create 7 in
  List.filter
    (fun (pname, _) ->
      if Hashtbl.mem seen pname then false
      else begin
        Hashtbl.add seen pname ();
        true
      end)
    (chain ntype)

let label_property t ntype =
  let rec chain n =
    match find_node_type t n with
    | None -> "name"
    | Some nt ->
      if nt.nt_label_property <> "name" then nt.nt_label_property
      else ( match nt.nt_parent with None -> "name" | Some p -> chain p)
  in
  chain ntype

let declared_pairs t rtype =
  let rec chain n =
    match find_relation_type t n with
    | None -> []
    | Some rt -> (
      rt.rt_pairs @ match rt.rt_parent with None -> [] | Some p -> chain p)
  in
  chain rtype
