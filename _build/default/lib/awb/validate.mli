(** Advisory validation: "a meek warning message in a corner of the screen".

    AWB never rejects a model; it reports where the model deviates from the
    metamodel's suggestions. Downstream consumers (the document generator,
    the Omissions window) must therefore handle deviant models themselves. *)

type warning = {
  w_code : string; (** stable identifier, e.g. "exactly-one" *)
  w_subject : string; (** node/relation id or type name *)
  w_message : string;
}

val check : Model.t -> warning list
(** Evaluate every advisory in the metamodel, plus the always-on checks:
    unknown node types, unknown relation types, and undeclared properties
    are each reported once per offender. *)

val pp_warning : Format.formatter -> warning -> unit
