(** Ready-made metamodels and models.

    [it_architecture] is the workbench's home domain; [glass_catalog] is
    the paper's retargeting story ("AWB has retargeted to be a workbench
    for an antique glass dealer"). [banking_model] is a small but complete
    IT-architecture model used by the examples and tests; it deliberately
    contains the deviations the paper describes: a user-added property, an
    off-metamodel relation, and a document with no version information. *)

val it_architecture : Metamodel.t
val banking_model : unit -> Model.t

val glass_catalog : Metamodel.t
val glass_model : unit -> Model.t
