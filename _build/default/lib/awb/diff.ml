type prop_change = {
  pc_name : string;
  pc_before : Model.value option;
  pc_after : Model.value option;
}

type node_change =
  | Node_added of Model.node
  | Node_removed of Model.node
  | Node_changed of { id : string; changes : prop_change list }

type relation_change =
  | Relation_added of Model.relation
  | Relation_removed of Model.relation

type t = {
  node_changes : node_change list;
  relation_changes : relation_change list;
}

let props_assoc tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let diff_props (before : Model.node) (after : Model.node) =
  let b = props_assoc before.Model.props and a = props_assoc after.Model.props in
  let names = List.sort_uniq compare (List.map fst b @ List.map fst a) in
  List.filter_map
    (fun pc_name ->
      let pc_before = List.assoc_opt pc_name b in
      let pc_after = List.assoc_opt pc_name a in
      if pc_before = pc_after then None else Some { pc_name; pc_before; pc_after })
    names

let between before after =
  let node_changes =
    let before_nodes = Model.nodes before and after_nodes = Model.nodes after in
    let removed =
      List.filter_map
        (fun (n : Model.node) ->
          if Model.find_node after n.Model.id = None then Some (Node_removed n) else None)
        before_nodes
    in
    let added_or_changed =
      List.filter_map
        (fun (n : Model.node) ->
          match Model.find_node before n.Model.id with
          | None -> Some (Node_added n)
          | Some old ->
            if old.Model.ntype <> n.Model.ntype then
              Some
                (Node_changed
                   {
                     id = n.Model.id;
                     changes =
                       [
                         {
                           pc_name = "@type";
                           pc_before = Some (Model.V_string old.Model.ntype);
                           pc_after = Some (Model.V_string n.Model.ntype);
                         };
                       ]
                       @ diff_props old n;
                   })
            else (
              match diff_props old n with
              | [] -> None
              | changes -> Some (Node_changed { id = n.Model.id; changes })))
        after_nodes
    in
    let key = function
      | Node_added n | Node_removed n -> n.Model.id
      | Node_changed { id; _ } -> id
    in
    List.sort (fun x y -> compare (key x) (key y)) (removed @ added_or_changed)
  in
  let relation_changes =
    let rel_key (r : Model.relation) = r.Model.rel_id in
    let before_rels = Model.relations before and after_rels = Model.relations after in
    let removed =
      List.filter_map
        (fun (r : Model.relation) ->
          if List.exists (fun x -> rel_key x = rel_key r) after_rels then None
          else Some (Relation_removed r))
        before_rels
    in
    let added =
      List.filter_map
        (fun (r : Model.relation) ->
          if List.exists (fun x -> rel_key x = rel_key r) before_rels then None
          else Some (Relation_added r))
        after_rels
    in
    let key = function Relation_added r | Relation_removed r -> r.Model.rel_id in
    List.sort (fun x y -> compare (key x) (key y)) (removed @ added)
  in
  { node_changes; relation_changes }

let is_empty d = d.node_changes = [] && d.relation_changes = []

module N = Xml_base.Node

let value_text = function
  | Some v -> Model.value_to_string v
  | None -> "(absent)"

let node_change_xml = function
  | Node_added n ->
    N.element "node-added"
      ~attrs:[ N.attribute "id" n.Model.id; N.attribute "type" n.Model.ntype ]
  | Node_removed n ->
    N.element "node-removed"
      ~attrs:[ N.attribute "id" n.Model.id; N.attribute "type" n.Model.ntype ]
  | Node_changed { id; changes } ->
    N.element "node-changed"
      ~attrs:[ N.attribute "id" id ]
      ~children:
        (List.map
           (fun pc ->
             N.element "property"
               ~attrs:
                 [
                   N.attribute "name" pc.pc_name;
                   N.attribute "before" (value_text pc.pc_before);
                   N.attribute "after" (value_text pc.pc_after);
                 ])
           changes)

let relation_change_xml = function
  | Relation_added r ->
    N.element "relation-added"
      ~attrs:
        [
          N.attribute "id" r.Model.rel_id;
          N.attribute "type" r.Model.rtype;
          N.attribute "source" r.Model.source;
          N.attribute "target" r.Model.target;
        ]
  | Relation_removed r ->
    N.element "relation-removed"
      ~attrs:
        [
          N.attribute "id" r.Model.rel_id;
          N.attribute "type" r.Model.rtype;
          N.attribute "source" r.Model.source;
          N.attribute "target" r.Model.target;
        ]

let to_xml d =
  N.element "model-diff"
    ~children:
      (List.map node_change_xml d.node_changes
      @ List.map relation_change_xml d.relation_changes)

let summary d =
  let count f l = List.length (List.filter f l) in
  Printf.sprintf "+%d nodes, -%d nodes, %d changed; +%d relations, -%d relations"
    (count (function Node_added _ -> true | _ -> false) d.node_changes)
    (count (function Node_removed _ -> true | _ -> false) d.node_changes)
    (count (function Node_changed _ -> true | _ -> false) d.node_changes)
    (count (function Relation_added _ -> true | _ -> false) d.relation_changes)
    (count (function Relation_removed _ -> true | _ -> false) d.relation_changes)
