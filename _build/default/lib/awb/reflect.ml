open Metamodel

let meta_metamodel =
  create "awb-meta"
  |> fun mm ->
  add_node_type mm "Item" ~properties:[ ("name", P_string) ]
  |> fun mm ->
  add_node_type mm "NodeType" ~parent:"Item"
       ~properties:[ ("labelProperty", P_string) ]
  |> fun mm ->
  add_node_type mm "RelationType" ~parent:"Item"
  |> fun mm ->
  add_node_type mm "PropertyDecl" ~parent:"Item"
       ~properties:[ ("propertyType", P_string) ]
  |> fun mm ->
  add_node_type mm "Advisory" ~parent:"Item"
       ~properties:[ ("kind", P_string); ("subject", P_string); ("detail", P_string) ]
  |> fun mm ->
  add_relation_type mm "extends"
       ~pairs:[ ("NodeType", "NodeType"); ("RelationType", "RelationType") ]
  |> fun mm ->
  add_relation_type mm "declares" ~pairs:[ ("NodeType", "PropertyDecl") ]
  |> fun mm ->
  add_relation_type mm "suggests-source" ~pairs:[ ("RelationType", "NodeType") ]
  |> fun mm ->
  add_relation_type mm "suggests-target" ~pairs:[ ("RelationType", "NodeType") ]
  |> fun mm -> add_advisory mm Expect_endpoints_declared

let property_type_name = function
  | P_string -> "string"
  | P_int -> "int"
  | P_bool -> "bool"
  | P_html -> "html"

let property_type_of_name = function
  | "int" -> P_int
  | "bool" -> P_bool
  | "html" -> P_html
  | _ -> P_string

let nt_id name = "nt-" ^ name
let rt_id name = "rt-" ^ name
let pd_id owner pname = Printf.sprintf "pd-%s-%s" owner pname

let metamodel_as_model (mm : Metamodel.t) : Model.t =
  let m = Model.create meta_metamodel in
  (* Node types first, so extends/suggests edges can resolve. *)
  List.iter
    (fun name ->
      let nt = Option.get (find_node_type mm name) in
      ignore
        (Model.add_node m ~id:(nt_id name) "NodeType"
           ~props:
             [
               ("name", Model.V_string name);
               ("labelProperty", Model.V_string nt.nt_label_property);
             ]))
    (node_type_names mm);
  List.iter
    (fun name ->
      ignore
        (Model.add_node m ~id:(rt_id name) "RelationType"
           ~props:[ ("name", Model.V_string name) ]))
    (relation_type_names mm);
  (* Inheritance, property declarations. *)
  List.iter
    (fun name ->
      let nt = Option.get (find_node_type mm name) in
      (match nt.nt_parent with
      | Some parent ->
        ignore
          (Model.relate m "extends"
             ~source:(Model.get_node m (nt_id name))
             ~target:(Model.get_node m (nt_id parent)))
      | None -> ());
      List.iter
        (fun (pname, ptype) ->
          let pd =
            Model.add_node m ~id:(pd_id name pname) "PropertyDecl"
              ~props:
                [
                  ("name", Model.V_string pname);
                  ("propertyType", Model.V_string (property_type_name ptype));
                ]
          in
          ignore (Model.relate m "declares" ~source:(Model.get_node m (nt_id name)) ~target:pd))
        nt.nt_properties)
    (node_type_names mm);
  (* Relation hierarchy + endpoint suggestions. When a suggested endpoint
     type is not itself declared, it is reflected as a dangling name in a
     property instead (advisory world: it can happen). *)
  List.iter
    (fun name ->
      let rt = Option.get (find_relation_type mm name) in
      let self = Model.get_node m (rt_id name) in
      (match rt.rt_parent with
      | Some parent ->
        ignore (Model.relate m "extends" ~source:self ~target:(Model.get_node m (rt_id parent)))
      | None -> ());
      List.iter
        (fun (src, tgt) ->
          (match Model.find_node m (nt_id src) with
          | Some s -> ignore (Model.relate m "suggests-source" ~source:self ~target:s)
          | None -> ());
          match Model.find_node m (nt_id tgt) with
          | Some t -> ignore (Model.relate m "suggests-target" ~source:self ~target:t)
          | None -> ())
        rt.rt_pairs)
    (relation_type_names mm);
  (* Advisories. *)
  List.iteri
    (fun i adv ->
      let kind, subject, detail =
        match adv with
        | Expect_exactly_one ty -> ("exactly-one", ty, "")
        | Expect_property (ty, p) -> ("expect-property", ty, p)
        | Expect_endpoints_declared -> ("endpoints-declared", "", "")
      in
      ignore
        (Model.add_node m
           ~id:(Printf.sprintf "adv-%d" (i + 1))
           "Advisory"
           ~props:
             [
               ("name", Model.V_string (Printf.sprintf "advisory %d" (i + 1)));
               ("kind", Model.V_string kind);
               ("subject", Model.V_string subject);
               ("detail", Model.V_string detail);
             ]))
    (advisories mm);
  m

let model_to_metamodel (m : Model.t) : Metamodel.t =
  let name_of (n : Model.node) =
    match Model.prop n "name" with
    | Some v -> Model.value_to_string v
    | None -> failwith (Printf.sprintf "reflection: node %s has no name" n.Model.id)
  in
  let parent_of n =
    match Model.follow m n ~rtype:"extends" `Forward with
    | [] -> None
    | p :: _ -> Some (name_of p)
  in
  (* Node types must be added parents-first. *)
  let node_types = Model.nodes_of_type m "NodeType" in
  let mm = ref (create "reflected") in
  let added = Hashtbl.create 16 in
  let rec add_nt (n : Model.node) =
    let name = name_of n in
    if not (Hashtbl.mem added name) then begin
      (match Model.follow m n ~rtype:"extends" `Forward with
      | p :: _ -> add_nt p
      | [] -> ());
      let properties =
        List.map
          (fun pd ->
            ( name_of pd,
              property_type_of_name (Model.prop_string pd "propertyType") ))
          (Model.follow m n ~rtype:"declares" `Forward)
      in
      let label_property =
        match Model.prop_string n "labelProperty" with "" -> "name" | lp -> lp
      in
      mm := add_node_type !mm name ?parent:(parent_of n) ~properties ~label_property;
      Hashtbl.add added name ()
    end
  in
  List.iter add_nt node_types;
  let rel_types = Model.nodes_of_type m "RelationType" in
  let added_r = Hashtbl.create 16 in
  let rec add_rt (n : Model.node) =
    let name = name_of n in
    if not (Hashtbl.mem added_r name) then begin
      (match Model.follow m n ~rtype:"extends" `Forward with
      | p :: _ -> add_rt p
      | [] -> ());
      let sources = List.map name_of (Model.follow m n ~rtype:"suggests-source" `Forward) in
      let targets = List.map name_of (Model.follow m n ~rtype:"suggests-target" `Forward) in
      (* Tolerant zip: a reflection may have dropped one endpoint of a
         pair whose type was never declared. *)
      let rec zip xs ys =
        match (xs, ys) with x :: xs, y :: ys -> (x, y) :: zip xs ys | _ -> []
      in
      let pairs = zip sources targets in
      mm := add_relation_type !mm name ?parent:(parent_of n) ~pairs;
      Hashtbl.add added_r name ()
    end
  in
  List.iter add_rt rel_types;
  List.iter
    (fun (a : Model.node) ->
      let adv =
        match Model.prop_string a "kind" with
        | "exactly-one" -> Expect_exactly_one (Model.prop_string a "subject")
        | "expect-property" ->
          Expect_property (Model.prop_string a "subject", Model.prop_string a "detail")
        | "endpoints-declared" -> Expect_endpoints_declared
        | other -> failwith (Printf.sprintf "reflection: unknown advisory kind %S" other)
      in
      mm := add_advisory !mm adv)
    (Model.nodes_of_type m "Advisory");
  !mm
