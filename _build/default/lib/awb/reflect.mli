(** AWB retargeted to itself.

    The paper: "AWB has retargeted to be a workbench for (1) an antique
    glass dealer, and (2) itself." This module is retargeting (2): a
    meta-metamodel whose node types are [NodeType], [RelationType],
    [PropertyDecl], and [Advisory], plus faithful translations between a
    {!Metamodel.t} and a model of that meta-metamodel.

    Once a metamodel is a model, everything in the workbench applies to
    it: calculus queries ("start type(NodeType); follow extends"),
    validation, editing, snapshots — and the document generator can
    produce metamodel documentation (see examples/metamodel_doc.ml). *)

val meta_metamodel : Metamodel.t
(** Node types: [Item] (root), [NodeType], [RelationType], [PropertyDecl],
    [Advisory]. Relations: [extends] (type inheritance, both kinds),
    [declares] (type to property declaration), [suggests-source] /
    [suggests-target] (relation endpoints), [label-property]. *)

val metamodel_as_model : Metamodel.t -> Model.t
(** Reflect a metamodel into a model of {!meta_metamodel}. Node ids are
    stable and readable: [nt-Person], [rt-likes], [pd-Person-firstName],
    [adv-1]. *)

val model_to_metamodel : Model.t -> Metamodel.t
(** Rebuild a metamodel from its reflection.
    @raise Failure when the model is not a well-formed reflection. *)
