(** On-disk persistence for workbench models: numbered XML snapshots plus
    a command journal.

    "AWB is a device for collecting, maintaining, and documenting"
    information — maintenance means the model outlives the session. A
    store is a directory holding [snapshot-N.xml] files (the clean XML
    export) and [journal.xml], the {!Edit.command}s applied since the
    last snapshot. Recovery = load latest snapshot, replay the journal. *)

type t

val open_store : dir:string -> Metamodel.t -> t
(** Create the directory if needed. @raise Sys_error on IO problems. *)

val dir : t -> string

(** {1 Snapshots} *)

val save_snapshot : t -> Model.t -> int
(** Write the model as the next numbered snapshot, clear the journal, and
    return the new version number (starting at 1). *)

val versions : t -> int list
(** Ascending. *)

val load_version : t -> int -> Model.t option
val load_latest : t -> (int * Model.t) option

(** {1 The journal} *)

val append_command : t -> Edit.command -> unit
val journal : t -> Edit.command list
(** Oldest first. *)

val clear_journal : t -> unit

val recover : t -> Model.t option
(** Latest snapshot with the journal replayed on top — the state a
    crashed session left behind. Journal commands that no longer apply
    (e.g. referencing since-vanished nodes) are skipped, in the advisory
    spirit. *)

(** {1 Command serialization (exposed for tests)} *)

val command_to_xml : Edit.command -> Xml_base.Node.t
val command_of_xml : Xml_base.Node.t -> Edit.command
(** @raise Failure on malformed input *)
