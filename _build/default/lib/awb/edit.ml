type command =
  | Add_node of { id : string option; ntype : string; props : (string * Model.value) list }
  | Remove_node of string
  | Set_property of { node_id : string; pname : string; value : Model.value }
  | Remove_property of { node_id : string; pname : string }
  | Relate of {
      id : string option;
      rtype : string;
      source_id : string;
      target_id : string;
    }
  | Unrelate of string

exception Edit_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Edit_error m)) fmt

(* What must be restored to undo a command. *)
type undo_record =
  | U_remove_node of string (* undo of Add_node *)
  | U_restore_node of {
      id : string;
      ntype : string;
      props : (string * Model.value) list;
      incident : (string * string * string * string * (string * Model.value) list) list;
          (* rel_id, rtype, source, target, props *)
    }
  | U_set_property of { node_id : string; pname : string; previous : Model.value option }
  | U_unrelate of string (* undo of Relate *)
  | U_restore_relation of {
      rel_id : string;
      rtype : string;
      source : string;
      target : string;
      props : (string * Model.value) list;
    }

type session = {
  m : Model.t;
  mutable applied : (command * undo_record) list; (* newest first *)
}

let start m = { m; applied = [] }
let model s = s.m

let get_node s id =
  match Model.find_node s.m id with
  | Some n -> n
  | None -> fail "no node with id %s" id

let props_list tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let apply s command =
  let record =
    match command with
    | Add_node { id; ntype; props } ->
      (match id with
      | Some i when Model.find_node s.m i <> None -> fail "duplicate node id %s" i
      | _ -> ());
      let n = Model.add_node s.m ?id ~props ntype in
      U_remove_node n.Model.id
    | Remove_node id ->
      let n = get_node s id in
      let incident =
        List.filter
          (fun (r : Model.relation) -> r.Model.source = id || r.Model.target = id)
          (Model.relations s.m)
        |> List.map (fun (r : Model.relation) ->
               (r.Model.rel_id, r.Model.rtype, r.Model.source, r.Model.target,
                props_list r.Model.rprops))
      in
      let saved =
        U_restore_node
          { id; ntype = n.Model.ntype; props = props_list n.Model.props; incident }
      in
      Model.remove_node s.m n;
      saved
    | Set_property { node_id; pname; value } ->
      let n = get_node s node_id in
      let previous = Model.prop n pname in
      Model.set_prop n pname value;
      U_set_property { node_id; pname; previous }
    | Remove_property { node_id; pname } ->
      let n = get_node s node_id in
      let previous = Model.prop n pname in
      if previous = None then fail "node %s has no property %s" node_id pname;
      Hashtbl.remove n.Model.props pname;
      U_set_property { node_id; pname; previous }
    | Relate { id; rtype; source_id; target_id } ->
      let source = get_node s source_id in
      let target = get_node s target_id in
      (match id with
      | Some i when List.exists (fun (r : Model.relation) -> r.Model.rel_id = i) (Model.relations s.m) ->
        fail "duplicate relation id %s" i
      | _ -> ());
      let r = Model.relate s.m ?id rtype ~source ~target in
      U_unrelate r.Model.rel_id
    | Unrelate rel_id -> (
      match
        List.find_opt
          (fun (r : Model.relation) -> r.Model.rel_id = rel_id)
          (Model.relations s.m)
      with
      | None -> fail "no relation with id %s" rel_id
      | Some r ->
        let saved =
          U_restore_relation
            {
              rel_id;
              rtype = r.Model.rtype;
              source = r.Model.source;
              target = r.Model.target;
              props = props_list r.Model.rprops;
            }
        in
        Model.remove_relation s.m r;
        saved)
  in
  s.applied <- (command, record) :: s.applied

let run_undo s = function
  | U_remove_node id -> Model.remove_node s.m (get_node s id)
  | U_restore_node { id; ntype; props; incident } ->
    ignore (Model.add_node s.m ~id ~props ntype);
    List.iter
      (fun (rel_id, rtype, source, target, props) ->
        let source = get_node s source and target = get_node s target in
        ignore (Model.relate s.m ~id:rel_id ~props rtype ~source ~target))
      incident
  | U_set_property { node_id; pname; previous } -> (
    let n = get_node s node_id in
    match previous with
    | Some v -> Model.set_prop n pname v
    | None -> Hashtbl.remove n.Model.props pname)
  | U_unrelate rel_id -> (
    match
      List.find_opt (fun (r : Model.relation) -> r.Model.rel_id = rel_id) (Model.relations s.m)
    with
    | Some r -> Model.remove_relation s.m r
    | None -> fail "undo: relation %s vanished" rel_id)
  | U_restore_relation { rel_id; rtype; source; target; props } ->
    let source = get_node s source and target = get_node s target in
    ignore (Model.relate s.m ~id:rel_id ~props rtype ~source ~target)

let undo s =
  match s.applied with
  | [] -> false
  | (_, record) :: rest ->
    run_undo s record;
    s.applied <- rest;
    true

let history s = List.rev_map fst s.applied

let warnings_now s = Validate.check s.m
