(** Structural diff between two models sharing a metamodel — what changed
    between snapshot versions. Nodes and relation objects are matched by
    id; properties by name. *)

type prop_change = {
  pc_name : string;
  pc_before : Model.value option; (** [None] = property added *)
  pc_after : Model.value option; (** [None] = property removed *)
}

type node_change =
  | Node_added of Model.node
  | Node_removed of Model.node
  | Node_changed of { id : string; changes : prop_change list }

type relation_change =
  | Relation_added of Model.relation
  | Relation_removed of Model.relation

type t = {
  node_changes : node_change list; (** in id order *)
  relation_changes : relation_change list;
}

val between : Model.t -> Model.t -> t
(** [between before after]. *)

val is_empty : t -> bool

val to_xml : t -> Xml_base.Node.t
(** A [<model-diff>] report suitable for documents or logs. *)

val summary : t -> string
(** One line: "+2 nodes, -1 node, 3 changed; +4 relations, -0". *)
