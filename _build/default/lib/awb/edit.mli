(** The workbench's model-editing layer.

    AWB is an interactive workbench: users create nodes, connect them
    (even against the metamodel's advice), and set properties (even ones
    the metamodel never declared). This module is that command surface —
    every UI gesture is a {!command}, applied through {!apply} so it can
    be journaled and undone. The Omissions window's whole reason to exist
    is that models edited this way drift from the metamodel's suggestions
    while remaining perfectly loadable. *)

type command =
  | Add_node of { id : string option; ntype : string; props : (string * Model.value) list }
  | Remove_node of string (* node id *)
  | Set_property of { node_id : string; pname : string; value : Model.value }
  | Remove_property of { node_id : string; pname : string }
  | Relate of {
      id : string option;
      rtype : string;
      source_id : string;
      target_id : string;
    }
  | Unrelate of string (* relation id *)

exception Edit_error of string
(** Raised when a command cannot apply (unknown ids, duplicate ids).
    Advisory-metamodel deviations are NOT errors. *)

type session

val start : Model.t -> session
(** Begin an editing session over a model. The model is mutated in place
    as commands apply; the session records enough to undo. *)

val model : session -> Model.t

val apply : session -> command -> unit
(** @raise Edit_error when the command is structurally impossible. *)

val undo : session -> bool
(** Undo the most recent un-undone command; [false] when nothing is left
    to undo. Undo of [Remove_node] restores the node, its properties, and
    every incident relation object. *)

val history : session -> command list
(** Applied commands, oldest first (undone entries removed). *)

val warnings_now : session -> Validate.warning list
(** The live Omissions-window feed: advisory validation of the current
    state. *)
