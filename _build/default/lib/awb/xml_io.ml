module N = Xml_base.Node

let kind_name = function
  | Model.V_string _ -> "string"
  | Model.V_int _ -> "int"
  | Model.V_bool _ -> "bool"
  | Model.V_html _ -> "html"

let property_element (pname, v) =
  N.element "property"
    ~attrs:[ N.attribute "name" pname; N.attribute "kind" (kind_name v) ]
    ~children:[ N.text (Model.value_to_string v) ]

let sorted_props tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let export model =
  let node_element (n : Model.node) =
    N.element "node"
      ~attrs:[ N.attribute "id" n.Model.id; N.attribute "type" n.Model.ntype ]
      ~children:(List.map property_element (sorted_props n.Model.props))
  in
  let relation_element (r : Model.relation) =
    N.element "relation"
      ~attrs:
        [
          N.attribute "id" r.Model.rel_id;
          N.attribute "type" r.Model.rtype;
          N.attribute "source" r.Model.source;
          N.attribute "target" r.Model.target;
        ]
      ~children:(List.map property_element (sorted_props r.Model.rprops))
  in
  let root =
    N.element "awb-model"
      ~attrs:[ N.attribute "metamodel" (Metamodel.name (Model.metamodel model)) ]
      ~children:
        (List.map node_element (Model.nodes model)
        @ List.map relation_element (Model.relations model))
  in
  N.document [ root ]

let export_string model = Xml_base.Serialize.to_string ~decl:true (export model)

let parse_value kind text =
  match kind with
  | "int" -> (
    match int_of_string_opt (String.trim text) with
    | Some n -> Model.V_int n
    | None -> Model.V_string text)
  | "bool" -> (
    match String.trim text with
    | "true" -> Model.V_bool true
    | "false" -> Model.V_bool false
    | _ -> Model.V_string text)
  | "html" -> Model.V_html text
  | _ -> Model.V_string text

let read_properties elt =
  List.map
    (fun p ->
      let pname =
        match N.attr p "name" with
        | Some n -> n
        | None -> failwith "awb-model: <property> without a name"
      in
      let kind = Option.value ~default:"string" (N.attr p "kind") in
      (pname, parse_value kind (N.string_value p)))
    (N.child_elements_named elt "property")

let import mm doc =
  let root =
    match
      List.find_opt (fun k -> N.is_element k && N.name k = "awb-model") (N.children doc)
    with
    | Some r -> Some r
    | None -> if N.is_element doc && N.name doc = "awb-model" then Some doc else None
  in
  let root =
    match root with Some r -> r | None -> failwith "awb-model: missing root element"
  in
  let model = Model.create mm in
  List.iter
    (fun elt ->
      match N.name elt with
      | "node" ->
        let id =
          match N.attr elt "id" with
          | Some i -> i
          | None -> failwith "awb-model: <node> without an id"
        in
        let ntype = Option.value ~default:"Element" (N.attr elt "type") in
        ignore (Model.add_node model ~id ~props:(read_properties elt) ntype)
      | "relation" ->
        let get a =
          match N.attr elt a with
          | Some v -> v
          | None -> failwith (Printf.sprintf "awb-model: <relation> without %s" a)
        in
        let source =
          match Model.find_node model (get "source") with
          | Some n -> n
          | None -> failwith (Printf.sprintf "awb-model: dangling source %s" (get "source"))
        in
        let target =
          match Model.find_node model (get "target") with
          | Some n -> n
          | None -> failwith (Printf.sprintf "awb-model: dangling target %s" (get "target"))
        in
        ignore
          (Model.relate model ~id:(get "id") ~props:(read_properties elt) (get "type")
             ~source ~target)
      | other -> failwith (Printf.sprintf "awb-model: unexpected element <%s>" other))
    (N.child_elements root);
  model

let import_string mm s = import mm (Xml_base.Parser.parse_string s)

let export_metamodel mm =
  let node_type name =
    let attrs =
      N.attribute "name" name
      ::
      (match Metamodel.find_node_type mm name with
      | Some { Metamodel.nt_parent = Some p; _ } -> [ N.attribute "parent" p ]
      | _ -> [])
    in
    N.element "node-type" ~attrs
  in
  let relation_type name =
    let attrs =
      N.attribute "name" name
      ::
      (match Metamodel.find_relation_type mm name with
      | Some { Metamodel.rt_parent = Some p; _ } -> [ N.attribute "parent" p ]
      | _ -> [])
    in
    N.element "relation-type" ~attrs
  in
  N.element "metamodel"
    ~attrs:[ N.attribute "name" (Metamodel.name mm) ]
    ~children:
      (List.map node_type (Metamodel.node_type_names mm)
      @ List.map relation_type (Metamodel.relation_type_names mm))
