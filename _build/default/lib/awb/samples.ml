open Metamodel

let it_architecture =
  create "it-architecture"
  |> fun mm ->
  add_node_type mm "Element" ~properties:[ ("name", P_string); ("description", P_html) ]
  |> fun mm ->
  add_node_type mm "SystemBeingDesigned" ~parent:"Element"
  |> fun mm ->
  add_node_type mm "System" ~parent:"Element"
  |> fun mm ->
  add_node_type mm "Subsystem" ~parent:"System"
  |> fun mm ->
  add_node_type mm "Server" ~parent:"Element" ~properties:[ ("cpuCount", P_int) ]
  |> fun mm ->
  add_node_type mm "Computer" ~parent:"Element"
  |> fun mm ->
  add_node_type mm "Program" ~parent:"Element" ~properties:[ ("language", P_string) ]
  |> fun mm ->
  add_node_type mm "DataStore" ~parent:"Element" ~properties:[ ("technology", P_string) ]
  |> fun mm ->
  add_node_type mm "Person" ~parent:"Element"
       ~properties:
         [
           ("firstName", P_string);
           ("lastName", P_string);
           ("birthYear", P_int);
           ("biography", P_html);
         ]
  |> fun mm ->
  add_node_type mm "User" ~parent:"Person" ~properties:[ ("superuser", P_bool) ]
  |> fun mm ->
  add_node_type mm "PerformanceRequirement" ~parent:"Element"
       ~properties:[ ("metric", P_string); ("threshold", P_string) ]
  |> fun mm ->
  add_node_type mm "Document" ~parent:"Element"
       ~properties:[ ("version", P_string); ("body", P_html) ]
  |> fun mm ->
  (* The relation "has" is used in dozens of ways, to read naturally. *)
  add_relation_type mm "has"
       ~pairs:
         [
           ("System", "Server");
           ("System", "Subsystem");
           ("System", "User");
           ("System", "DataStore");
           ("System", "PerformanceRequirement");
           ("SystemBeingDesigned", "Document");
         ]
  |> fun mm ->
  add_relation_type mm "likes" ~pairs:[ ("Person", "Person") ]
  |> fun mm ->
  add_relation_type mm "favors" ~parent:"likes"
  |> fun mm ->
  add_relation_type mm "uses" ~pairs:[ ("Person", "System") ]
  |> fun mm ->
  add_relation_type mm "runs" ~pairs:[ ("Server", "Program"); ("Computer", "Program") ]
  |> fun mm ->
  add_relation_type mm "connects-to" ~pairs:[ ("Server", "DataStore") ]
  |> fun mm ->
  add_advisory mm (Expect_exactly_one "SystemBeingDesigned")
  |> fun mm ->
  add_advisory mm (Expect_property ("Document", "version"))
  |> fun mm -> add_advisory mm Expect_endpoints_declared

let banking_model () =
  let m = Model.create it_architecture in
  let open Model in
  let node ?props ntype name =
    add_node m ?id:None ~props:(("name", V_string name) :: Option.value ~default:[] props) ntype
  in
  let sbd = node "SystemBeingDesigned" "Retail Banking Platform" in
  let core = node "System" "Core Ledger" in
  let channels = node "Subsystem" "Online Channels" in
  let payments = node "Subsystem" "Payments" in
  let web = node "Server" ~props:[ ("cpuCount", V_int 8) ] "web-frontend-01" in
  let app = node "Server" ~props:[ ("cpuCount", V_int 16) ] "app-cluster-01" in
  let db = node "DataStore" ~props:[ ("technology", V_string "DB2") ] "ledger-db" in
  let audit = node "DataStore" ~props:[ ("technology", V_string "flat files") ] "audit-log" in
  let teller = node "Program" ~props:[ ("language", V_string "Java") ] "TellerApp" in
  let batch = node "Program" ~props:[ ("language", V_string "COBOL") ] "NightlyBatch" in
  let alice =
    node "User"
      ~props:
        [
          ("firstName", V_string "Alice");
          ("lastName", V_string "Alvarez");
          ("birthYear", V_int 1970);
          ("superuser", V_bool true);
        ]
      "alice"
  in
  let bob =
    node "User"
      ~props:
        [ ("firstName", V_string "Bob"); ("lastName", V_string "Burke"); ("superuser", V_bool false) ]
      "bob"
  in
  let carol =
    node "User"
      ~props:[ ("firstName", V_string "Carol"); ("lastName", V_string "Chen") ]
      "carol"
  in
  (* The paper: users can add properties the metamodel never declared. *)
  set_prop carol "middleName" (V_string "Ming");
  let perf =
    node "PerformanceRequirement"
      ~props:[ ("metric", V_string "p99 latency"); ("threshold", V_string "250ms") ]
      "fast-enough"
  in
  let ctx_doc =
    node "Document"
      ~props:[ ("version", V_string "1.2"); ("body", V_html "<p>System context.</p>") ]
      "System Context"
  in
  (* A document that forgot its version: an Omissions-window regular. *)
  let risky_doc = node "Document" "Risk Assessment" in
  let rel r ~s ~t = ignore (relate m r ~source:s ~target:t) in
  rel "has" ~s:sbd ~t:ctx_doc;
  rel "has" ~s:sbd ~t:risky_doc;
  rel "has" ~s:core ~t:channels;
  rel "has" ~s:core ~t:payments;
  rel "has" ~s:core ~t:web;
  rel "has" ~s:core ~t:app;
  rel "has" ~s:core ~t:db;
  rel "has" ~s:core ~t:perf;
  rel "has" ~s:core ~t:alice;
  rel "has" ~s:core ~t:bob;
  rel "has" ~s:core ~t:carol;
  rel "runs" ~s:web ~t:teller;
  rel "runs" ~s:app ~t:batch;
  rel "connects-to" ~s:app ~t:db;
  rel "connects-to" ~s:app ~t:audit;
  rel "uses" ~s:alice ~t:core;
  rel "uses" ~s:bob ~t:core;
  rel "likes" ~s:alice ~t:bob;
  rel "favors" ~s:bob ~t:carol;
  (* The paper: "the user can make a Person use a Program, even if the
     metamodel prefers to phrase that as Person uses System runs
     Program." *)
  rel "uses" ~s:carol ~t:teller;
  m

let glass_catalog =
  create "glass-catalog"
  |> fun mm ->
  add_node_type mm "Item" ~properties:[ ("name", P_string); ("notes", P_html) ]
  |> fun mm ->
  add_node_type mm "GlassPiece" ~parent:"Item"
       ~properties:[ ("year", P_int); ("price", P_int); ("color", P_string) ]
  |> fun mm ->
  add_node_type mm "Maker" ~parent:"Item" ~properties:[ ("country", P_string) ]
  |> fun mm ->
  add_node_type mm "Style" ~parent:"Item"
  |> fun mm ->
  add_node_type mm "Customer" ~parent:"Item"
  |> fun mm ->
  add_relation_type mm "made-by" ~pairs:[ ("GlassPiece", "Maker") ]
  |> fun mm ->
  add_relation_type mm "in-style" ~pairs:[ ("GlassPiece", "Style") ]
  |> fun mm ->
  add_relation_type mm "purchased-by" ~pairs:[ ("GlassPiece", "Customer") ]
  |> fun mm -> add_advisory mm Expect_endpoints_declared
(* Note: no SystemBeingDesigned advisory here — "the glass catalog
   doesn't have a SystemBeingDesigned node at all, nor a warning about
   it." *)

let glass_model () =
  let m = Model.create glass_catalog in
  let open Model in
  let node ?props ntype name =
    add_node m ~props:(("name", V_string name) :: Option.value ~default:[] props) ntype
  in
  let tiffany = node "Maker" ~props:[ ("country", V_string "USA") ] "Tiffany Studios" in
  let lalique = node "Maker" ~props:[ ("country", V_string "France") ] "Lalique" in
  let nouveau = node "Style" "Art Nouveau" in
  let deco = node "Style" "Art Deco" in
  let vase =
    node "GlassPiece"
      ~props:[ ("year", V_int 1905); ("price", V_int 12000); ("color", V_string "favrile gold") ]
      "Peacock Vase"
  in
  let bowl =
    node "GlassPiece"
      ~props:[ ("year", V_int 1928); ("price", V_int 4500); ("color", V_string "opalescent") ]
      "Perruches Bowl"
  in
  let lamp =
    node "GlassPiece"
      ~props:[ ("year", V_int 1910); ("price", V_int 98000); ("color", V_string "dragonfly blue") ]
      "Dragonfly Lamp"
  in
  let collector = node "Customer" "E. Driscoll" in
  let rel r ~s ~t = ignore (relate m r ~source:s ~target:t) in
  rel "made-by" ~s:vase ~t:tiffany;
  rel "made-by" ~s:lamp ~t:tiffany;
  rel "made-by" ~s:bowl ~t:lalique;
  rel "in-style" ~s:vase ~t:nouveau;
  rel "in-style" ~s:lamp ~t:nouveau;
  rel "in-style" ~s:bowl ~t:deco;
  rel "purchased-by" ~s:lamp ~t:collector;
  m
