type shape = {
  users : int;
  systems : int;
  programs : int;
  documents : int;
  likes_per_user : int;
  uses_per_user : int;
}

let shape_of_size size =
  let size = max 6 size in
  {
    users = size * 4 / 10;
    systems = max 1 (size * 2 / 10);
    programs = max 1 (size * 3 / 10);
    documents = max 1 (size / 10);
    likes_per_user = 3;
    uses_per_user = 2;
  }

(* A tiny deterministic PRNG (xorshift) so benchmark inputs are stable
   across runs and platforms. *)
type rng = { mutable state : int }

let rng_make seed = { state = (if seed = 0 then 0x2545F491 else seed) }

let rng_int r bound =
  let x = r.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r.state <- x land max_int;
  r.state mod max 1 bound

let first_names = [| "Alice"; "Bob"; "Carol"; "Dave"; "Erin"; "Frank"; "Grace"; "Heidi" |]
let last_names = [| "Alvarez"; "Burke"; "Chen"; "Diaz"; "Ekwueme"; "Fox"; "Gupta"; "Hart" |]
let languages = [| "Java"; "COBOL"; "C++"; "Smalltalk"; "Rexx" |]

let generate ?(seed = 42) shape =
  let rng = rng_make seed in
  let m = Model.create Samples.it_architecture in
  let open Model in
  let sbd =
    add_node m "SystemBeingDesigned" ~props:[ ("name", V_string "The System") ]
  in
  let systems =
    Array.init shape.systems (fun i ->
        add_node m "System" ~props:[ ("name", V_string (Printf.sprintf "system-%d" i)) ])
  in
  let programs =
    Array.init shape.programs (fun i ->
        add_node m "Program"
          ~props:
            [
              ("name", V_string (Printf.sprintf "program-%d" i));
              ("language", V_string languages.(rng_int rng (Array.length languages)));
            ])
  in
  let users =
    Array.init shape.users (fun i ->
        add_node m "User"
          ~props:
            [
              ("name", V_string (Printf.sprintf "user-%d" i));
              ("firstName", V_string first_names.(rng_int rng (Array.length first_names)));
              ("lastName", V_string last_names.(rng_int rng (Array.length last_names)));
              ("superuser", V_bool (rng_int rng 10 = 0));
            ])
  in
  let documents =
    Array.init shape.documents (fun i ->
        let props = [ ("name", V_string (Printf.sprintf "document-%d" i)) ] in
        let props =
          if i mod 3 = 0 then props
          else ("version", V_string (Printf.sprintf "1.%d" (rng_int rng 9))) :: props
        in
        add_node m "Document" ~props)
  in
  let pick arr = arr.(rng_int rng (Array.length arr)) in
  Array.iter (fun d -> ignore (relate m "has" ~source:sbd ~target:d)) documents;
  Array.iter (fun s -> ignore (relate m "has" ~source:sbd ~target:s)) systems;
  Array.iter
    (fun s ->
      for _ = 1 to 2 do
        ignore (relate m "runs" ~source:s ~target:(pick programs))
      done)
    systems;
  Array.iter
    (fun u ->
      for _ = 1 to shape.likes_per_user do
        let rel = if rng_int rng 4 = 0 then "favors" else "likes" in
        ignore (relate m rel ~source:u ~target:(pick users))
      done;
      for _ = 1 to shape.uses_per_user do
        ignore (relate m "uses" ~source:u ~target:(pick systems))
      done;
      (* An occasional off-metamodel shortcut, as real users make. *)
      if rng_int rng 10 = 0 then ignore (relate m "uses" ~source:u ~target:(pick programs)))
    users;
  m

let generate_of_size ?seed size = generate ?seed (shape_of_size size)
