type warning = { w_code : string; w_subject : string; w_message : string }

let pp_warning fmt w =
  Format.fprintf fmt "[%s] %s: %s" w.w_code w.w_subject w.w_message

let warn code subject fmt =
  Format.kasprintf (fun w_message -> { w_code = code; w_subject = subject; w_message }) fmt

let check_advisory model = function
  | Metamodel.Expect_exactly_one ntype -> (
    match List.length (Model.nodes_of_type model ntype) with
    | 1 -> []
    | 0 ->
      [
        warn "exactly-one" ntype
          "you might want to ensure that there is exactly one %s node, but there are none"
          ntype;
      ]
    | n ->
      [
        warn "exactly-one" ntype
          "there should be exactly one %s node, but there were %d" ntype n;
      ])
  | Metamodel.Expect_property (ntype, pname) ->
    List.filter_map
      (fun (n : Model.node) ->
        match Model.prop n pname with
        | Some _ -> None
        | None ->
          Some
            (warn "missing-property" n.Model.id "%s %S has no %s" ntype
               (Model.label model n) pname))
      (Model.nodes_of_type model ntype)
  | Metamodel.Expect_endpoints_declared ->
    let mm = Model.metamodel model in
    List.filter_map
      (fun (r : Model.relation) ->
        let pairs = Metamodel.declared_pairs mm r.Model.rtype in
        if pairs = [] then None (* nothing declared: anything goes *)
        else
          let stype =
            match Model.find_node model r.Model.source with
            | Some n -> n.Model.ntype
            | None -> "?"
          in
          let ttype =
            match Model.find_node model r.Model.target with
            | Some n -> n.Model.ntype
            | None -> "?"
          in
          let ok =
            List.exists
              (fun (s, t) ->
                Metamodel.is_subtype mm stype s && Metamodel.is_subtype mm ttype t)
              pairs
          in
          if ok then None
          else
            Some
              (warn "off-metamodel-relation" r.Model.rel_id
                 "relation %s connects %s to %s, which the metamodel does not suggest"
                 r.Model.rtype stype ttype))
      (Model.relations model)

let structural_checks model =
  let mm = Model.metamodel model in
  let unknown_types =
    List.sort_uniq compare
      (List.filter_map
         (fun (n : Model.node) ->
           if Metamodel.find_node_type mm n.Model.ntype = None then Some n.Model.ntype
           else None)
         (Model.nodes model))
  in
  let unknown_rels =
    List.sort_uniq compare
      (List.filter_map
         (fun (r : Model.relation) ->
           if Metamodel.find_relation_type mm r.Model.rtype = None then Some r.Model.rtype
           else None)
         (Model.relations model))
  in
  let undeclared_props =
    List.concat_map
      (fun (n : Model.node) ->
        let declared = List.map fst (Metamodel.properties_of mm n.Model.ntype) in
        Hashtbl.fold
          (fun pname _ acc ->
            if List.mem pname declared then acc
            else
              warn "undeclared-property" n.Model.id
                "node %S carries property %s the metamodel does not declare for %s"
                (Model.label model n) pname n.Model.ntype
              :: acc)
          n.Model.props []
        |> List.sort compare)
      (Model.nodes model)
  in
  List.map
    (fun ty -> warn "unknown-node-type" ty "node type %s is not in the metamodel" ty)
    unknown_types
  @ List.map
      (fun ty -> warn "unknown-relation-type" ty "relation %s is not in the metamodel" ty)
      unknown_rels
  @ undeclared_props

let check model =
  let mm = Model.metamodel model in
  List.concat_map (check_advisory model) (Metamodel.advisories mm)
  @ structural_checks model
