(** Deterministic synthetic model generation for benchmarks.

    Builds IT-architecture models of a requested size with a realistic
    relation mix (the workload behind the paper's query-calculus and
    document-generation performance observations). The same seed always
    yields the same model. *)

type shape = {
  users : int;
  systems : int;
  programs : int;
  documents : int;
  likes_per_user : int;
  uses_per_user : int;
}

val shape_of_size : int -> shape
(** A balanced shape with roughly [size] nodes total. *)

val generate : ?seed:int -> shape -> Model.t
(** Always contains exactly one SystemBeingDesigned node; a configurable
    fraction of documents (1 in 3) lack version info so omission queries
    have work to do. *)

val generate_of_size : ?seed:int -> int -> Model.t
