(** Parser for the textual form of the AWB query calculus.

    Queries are step clauses separated by [;] or newlines:
    {v
    start type(User);
    follow likes forward;
    follow uses to(Program);
    distinct;
    sort-by label
    v} *)

exception Parse_error of string

val parse : string -> Ast.t
(** @raise Parse_error with a human-oriented message. *)
