module M = Awb.Model
module MM = Awb.Metamodel

let node_label (n : M.node) =
  match M.prop n "name" with Some v -> M.value_to_string v | None -> n.M.id

let numeric_pair a b =
  match (int_of_string_opt (String.trim a), int_of_string_opt (String.trim b)) with
  | Some x, Some y -> Some (x, y)
  | _ -> None

let prop_matches op literal value =
  match op with
  | Ast.P_eq -> (
    match numeric_pair value literal with
    | Some (x, y) -> x = y
    | None -> value = literal)
  | Ast.P_ne -> (
    match numeric_pair value literal with
    | Some (x, y) -> x <> y
    | None -> value <> literal)
  | Ast.P_lt -> (
    match numeric_pair value literal with
    | Some (x, y) -> x < y
    | None -> value < literal)
  | Ast.P_gt -> (
    match numeric_pair value literal with
    | Some (x, y) -> x > y
    | None -> value > literal)
  | Ast.P_contains ->
    let nl = String.length literal and hl = String.length value in
    if nl = 0 then true
    else
      let rec go i = i + nl <= hl && (String.sub value i nl = literal || go (i + 1)) in
      go 0

let eval_start model ~focus = function
  | Ast.All -> M.nodes model
  | Ast.Of_type ty -> M.nodes_of_type model ty
  | Ast.Node_id id -> ( match M.find_node model id with Some n -> [ n ] | None -> [])
  | Ast.Focus -> ( match focus with Some n -> [ n ] | None -> [])

let eval_step model current = function
  | Ast.Follow { rel; dir; to_type } ->
    let neighbors n =
      M.follow model n ~rtype:rel (match dir with Ast.Forward -> `Forward | Ast.Backward -> `Backward)
    in
    let reached = List.concat_map neighbors current in
    (match to_type with
    | None -> reached
    | Some ty ->
      List.filter
        (fun (n : M.node) -> MM.is_subtype (M.metamodel model) n.M.ntype ty)
        reached)
  | Ast.Filter_type ty ->
    List.filter (fun (n : M.node) -> MM.is_subtype (M.metamodel model) n.M.ntype ty) current
  | Ast.Filter_prop { pname; op; literal } ->
    List.filter
      (fun n ->
        match M.prop n pname with
        | Some v -> prop_matches op literal (M.value_to_string v)
        | None -> false)
      current
  | Ast.Filter_has_prop p -> List.filter (fun n -> M.prop n p <> None) current
  | Ast.Filter_not_has_prop p -> List.filter (fun n -> M.prop n p = None) current
  | Ast.Distinct ->
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (n : M.node) ->
        if Hashtbl.mem seen n.M.id then false
        else begin
          Hashtbl.add seen n.M.id ();
          true
        end)
      current
  | Ast.Sort_by_label ->
    List.stable_sort (fun a b -> compare (node_label a) (node_label b)) current
  | Ast.Sort_by_prop { pname; descending } ->
    let key n = M.prop_string n pname in
    let cmp a b =
      let ka = key a and kb = key b in
      let c =
        match numeric_pair ka kb with Some (x, y) -> compare x y | None -> compare ka kb
      in
      if descending then -c else c
    in
    List.stable_sort cmp current
  | Ast.Limit n -> List.filteri (fun i _ -> i < n) current

let eval ?focus model (q : Ast.t) =
  List.fold_left (eval_step model) (eval_start model ~focus q.Ast.start) q.Ast.steps

let eval_string ?focus model text = eval ?focus model (Parser.parse text)
