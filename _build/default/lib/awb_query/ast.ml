(* The AWB query calculus — "a little calculus in which one could say:
   Start at this user; follow the relation likes forwards; follow the
   relation uses but only to computer programs from there; collect the
   results, sorted by label."

   The same calculus serves document generation and the UI (the Omissions
   window), which is why it exists at all — and why, in the paper's story,
   having an XQuery implementation and a Java implementation of it was
   untenable. *)

type start =
  | All
  | Of_type of string (* includes subtypes *)
  | Node_id of string
  | Focus
      (* the implicit variable the document generator's <for> maintains;
         evaluating it requires a focus to be supplied *)

type direction = Forward | Backward

type prop_op = P_eq | P_ne | P_lt | P_gt | P_contains

type step =
  | Follow of { rel : string; dir : direction; to_type : string option }
  | Filter_type of string
  | Filter_prop of { pname : string; op : prop_op; literal : string }
  | Filter_has_prop of string
  | Filter_not_has_prop of string
  | Distinct
  | Sort_by_label
  | Sort_by_prop of { pname : string; descending : bool }
  | Limit of int

type t = { start : start; steps : step list }

let direction_to_string = function Forward -> "forward" | Backward -> "backward"

let prop_op_to_string = function
  | P_eq -> "="
  | P_ne -> "!="
  | P_lt -> "<"
  | P_gt -> ">"
  | P_contains -> "contains"

let start_to_string = function
  | All -> "start all"
  | Of_type ty -> Printf.sprintf "start type(%s)" ty
  | Node_id id -> Printf.sprintf "start node(%s)" id
  | Focus -> "start focus"

let step_to_string = function
  | Follow { rel; dir; to_type } ->
    Printf.sprintf "follow %s %s%s" rel (direction_to_string dir)
      (match to_type with None -> "" | Some ty -> Printf.sprintf " to(%s)" ty)
  | Filter_type ty -> Printf.sprintf "filter type(%s)" ty
  | Filter_prop { pname; op; literal } ->
    Printf.sprintf "filter prop(%s %s %S)" pname (prop_op_to_string op) literal
  | Filter_has_prop p -> Printf.sprintf "filter has-prop(%s)" p
  | Filter_not_has_prop p -> Printf.sprintf "filter not-has-prop(%s)" p
  | Distinct -> "distinct"
  | Sort_by_label -> "sort-by label"
  | Sort_by_prop { pname; descending } ->
    Printf.sprintf "sort-by prop(%s)%s" pname (if descending then " desc" else "")
  | Limit n -> Printf.sprintf "limit %d" n

let to_string q =
  String.concat "; " (start_to_string q.start :: List.map step_to_string q.steps)
