exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Split a clause into words, keeping (...) groups and "..." literals
   intact. *)
let tokenize clause =
  let n = String.length clause in
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    let c = clause.[!i] in
    if c = ' ' || c = '\t' then begin
      flush ();
      incr i
    end
    else if c = '(' then begin
      (* Capture the parenthesized group verbatim (may contain quotes). *)
      Buffer.add_char buf c;
      incr i;
      let depth = ref 1 in
      let in_string = ref false in
      while !depth > 0 do
        if !i >= n then fail "unterminated ( in %S" clause;
        let c = clause.[!i] in
        Buffer.add_char buf c;
        (if !in_string then (if c = '"' then in_string := false)
         else
           match c with
           | '"' -> in_string := true
           | '(' -> incr depth
           | ')' -> decr depth
           | _ -> ());
        incr i
      done;
      flush ()
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  flush ();
  List.rev !toks

(* A token like "type(User)" -> ("type", "User"). *)
let split_call tok =
  match String.index_opt tok '(' with
  | Some i when String.length tok > 0 && tok.[String.length tok - 1] = ')' ->
    let head = String.sub tok 0 i in
    let inner = String.sub tok (i + 1) (String.length tok - i - 2) in
    Some (head, String.trim inner)
  | _ -> None

let parse_prop_filter inner =
  (* name OP literal, where literal may be quoted. *)
  let ops =
    [ ("!=", Ast.P_ne); ("=", Ast.P_eq); ("<", Ast.P_lt); (">", Ast.P_gt); ("contains", Ast.P_contains) ]
  in
  let find_op () =
    let rec scan i =
      if i >= String.length inner then None
      else
        match
          List.find_opt
            (fun (sym, _) ->
              let l = String.length sym in
              i + l <= String.length inner && String.sub inner i l = sym)
            ops
        with
        | Some (sym, op) -> Some (i, sym, op)
        | None -> scan (i + 1)
    in
    scan 0
  in
  match find_op () with
  | None -> fail "prop filter needs an operator: %S" inner
  | Some (i, sym, op) ->
    let pname = String.trim (String.sub inner 0 i) in
    let rest =
      String.trim
        (String.sub inner (i + String.length sym) (String.length inner - i - String.length sym))
    in
    let literal =
      if String.length rest >= 2 && rest.[0] = '"' && rest.[String.length rest - 1] = '"'
      then String.sub rest 1 (String.length rest - 2)
      else rest
    in
    if pname = "" then fail "prop filter needs a property name: %S" inner;
    Ast.Filter_prop { pname; op; literal }

let parse_clause words =
  match words with
  | [] -> None
  | [ "start"; "all" ] -> Some (`Start Ast.All)
  | [ "start"; "focus" ] -> Some (`Start Ast.Focus)
  | [ "start"; tok ] -> (
    match split_call tok with
    | Some ("type", ty) -> Some (`Start (Ast.Of_type ty))
    | Some ("node", id) -> Some (`Start (Ast.Node_id id))
    | _ -> fail "start expects all, type(T), or node(ID); got %S" tok)
  | "follow" :: rel :: rest ->
    let dir, rest =
      match rest with
      | "forward" :: rest -> (Ast.Forward, rest)
      | "backward" :: rest -> (Ast.Backward, rest)
      | rest -> (Ast.Forward, rest)
    in
    let to_type =
      match rest with
      | [] -> None
      | [ tok ] -> (
        match split_call tok with
        | Some ("to", ty) -> Some ty
        | _ -> fail "follow: expected to(Type), got %S" tok)
      | _ -> fail "follow: too many words"
    in
    Some (`Step (Ast.Follow { rel; dir; to_type }))
  | [ "filter"; tok ] -> (
    match split_call tok with
    | Some ("type", ty) -> Some (`Step (Ast.Filter_type ty))
    | Some ("prop", inner) -> Some (`Step (parse_prop_filter inner))
    | Some ("has-prop", p) -> Some (`Step (Ast.Filter_has_prop p))
    | Some ("not-has-prop", p) -> Some (`Step (Ast.Filter_not_has_prop p))
    | _ -> fail "filter expects type(T), prop(...), has-prop(P), or not-has-prop(P)")
  | [ "distinct" ] -> Some (`Step Ast.Distinct)
  | [ "sort-by"; "label" ] -> Some (`Step Ast.Sort_by_label)
  | "sort-by" :: tok :: rest -> (
    let descending =
      match rest with
      | [] -> false
      | [ "desc" ] | [ "descending" ] -> true
      | [ "asc" ] | [ "ascending" ] -> false
      | _ -> fail "sort-by: unexpected trailing words"
    in
    match split_call tok with
    | Some ("prop", pname) -> Some (`Step (Ast.Sort_by_prop { pname; descending }))
    | _ -> fail "sort-by expects label or prop(P)")
  | [ "limit"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> Some (`Step (Ast.Limit n))
    | _ -> fail "limit expects a non-negative integer, got %S" n)
  | w :: _ -> fail "unknown clause %S" w

(* Split on ';' and newlines, but not inside "..." literals. *)
let split_clauses text =
  let clauses = ref [] in
  let buf = Buffer.create 32 in
  let in_string = ref false in
  let flush () =
    let c = String.trim (Buffer.contents buf) in
    if c <> "" then clauses := c :: !clauses;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      if !in_string then begin
        Buffer.add_char buf c;
        if c = '"' then in_string := false
      end
      else
        match c with
        | '"' ->
          Buffer.add_char buf c;
          in_string := true
        | ';' | '\n' -> flush ()
        | c -> Buffer.add_char buf c)
    text;
  flush ();
  List.rev !clauses

let parse text =
  let clauses = split_clauses text in
  let parsed = List.filter_map (fun c -> parse_clause (tokenize c)) clauses in
  match parsed with
  | `Start s :: rest ->
    let steps =
      List.map
        (function
          | `Step st -> st
          | `Start _ -> fail "only one start clause is allowed, at the beginning")
        rest
    in
    { Ast.start = s; steps }
  | `Step _ :: _ -> fail "a query must begin with a start clause"
  | [] -> fail "empty query"
