(* The third implementation of the query calculus — the paper's actual
   first one: an interpreter for the calculus written IN XQuery.

   "This was essentially writing an interpreter in XQuery, which is not a
   hard exercise."

   The query arrives as XML (see [query_to_xml]); the interpreter walks
   its <step> elements recursively, threading the current node-set. The
   metamodel export supplies the type hierarchy so type(T) and to(T)
   remain subtype-aware, and prop-filter literals carry a numeric flag so
   untyped-vs-number promotion matches the other two backends. *)

module M = Awb.Model
module N = Xml_base.Node

let bool_attr b = if b then "true" else "false"

let query_to_xml (q : Ast.t) : N.t =
  let start =
    match q.Ast.start with
    | Ast.All -> N.element "start" ~attrs:[ N.attribute "kind" "all" ]
    | Ast.Of_type ty ->
      N.element "start" ~attrs:[ N.attribute "kind" "type"; N.attribute "arg" ty ]
    | Ast.Node_id id ->
      N.element "start" ~attrs:[ N.attribute "kind" "node"; N.attribute "arg" id ]
    | Ast.Focus -> N.element "start" ~attrs:[ N.attribute "kind" "focus" ]
  in
  let step s =
    let attrs =
      match s with
      | Ast.Follow { rel; dir; to_type } ->
        [
          N.attribute "kind" "follow";
          N.attribute "rel" rel;
          N.attribute "dir" (Ast.direction_to_string dir);
        ]
        @ (match to_type with Some ty -> [ N.attribute "to" ty ] | None -> [])
      | Ast.Filter_type ty -> [ N.attribute "kind" "filter-type"; N.attribute "arg" ty ]
      | Ast.Filter_prop { pname; op; literal } ->
        [
          N.attribute "kind" "filter-prop";
          N.attribute "prop" pname;
          N.attribute "op" (Ast.prop_op_to_string op);
          N.attribute "literal" literal;
          N.attribute "numeric"
            (bool_attr (int_of_string_opt (String.trim literal) <> None));
        ]
      | Ast.Filter_has_prop p -> [ N.attribute "kind" "has-prop"; N.attribute "arg" p ]
      | Ast.Filter_not_has_prop p ->
        [ N.attribute "kind" "not-has-prop"; N.attribute "arg" p ]
      | Ast.Distinct -> [ N.attribute "kind" "distinct" ]
      | Ast.Sort_by_label -> [ N.attribute "kind" "sort-by-label" ]
      | Ast.Sort_by_prop { pname; descending } ->
        [
          N.attribute "kind" "sort-by-prop";
          N.attribute "prop" pname;
          N.attribute "desc" (bool_attr descending);
        ]
      | Ast.Limit n ->
        [ N.attribute "kind" "limit"; N.attribute "arg" (string_of_int n) ]
    in
    N.element "step" ~attrs
  in
  N.element "query" ~children:(start :: List.map step q.Ast.steps)

let interpreter_source =
  {|
declare function local:is-subtype($mm, $sub, $super) {
  if ($sub eq $super) then true()
  else
    let $decl := $mm/node-type[@name = $sub]
    return
      if (empty($decl)) then false()
      else if (empty($decl/@parent)) then false()
      else local:is-subtype($mm, string($decl[1]/@parent), $super)
};

declare function local:is-subrel($mm, $sub, $super) {
  if ($sub eq $super) then true()
  else
    let $decl := $mm/relation-type[@name = $sub]
    return
      if (empty($decl)) then false()
      else if (empty($decl/@parent)) then false()
      else local:is-subrel($mm, string($decl[1]/@parent), $super)
};

declare function local:nodes-of-type($model, $mm, $ty) {
  for $n in $model/node
  where local:is-subtype($mm, string($n/@type), $ty)
  return $n
};

declare function local:start($start, $model, $mm, $focus) {
  if (string($start/@kind) eq "all") then $model/node
  else if (string($start/@kind) eq "type") then
    local:nodes-of-type($model, $mm, string($start/@arg))
  else if (string($start/@kind) eq "node") then
    $model/node[@id = string($start/@arg)]
  else if (string($start/@kind) eq "focus") then $focus
  else error("awb:bad-start", concat("unknown start kind ", string($start/@kind)))
};

declare function local:follow($step, $cur, $model, $mm) {
  let $rel := string($step/@rel)
  let $fwd := string($step/@dir) eq "forward"
  for $n in $cur
  for $r in $model/relation[local:is-subrel($mm, string(./@type), $rel)]
  where (if ($fwd) then string($r/@source) else string($r/@target)) eq string($n/@id)
  return
    let $other := $model/node[@id = (if ($fwd) then string($r/@target) else string($r/@source))]
    return
      if (empty($step/@to)) then $other
      else if (local:is-subtype($mm, string($other[1]/@type), string($step/@to))) then $other
      else ()
};

declare function local:prop-test($step, $n) {
  let $p := $n/property[@name = string($step/@prop)]
  let $op := string($step/@op)
  return
    if ($op eq "contains") then
      some $v in $p satisfies contains(string($v), string($step/@literal))
    else
      let $lit-s := string($step/@literal)
      return
        if (string($step/@numeric) eq "true") then
          let $lit := number($step/@literal)
          return
            if ($op eq "=") then $p = $lit
            else if ($op eq "!=") then $p != $lit
            else if ($op eq "<") then $p < $lit
            else $p > $lit
        else
          if ($op eq "=") then $p = $lit-s
          else if ($op eq "!=") then $p != $lit-s
          else if ($op eq "<") then $p < $lit-s
          else $p > $lit-s
};

declare function local:step($step, $cur, $model, $mm) {
  let $kind := string($step/@kind)
  return
    if ($kind eq "follow") then local:follow($step, $cur, $model, $mm)
    else if ($kind eq "filter-type") then
      for $n in $cur
      where local:is-subtype($mm, string($n/@type), string($step/@arg))
      return $n
    else if ($kind eq "filter-prop") then
      for $n in $cur where local:prop-test($step, $n) return $n
    else if ($kind eq "has-prop") then
      for $n in $cur where exists($n/property[@name = string($step/@arg)]) return $n
    else if ($kind eq "not-has-prop") then
      for $n in $cur where empty($n/property[@name = string($step/@arg)]) return $n
    else if ($kind eq "distinct") then
      for $id in distinct-values(for $n in $cur return string($n/@id))
      return $model/node[@id = $id]
    else if ($kind eq "sort-by-label") then
      for $n in $cur
      order by string(($n/property[@name = "name"], $n/@id)[1])
      return $n
    else if ($kind eq "sort-by-prop") then
      (if (string($step/@desc) eq "true") then
         for $n in $cur
         order by number($n/property[@name = string($step/@prop)][1]) descending,
                  string($n/property[@name = string($step/@prop)][1]) descending
         return $n
       else
         for $n in $cur
         order by number($n/property[@name = string($step/@prop)][1]),
                  string($n/property[@name = string($step/@prop)][1])
         return $n)
    else if ($kind eq "limit") then
      subsequence($cur, 1, number($step/@arg))
    else error("awb:bad-step", concat("unknown step kind ", $kind))
};

declare function local:fold($steps, $cur, $model, $mm) {
  if (empty($steps)) then $cur
  else local:fold(subsequence($steps, 2),
                  local:step($steps[1], $cur, $model, $mm),
                  $model, $mm)
};

local:fold($query/step, local:start(($query/start)[1], $model, $mm, $focus), $model, $mm)
|}

let eval_on_export ?focus (model : M.t) ~export_root (q : Ast.t) : M.node list =
  let mm_root = Awb.Xml_io.export_metamodel (M.metamodel model) in
  let query_xml = query_to_xml q in
  let focus_seq =
    match focus with
    | None -> []
    | Some (n : M.node) ->
      N.find_all
        (fun e ->
          N.is_element e && N.name e = "node" && N.attr e "id" = Some n.M.id)
        export_root
      |> Xquery.Value.of_nodes
  in
  let result =
    Xquery.Engine.eval_query
      ~vars:
        [
          ("model", Xquery.Value.of_node export_root);
          ("mm", Xquery.Value.of_node mm_root);
          ("query", Xquery.Value.of_node query_xml);
          ("focus", focus_seq);
        ]
      interpreter_source
  in
  List.filter_map
    (function
      | Xquery.Value.Node n when N.is_element n -> (
        match N.attr n "id" with Some id -> M.find_node model id | None -> None)
      | _ -> None)
    result

let eval ?focus model q =
  let doc = Awb.Xml_io.export model in
  eval_on_export ?focus model ~export_root:(List.hd (N.children doc)) q

let eval_string ?focus model text = eval ?focus model (Parser.parse text)
