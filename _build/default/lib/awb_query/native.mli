(** Native evaluation of the query calculus over the in-memory model — the
    paper's "Java" implementation, built directly on graph indexes.

    Label semantics for sorting: the node's "name" property, falling back
    to its id (both implementations share this definition so they can be
    compared result-for-result). *)

val node_label : Awb.Model.node -> string

val eval : ?focus:Awb.Model.node -> Awb.Model.t -> Ast.t -> Awb.Model.node list
(** Duplicates are preserved (it is a multigraph) unless the query says
    [distinct]. [focus] backs the [start focus] clause; without one,
    [start focus] yields the empty set. *)

val eval_string :
  ?focus:Awb.Model.node -> Awb.Model.t -> string -> Awb.Model.node list
(** Parse then evaluate. @raise Parser.Parse_error *)
