lib/awb_query/to_xquery.ml: Ast Awb Buffer List Parser Printf String Xml_base Xquery
