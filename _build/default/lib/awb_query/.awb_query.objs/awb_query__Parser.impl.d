lib/awb_query/parser.ml: Ast Buffer List Printf String
