lib/awb_query/to_xquery.mli: Ast Awb Xml_base
