lib/awb_query/native.ml: Ast Awb Hashtbl List Parser String
