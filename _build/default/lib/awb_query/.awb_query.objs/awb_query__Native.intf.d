lib/awb_query/native.mli: Ast Awb
