lib/awb_query/xq_interp.ml: Ast Awb List Parser String Xml_base Xquery
