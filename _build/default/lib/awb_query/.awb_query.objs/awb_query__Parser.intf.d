lib/awb_query/parser.mli: Ast
