lib/awb_query/ast.ml: List Printf String
