(* The paper's literal artifacts, reproduced exactly.

   T1 — the seven-row table from "Data Structures and Abstractions":
   store X, Y, Z in a sequence (and in an element), try to get Y back out
   with [2] (or /*[2]), and observe what actually comes back.

   T2 — the three attribute-folding programs from "Treatment of Child
   Elements". *)

module V = Xquery.Value
module E = Xquery.Engine
module Err = Xquery.Errors

let check = Alcotest.check
let string_t = Alcotest.string

(* One row of T1: bind $X,$Y,$Z, evaluate ($X,$Y,$Z)[2] and
   <el>{$X}{$Y}{$Z}</el>/node()[2]. The element representation turns
   atomics into text, so rows are described by the sequence form; the
   attribute row errors only in the element form, exactly as the paper
   says. *)

type row = {
  label : string; (* the paper's "Result" column *)
  x : string; (* XQuery source for X *)
  y : string;
  z : string;
  gives : string; (* display form of the sequence-representation result *)
}

let rows =
  [
    { label = "Y itself"; x = "1"; y = "2"; z = "3"; gives = "2" };
    { label = "Some part of Y"; x = "1"; y = "(2, \"2a\")"; z = "4"; gives = "2a" };
    { label = "Z"; x = "1"; y = "()"; z = "3"; gives = "3" };
    { label = "A part of X"; x = "(\"1a\",\"1b\")"; y = "2"; z = "3"; gives = "1b" };
    { label = "A part of Z"; x = "1"; y = "()"; z = "(\"3a\",\"3b\")"; gives = "3a" };
    { label = "Nothing"; x = "()"; y = "(2)"; z = "()"; gives = "()" };
  ]

(* NOTE on fidelity: the paper prints "A part of Z" as giving "3b" and
   "Some part of Y" as "2a". With X=1, Y=(), Z=("3a","3b") the sequence is
   (1,"3a","3b") and [2] is "3a" — the point (you get a PART of Z, not Z)
   stands either way; we assert what the semantics actually give. For
   "Some part of Y" = (2,"2a"): the sequence (1,2,"2a",4)[2] is 2 — also a
   part of Y. The paper's table reports the *element* representation for
   some rows and the sequence representation for others; we check both
   representations below and record which row matches which. *)

let seq_query r = Printf.sprintf "let $X := %s let $Y := %s let $Z := %s return string(($X, $Y, $Z)[2])" r.x r.y r.z

let elem_query r =
  Printf.sprintf
    "let $X := %s let $Y := %s let $Z := %s return string((<el>{$X}{$Y}{$Z}</el>/node())[2])"
    r.x r.y r.z

let run q =
  match E.eval_query q with
  | [] -> "()"
  | s -> V.to_display_string s

let test_t1_sequence_rows () =
  (* Row-by-row, sequence representation. *)
  check string_t "Y itself" "2" (run (seq_query (List.nth rows 0)));
  check string_t "Some part of Y" "2" (run (seq_query (List.nth rows 1)));
  check string_t "Z" "3" (run (seq_query (List.nth rows 2)));
  check string_t "A part of X" "1b" (run (seq_query (List.nth rows 3)));
  check string_t "A part of Z" "3a" (run (seq_query (List.nth rows 4)));
  (* Nothing: ()[2] of a one-item sequence. (),(2),() → (2); [2] → (). *)
  check string_t "Nothing" "" (run "let $X := () let $Y := (2) let $Z := () return string(($X, $Y, $Z)[2])");
  check string_t "Nothing is empty" "0"
    (run "let $X := () let $Y := (2) let $Z := () return count(($X, $Y, $Z)[2])")

let test_t1_element_rows () =
  (* The element representation is WORSE than the table suggests for
     atomic values: adjacent text nodes merge, so <el>{1}{2}{3}</el> holds
     a single text node "123" and node()[2] is () — every atomic row
     collapses to "Nothing". *)
  check string_t "element: atomics merge, [2] is nothing" ""
    (run (elem_query (List.nth rows 0)));
  check string_t "element: merged even with sequences" ""
    (run (elem_query (List.nth rows 1)));
  check string_t "element: the merged text" "123"
    (run "string(<el>{1}{2}{3}</el>)");
  (* With element values the container behaves — until Y is itself a
     sequence of elements, when [2] returns a part of Y. *)
  check string_t "element values: Y itself" "<y/>"
    (run "let $X := <x/> let $Y := <y/> let $Z := <z/> return (<el>{$X}{$Y}{$Z}</el>/node())[2]");
  check string_t "element values: part of Y" "<y1/>"
    (run
       "let $X := <x/> let $Y := (<y1/>, <y2/>) let $Z := <z/> return (<el>{$X}{$Y}{$Z}</el>/node())[2]");
  check string_t "element values: Z when Y empty" "<z/>"
    (run "let $X := <x/> let $Y := () let $Z := <z/> return (<el>{$X}{$Y}{$Z}</el>/node())[2]")

let test_t1_attribute_row_errors () =
  (* "An error (for element rep.)": Y an attribute node, placed after
     text content. *)
  let q =
    "let $X := 1 let $Y := attribute y {\"why?\"} let $Z := 2 return <el>{$X}{$Y}{$Z}</el>"
  in
  (match E.eval_query q with
  | exception Err.Error { code; _ } ->
    check string_t "element rep errors" "err:XQTY0024" code
  | r -> Alcotest.failf "expected an error, got %s" (V.to_display_string r));
  (* While the sequence representation silently loses the attribute's
     identity when indexed. *)
  check string_t "sequence rep gives the attribute"
    "why?"
    (run "let $X := 1 let $Y := attribute y {\"why?\"} let $Z := 2 return string(($X,$Y,$Z)[2])")

(* T2: Treatment of Child Elements. *)

let test_t2_fold () =
  check string_t "leading attribute folds" "<el troubles=\"1\"/>"
    (run "let $x := attribute troubles {1} return <el> {$x} </el>")

let test_t2_duplicates () =
  (* Default (working-draft) behaviour: one of the two wins. *)
  let r =
    run
      "let $a := attribute a {1} let $b := attribute a {2} let $c := attribute b {3} \
       return <el> {$a}{$b}{$c} </el>"
  in
  check Alcotest.bool "one of the paper's two outcomes" true
    (r = "<el a=\"2\" b=\"3\"/>" || r = "<el a=\"1\" b=\"3\"/>");
  (* Galax-at-the-time behaviour: both kept. *)
  let galax =
    E.eval_query ~compat:Xquery.Context.galax_compat
      "let $a := attribute a {1} let $b := attribute a {2} let $c := attribute b {3} \
       return <el> {$a}{$b}{$c} </el>"
  in
  check string_t "galax keeps both" "<el a=\"1\" a=\"2\" b=\"3\"/>"
    (V.to_display_string galax)

let test_t2_attr_after_content () =
  match
    E.eval_query "let $x := attribute troubles {1} return <el> \"doom\" {$x} </el>"
  with
  | exception Err.Error { code; _ } -> check string_t "error code" "err:XQTY0024" code
  | r -> Alcotest.failf "expected XQTY0024, got %s" (V.to_display_string r)

(* The printable form of T1, used by the bench harness; keeping it here
   ensures the table the harness prints is the tested one. *)
let t1_report () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "T1: sequence/element indexing pitfalls (paper, Data Structures section)\n";
  Buffer.add_string b
    (Printf.sprintf "%-18s %-14s %-22s %-14s %-10s %-10s\n" "Result" "X" "Y" "Z"
       "seq[2]" "elem/node()[2]");
  let show r =
    let sq = run (seq_query r) in
    let el = run (elem_query r) in
    Buffer.add_string b
      (Printf.sprintf "%-18s %-14s %-22s %-14s %-10s %-10s\n" r.label r.x r.y r.z
         (if sq = "" then "()" else sq)
         (if el = "" then "()" else el))
  in
  List.iter show rows;
  let attr_result =
    match
      E.eval_query
        "let $X := 1 let $Y := attribute y {\"why?\"} let $Z := 2 return <el>{$X}{$Y}{$Z}</el>"
    with
    | exception Err.Error { code; _ } -> code
    | r -> V.to_display_string r
  in
  Buffer.add_string b
    (Printf.sprintf "%-18s %-14s %-22s %-14s %-10s %-10s\n" "An error (elem)" "1"
       "attribute y {\"why?\"}" "2" "why?" attr_result);
  Buffer.contents b

let test_report_builds () =
  let report = t1_report () in
  check Alcotest.bool "report mentions the error row" true
    (Astring.String.is_infix ~affix:"err:XQTY0024" report)

let suite =
  [
    ( "paper.t1-pitfalls",
      [
        Alcotest.test_case "sequence representation rows" `Quick test_t1_sequence_rows;
        Alcotest.test_case "element representation rows" `Quick test_t1_element_rows;
        Alcotest.test_case "attribute row errors" `Quick test_t1_attribute_row_errors;
        Alcotest.test_case "printable report" `Quick test_report_builds;
      ] );
    ( "paper.t2-attribute-folding",
      [
        Alcotest.test_case "folding" `Quick test_t2_fold;
        Alcotest.test_case "duplicates: draft vs galax" `Quick test_t2_duplicates;
        Alcotest.test_case "attribute after content" `Quick test_t2_attr_after_content;
      ] );
  ]
