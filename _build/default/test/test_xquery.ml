(* Tests for the XQuery engine: lexer quirks, parser, evaluation semantics,
   constructors, FLWOR, functions, and the paper-specific behaviours. *)

module N = Xml_base.Node
module V = Xquery.Value
module E = Xquery.Engine
module Err = Xquery.Errors

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Run a query and render the result the way a query shell would. *)
let run ?context_item ?vars ?compat ?optimize ?trace_out q =
  V.to_display_string (E.eval_query ?context_item ?vars ?compat ?optimize ?trace_out q)

let run_on_doc xml q =
  let doc = Xml_base.Parser.parse_string xml in
  run ~context_item:(V.Node doc) q

let expect_error code q =
  match E.eval_query q with
  | exception Err.Error { code = c; _ } ->
    check string_t ("error code for " ^ q) ("err:" ^ code) c
  | result ->
    Alcotest.failf "expected err:%s for %s, got %s" code q (V.to_display_string result)

let q_ok expected query () = check string_t query expected (run query)

(* ------------------------------------------------------------------ *)
(* Literals, arithmetic, sequences                                     *)
(* ------------------------------------------------------------------ *)

let basic_cases =
  [
    ("integer", "42", "42");
    ("negative", "-7", "-7");
    ("double", "2.5", "2.5");
    ("scientific", "1e3", "1000");
    ("string dq", "\"hi\"", "hi");
    ("string sq", "'hi'", "hi");
    ("string doubled quote", "\"a\"\"b\"", "a\"b");
    ("string entity", "\"x &amp; y\"", "x & y");
    ("add", "1 + 2", "3");
    ("precedence", "1 + 2 * 3", "7");
    ("sub", "10 - 4", "6");
    ("div is decimal", "7 div 2", "3.5");
    ("div of exact", "4 div 2", "2");
    ("idiv", "7 idiv 2", "3");
    ("idiv negative truncates", "-7 idiv 2", "-3");
    ("mod", "7 mod 3", "1");
    ("unary minus", "-(3 + 4)", "-7");
    ("range", "1 to 5", "1 2 3 4 5");
    ("range empty", "5 to 1", "");
    ("empty seq", "()", "");
    ("comma seq", "(1, 2, 3)", "1 2 3");
    ("flattening", "(1,(2,3,4),(),(5,((6,7))))", "1 2 3 4 5 6 7");
    ("arith with empty", "() + 1", "");
    ("parens", "(2 + 3) * 4", "20");
    ("comment ignored", "1 (: comment :) + 2", "3");
    ("nested comment", "1 (: a (: b :) c :) + 2", "3");
  ]

(* ------------------------------------------------------------------ *)
(* The paper's lexical quirks                                          *)
(* ------------------------------------------------------------------ *)

let test_dash_in_variable_name () =
  (* Quirk #3: $n-1 is a variable with a three-character name. *)
  check string_t "$n-1 is one variable"
    "99"
    (run ~vars:[ ("n-1", V.of_int 99); ("n", V.of_int 5) ] "$n-1");
  check string_t "spaced minus subtracts"
    "4"
    (run ~vars:[ ("n", V.of_int 5) ] "$n - 1");
  check string_t "parenthesized minus subtracts"
    "4"
    (run ~vars:[ ("n", V.of_int 5) ] "($n)-1")

let test_name_is_child_step_not_variable () =
  (* Quirk #1: x means "children named x", never "variable x". *)
  let xml = "<root><x>seen</x></root>" in
  check string_t "x is a child step" "seen"
    (run_on_doc xml "for $r in root return string($r/x)");
  (* With no context item, a bare name is an error about the context
     item, not about a variable. *)
  match E.eval_query "x" with
  | exception Err.Error { code; _ } -> check string_t "context error" "err:XPDY0002" code
  | _ -> Alcotest.fail "expected a context-item error"

let test_galax_error_message () =
  (* The message the paper quotes, behind the compat flag. *)
  match E.eval_query ~compat:Xquery.Context.galax_compat "x" with
  | exception Err.Error { message; _ } ->
    check string_t "galax message" "Internal_Error: Variable '$glx:dot' not found." message
  | _ -> Alcotest.fail "expected an error"

let test_general_eq_is_existential () =
  (* Quirk #4. *)
  check string_t "1 = (1,2,3)" "true" (run "1 = (1,2,3)");
  check string_t "(1,2,3) = 3" "true" (run "(1,2,3) = 3");
  check string_t "1 = 3" "false" (run "1 = 3");
  check string_t "(1,2) = (3,4)" "false" (run "(1,2) = (3,4)");
  check string_t "(1,2) != (1,2) is existential too" "true" (run "(1,2) != (1,2)");
  check string_t "empty = anything" "false" (run "() = (1,2)")

let test_value_comparisons_are_singleton () =
  check string_t "1 eq 1" "true" (run "1 eq 1");
  check string_t "1 lt 2" "true" (run "1 lt 2");
  check string_t "strings" "true" (run "'a' lt 'b'");
  expect_error "XPTY0004" "1 eq (1,2,3)";
  expect_error "XPTY0004" "'a' eq 1";
  check string_t "eq with empty is empty" "" (run "() eq 1")

(* ------------------------------------------------------------------ *)
(* Paths and axes                                                      *)
(* ------------------------------------------------------------------ *)

let book_xml =
  "<library><book year=\"1983\"><title>Tales</title><author>A</author></book>\
   <book year=\"2001\"><title>More</title><author>B</author>\
   <book year=\"1999\"><title>Nested</title></book></book>\
   <magazine year=\"1983\"><title>Weekly</title></magazine></library>"

let test_paths () =
  let r q = run_on_doc book_xml q in
  check string_t "child step" "2" (r "count(library/book)");
  check string_t "descendant //" "3" (r "count(library//book)");
  check string_t "leading //" "3" (r "count(//book)");
  check string_t "attribute" "1983" (r "string(library/book[1]/@year)");
  check string_t "predicate attr" "2" (r "count(//*[@year=\"1983\"])");
  check string_t "positional" "Tales" (r "string(library/book[1]/title)");
  check string_t "last()" "More" (r "string(library/book[last()]/title)");
  check string_t "wildcard" "3" (r "count(library/*)");
  check string_t "text()" "Tales" (r "string((//title/text())[1])");
  check string_t "parent" "book" (r "name((//title)[1]/parent::*)");
  check string_t "parent shorthand" "library" (r "name(library/book[1]/..)");
  check string_t "ancestor" "2" (r "count((//title)[3]/ancestor::book)");
  check string_t "self" "1" (r "count(library/self::library)");
  check string_t "following-sibling" "magazine"
    (r "name(library/book[2]/following-sibling::*)");
  check string_t "preceding-sibling nearest first" "More"
    (r "string(library/magazine/preceding-sibling::book[1]/title)");
  check string_t "descendant-or-self axis" "5"
    (r "count(library/book[2]/descendant-or-self::*)");
  check string_t "results in doc order dedup" "Tales More Nested Weekly"
    (r "string-join(//title/text(), ' ')");
  check string_t "attribute axis explicit" "1983"
    (r "string(library/book[1]/attribute::year)");
  check string_t "kind test element()" "3" (r "count(library/element())");
  check string_t "kind test element(name)" "2" (r "count(library/element(book))")

let test_path_errors () =
  expect_error "XPTY0019" "(1)/x";
  let doc = Xml_base.Parser.parse_string "<a><b>1</b><b>2</b></a>" in
  match E.eval_query ~context_item:(V.Node doc) "a/b/(1, text())" with
  | exception Err.Error { code; _ } -> check string_t "mixed path" "err:XPTY0018" code
  | _ -> Alcotest.fail "expected XPTY0018"

let test_filter_on_non_step () =
  check string_t "filter a literal sequence" "2" (run "(1,2,3)[2]");
  check string_t "boolean filter" "2 3" (run "(1,2,3)[. ge 2]");
  check string_t "position()" "1 2 3" (run "string-join(for $i in (7,8,9) return string((1,2,3)[position() = $i - 6]), ' ')")

(* ------------------------------------------------------------------ *)
(* FLWOR                                                               *)
(* ------------------------------------------------------------------ *)

let test_flwor () =
  check string_t "for" "2 4 6" (run "for $x in (1,2,3) return 2 * $x");
  check string_t "let" "10" (run "let $x := 5 return 2 * $x");
  check string_t "where" "3" (run "for $x in (1,2,3) where $x ge 3 return $x");
  check string_t "two fors nest" "11 21 12 22"
    (run "for $x in (1,2) for $y in (10,20) return $y + $x");
  check string_t "comma bindings" "11 21 12 22"
    (run "for $x in (1,2), $y in (10,20) return $y + $x");
  check string_t "at clause" "1:a 2:b"
    (run "string-join(for $x at $i in ('a','b') return concat($i, ':', $x), ' ')");
  check string_t "order by" "1 2 3" (run "for $x in (3,1,2) order by $x return $x");
  check string_t "order by descending" "3 2 1"
    (run "for $x in (3,1,2) order by $x descending return $x");
  check string_t "order by key expr" "c b a"
    (run "string-join(for $s in ('b','c','a') order by $s descending return $s, ' ')");
  check string_t "order by two keys" "a1 a2 b1"
    (run
       "string-join(for $s in ('b1','a2','a1') order by substring($s,1,1), substring($s,2,1) return $s, ' ')");
  check string_t "flwor flattening" "1 2 3 4"
    (run "for $x in ((1,2),(3,4)) return $x");
  check string_t "let rebinding shadows" "7"
    (run "let $x := 3 let $x := 7 return $x");
  check string_t "where between lets" "big"
    (run "let $x := 10 where $x gt 5 return 'big'")

let test_quantified () =
  check string_t "some true" "true" (run "some $x in (1,2,3) satisfies $x gt 2");
  check string_t "some false" "false" (run "some $x in (1,2,3) satisfies $x gt 5");
  check string_t "every true" "true" (run "every $x in (1,2,3) satisfies $x gt 0");
  check string_t "every false" "false" (run "every $x in (1,2,3) satisfies $x gt 1");
  check string_t "every empty" "true" (run "every $x in () satisfies $x gt 1");
  check string_t "some empty" "false" (run "some $x in () satisfies $x gt 1");
  check string_t "two bindings" "true"
    (run "some $x in (1,2), $y in (2,3) satisfies $x eq $y")

let test_if () =
  check string_t "then" "yes" (run "if (1 lt 2) then 'yes' else 'no'");
  check string_t "else" "no" (run "if (2 lt 1) then 'yes' else 'no'");
  check string_t "ebv of empty" "no" (run "if (()) then 'yes' else 'no'");
  check string_t "nested" "mid"
    (run "if (2 gt 3) then 'hi' else if (2 gt 1) then 'mid' else 'lo'")

(* ------------------------------------------------------------------ *)
(* User functions and prolog                                           *)
(* ------------------------------------------------------------------ *)

let test_user_functions () =
  check string_t "simple function" "25"
    (run "declare function local:sq($x) { $x * $x }; local:sq(5)");
  check string_t "recursion" "120"
    (run
       "declare function local:fact($n) { if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(5)");
  check string_t "mutual recursion" "true"
    (run
       "declare function local:even($n) { if ($n eq 0) then true() else local:odd($n - 1) }; \
        declare function local:odd($n) { if ($n eq 0) then false() else local:even($n - 1) }; \
        local:even(10)");
  check string_t "global variable" "12"
    (run "declare variable $base := 10; $base + 2");
  check string_t "globals visible in functions" "30"
    (run "declare variable $k := 3; declare function local:f($x) { $k * $x }; local:f(10)");
  expect_error "XPST0017" "local:nope(1)";
  expect_error "XPST0008" "$nope"

let test_typed_flwor_bindings () =
  (* let/for with [as T] annotations: ignored untyped, enforced typed. *)
  check string_t "annotation parsed and ignored untyped" "3"
    (run "let $x as xs:string := 3 return $x");
  (match E.eval_query ~typed_mode:true "let $x as xs:string := 3 return $x" with
  | exception Err.Error { code; _ } -> check string_t "typed let" "err:XPTY0004" code
  | _ -> Alcotest.fail "typed mode should reject the let");
  check string_t "typed let ok" "6"
    (V.to_display_string
       (E.eval_query ~typed_mode:true "let $x as xs:integer := 3 return $x * 2"));
  (match E.eval_query ~typed_mode:true "for $x as xs:string in (1,2) return $x" with
  | exception Err.Error { code; _ } -> check string_t "typed for" "err:XPTY0004" code
  | _ -> Alcotest.fail "typed mode should reject the for");
  check string_t "typed for ok" "1 2"
    (V.to_display_string
       (E.eval_query ~typed_mode:true "for $x as xs:integer in (1,2) return $x"))

let test_typed_mode () =
  let q =
    "declare function local:len($s as xs:string) as xs:integer { string-length($s) }; \
     local:len(5)"
  in
  (* Untyped mode does not enforce the annotation (string-length accepts
     the int's string form? no — it expects a string; but the annotation
     itself is not checked). Typed mode rejects at the call. *)
  (match E.eval_query ~typed_mode:true q with
  | exception Err.Error { code; _ } -> check string_t "typed arg" "err:XPTY0004" code
  | _ -> Alcotest.fail "typed mode should reject");
  check string_t "typed ok" "2"
    (run "declare function local:len($s as xs:string) as xs:integer { string-length($s) }; local:len('hi')")

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let test_direct_constructors () =
  check string_t "empty element" "<a/>" (run "<a/>");
  check string_t "attributes" "<a x=\"1\" y=\"2\"/>" (run "<a x=\"1\" y='2'/>");
  check string_t "text content" "<a>hi</a>" (run "<a>hi</a>");
  check string_t "nested" "<a><b>x</b></a>" (run "<a><b>x</b></a>");
  check string_t "enclosed atomic" "<a>5</a>" (run "<a>{2 + 3}</a>");
  check string_t "enclosed sequence spaced" "<a>1 2 3</a>" (run "<a>{1,2,3}</a>");
  check string_t "adjacent enclosed no space" "<a>12</a>" (run "<a>{1}{2}</a>");
  check string_t "avt" "<a x=\"v5\"/>" (run "<a x=\"v{2+3}\"/>");
  check string_t "avt sequence" "<a x=\"1 2\"/>" (run "<a x=\"{1,2}\"/>");
  check string_t "brace escape" "<a>{not expr}</a>" (run "<a>{{not expr}}</a>");
  check string_t "mixed" "<a>one<b/>two</a>" (run "<a>one<b/>two</a>");
  check string_t "enclosed element" "<a><b/></a>" (run "<a>{<b/>}</a>");
  check string_t "comment in content" "<a><!--note--></a>" (run "<a><!--note--></a>");
  check string_t "entity in content" "<a>&lt;&amp;&gt;</a>" (run "<a>&lt;&amp;&gt;</a>");
  check string_t "cdata" "<a>&lt;raw&gt;</a>" (run "<a><![CDATA[<raw>]]></a>")

let test_computed_constructors () =
  check string_t "computed element" "<a>x</a>" (run "element a { 'x' }");
  check string_t "computed name" "<dyn/>" (run "element { concat('d','yn') } {}");
  check string_t "computed attribute" "<a n=\"5\"/>" (run "<a>{attribute n { 5 }}</a>");
  check string_t "computed text" "<a>7</a>" (run "<a>{text { 7 }}</a>");
  check string_t "document node" "<r/>" (run "document { <r/> }");
  check string_t "element with computed content" "<s><i>1</i><i>2</i></s>"
    (run "element s { for $x in (1,2) return element i { $x } }")

let test_constructed_nodes_are_copies () =
  check string_t "construction copies, no identity" "false"
    (run "let $b := <b/> let $a := <a>{$b}</a> return $a/b is $b");
  check string_t "copies are deep-equal" "true"
    (run "let $b := <b x=\"1\">t</b> let $a := <a>{$b}</a> return deep-equal($a/b, $b)")

(* The paper's attribute-folding section, all three behaviours. *)
let test_attribute_folding () =
  check string_t "attribute becomes attribute of parent" "<el troubles=\"1\"/>"
    (run "let $x := attribute troubles {1} return <el> {$x} </el>");
  check string_t "several attributes fold" "<el a=\"1\" b=\"2\"/>"
    (run "let $a := attribute a {1} let $b := attribute b {2} return <el>{$a}{$b}</el>");
  (* Duplicate names: default policy keeps one. *)
  check string_t "duplicate keeps one" "<el b=\"3\" a=\"2\"/>"
    (String.concat ""
       [
         (let r =
            run
              "let $a := attribute a {1} let $b := attribute a {2} let $c := attribute b {3} \
               return <el> {$a}{$b}{$c} </el>"
          in
          (* Accept either of the paper's two allowed outcomes. *)
          if r = "<el a=\"2\" b=\"3\"/>" || r = "<el a=\"1\" b=\"3\"/>" then
            "<el b=\"3\" a=\"2\"/>"
          else r);
       ]);
  (* Galax compat keeps both. *)
  let galax =
    E.eval_query ~compat:Xquery.Context.galax_compat
      "let $a := attribute a {1} let $b := attribute a {2} return <el>{$a}{$b}</el>"
  in
  check string_t "galax keeps duplicates" "<el a=\"1\" a=\"2\"/>"
    (V.to_display_string galax);
  (* Attribute after content is an error. *)
  expect_error "XQTY0024" "let $x := attribute troubles {1} return <el> doom {$x} </el>"

(* The paper's seven-row pitfalls table lives in its own test (see
   test_paper_tables.ml); here only the machinery it relies on. *)

let test_ebv () =
  check string_t "node is true" "true" (run "boolean(<a/>)");
  check string_t "empty string false" "false" (run "boolean('')");
  check string_t "zero false" "false" (run "boolean(0)");
  check string_t "NaN false" "false" (run "boolean(number('x'))");
  expect_error "FORG0006" "boolean((1,2))"

(* ------------------------------------------------------------------ *)
(* Builtin functions                                                   *)
(* ------------------------------------------------------------------ *)

let function_cases =
  [
    ("count", "count((1,2,3))", "3");
    ("count empty", "count(())", "0");
    ("sum", "sum((1,2,3))", "6");
    ("sum empty", "sum(())", "0");
    ("sum doubles", "sum((1.5, 2.5))", "4");
    ("avg", "avg((1,2,3))", "2");
    ("avg empty", "avg(())", "");
    ("max", "max((1,5,3))", "5");
    ("min", "min((4,2,9))", "2");
    ("max strings", "max(('a','c','b'))", "c");
    ("abs", "abs(-4)", "4");
    ("floor", "floor(2.7)", "2");
    ("ceiling", "ceiling(2.1)", "3");
    ("round", "round(2.5)", "3");
    ("round negative", "round(-2.5)", "-2");
    ("round-half-to-even up", "round-half-to-even(2.5)", "2");
    ("round-half-to-even down", "round-half-to-even(3.5)", "4");
    ("round-half-to-even plain", "round-half-to-even(2.4)", "2");
    ("compare less", "compare('a', 'b')", "-1");
    ("compare equal", "compare('x', 'x')", "0");
    ("compare ints", "compare(5, 3)", "1");
    ("compare empty", "compare((), 'a')", "");
    ("number bad", "string(number('zap'))", "NaN");
    ("concat", "concat('a', 'b', 'c')", "abc");
    ("concat many", "concat('a','b','c','d','e','f','g')", "abcdefg");
    ("string-join", "string-join(('a','b','c'), '-')", "a-b-c");
    ("substring", "substring('hello', 2)", "ello");
    ("substring len", "substring('hello', 2, 3)", "ell");
    ("substring fractional", "substring('hello', 1.5, 2.6)", "ell");
    ("string-length", "string-length('hello')", "5");
    ("normalize-space", "normalize-space('  a   b ')", "a b");
    ("upper-case", "upper-case('mix')", "MIX");
    ("lower-case", "lower-case('MIX')", "mix");
    ("translate", "translate('abcabc', 'abc', 'AB')", "ABAB");
    ("contains", "contains('hello', 'ell')", "true");
    ("contains empty needle", "contains('x', '')", "true");
    ("starts-with", "starts-with('hello', 'he')", "true");
    ("ends-with", "ends-with('hello', 'lo')", "true");
    ("substring-before", "substring-before('a/b', '/')", "a");
    ("substring-after", "substring-after('a/b', '/')", "b");
    ("substring-before missing", "substring-before('ab', 'x')", "");
    ("matches", "matches('abc123', '[0-9]+')", "true");
    ("matches anchors", "matches('abc', '^a.c$')", "true");
    ("matches flags", "matches('ABC', 'abc', 'i')", "true");
    ("replace", "replace('banana', 'a', 'o')", "bonono");
    ("replace groups", "replace('2026-07-06', '(\\d+)-(\\d+)-(\\d+)', '$3/$2/$1')", "06/07/2026");
    ("tokenize", "string-join(tokenize('a,b,,c', ','), '|')", "a|b||c");
    ("not", "not(0)", "true");
    ("boolean", "boolean('x')", "true");
    ("empty", "empty(())", "true");
    ("exists", "exists((1))", "true");
    ("distinct-values", "distinct-values((1, 2, 1, 3, 2))", "1 2 3");
    ("distinct across types", "distinct-values(('1', 1))", "1 1");
    ("reverse", "reverse((1,2,3))", "3 2 1");
    ("insert-before", "insert-before((1,2,3), 2, (9))", "1 9 2 3");
    ("remove", "remove((1,2,3), 2)", "1 3");
    ("subsequence", "subsequence((1,2,3,4,5), 2, 3)", "2 3 4");
    ("index-of", "index-of((10,20,10), 10)", "1 3");
    ("zero-or-one", "zero-or-one(())", "");
    ("exactly-one", "exactly-one((5))", "5");
    ("deep-equal atoms", "deep-equal((1,2), (1,2))", "true");
    ("deep-equal nodes", "deep-equal(<a x=\"1\"><b/></a>, <a x=\"1\"><b/></a>)", "true");
    ("deep-equal differs", "deep-equal(<a/>, <b/>)", "false");
    ("string-to-codepoints", "string-to-codepoints('AB')", "65 66");
    ("codepoints-to-string", "codepoints-to-string((72,105))", "Hi");
    ("xs:integer cast fn", "xs:integer('12') + 1", "13");
    ("xs:string cast fn", "xs:string(12)", "12");
    ("cast as", "'12' cast as xs:integer", "12");
    ("castable ok", "'12' castable as xs:integer", "true");
    ("castable no", "'x' castable as xs:integer", "false");
    ("name()", "name(<foo/>)", "foo");
    ("local-name()", "local-name(<a:foo xmlns:a=\"u\"/>)", "foo");
    ("root()", "name(root(<a/>))", "a");
    ("data", "data(<a>5</a>) + 1", "6");
  ]

let test_error_fn () =
  expect_error "FOER0000" "error()";
  (match E.eval_query "error('local:oops', 'it broke')" with
  | exception Err.Error { code; message } ->
    check string_t "code" "err:local:oops" code;
    check string_t "message" "it broke" message
  | _ -> Alcotest.fail "error() must raise");
  (* error() kills the program: the paper used it for binary-search
     debugging because nothing else printed. *)
  match E.eval_query "(1, error('x'), 3)" with
  | exception Err.Error _ -> ()
  | _ -> Alcotest.fail "sequence containing error() must raise"

let test_trace_fn () =
  let traced = ref [] in
  let result =
    E.eval_query ~trace_out:(fun s -> traced := s :: !traced) "trace(40 + 2, 'x=')"
  in
  check string_t "value passes through" "42" (V.to_display_string result);
  check (Alcotest.list string_t) "trace output" [ "x= 42" ] !traced

let test_positional_functions () =
  check string_t "position in predicate" "b"
    (run "string-join(('a','b','c')[position() = 2], '')");
  check string_t "last in predicate" "c" (run "string-join(('a','b','c')[last()], '')")

let test_doc_function () =
  let doc = Xml_base.Parser.parse_string "<store><n>9</n></store>" in
  let resolver uri = if uri = "store.xml" then Some doc else None in
  let result =
    E.eval_query ~doc_resolver:resolver "string(doc('store.xml')/store/n)"
  in
  check string_t "doc()" "9" (V.to_display_string result);
  match E.eval_query ~doc_resolver:resolver "doc('missing.xml')" with
  | exception Err.Error { code; _ } -> check string_t "missing doc" "err:FODC0002" code
  | _ -> Alcotest.fail "expected FODC0002"

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_optimizer_preserves_results () =
  let queries =
    [
      "1 + 2 * 3";
      "for $x in (3,1,2) order by $x return $x * 2";
      "let $a := 5 let $b := $a + 1 return $b";
      "if (1 lt 2) then 'a' else 'b'";
      "<a x=\"{1+1}\">{for $i in (1,2) return <b>{$i}</b>}</a>";
    ]
  in
  List.iter
    (fun q ->
      check string_t ("optimize-invariant: " ^ q) (run ~optimize:false q)
        (run ~optimize:true q))
    queries

let test_dead_let_elimination () =
  let compiled =
    E.compile ~compat:Xquery.Context.galax_compat
      "let $x := 1 let $dummy := trace('x=', $x) let $y := 2 return $x + $y"
  in
  (match compiled.E.opt_stats with
  | Some stats ->
    check int_t "one let eliminated" 1 stats.Xquery.Optimizer.lets_eliminated;
    check int_t "the trace is gone" 1 stats.Xquery.Optimizer.traces_eliminated
  | None -> Alcotest.fail "optimizer should have run");
  (* The program still runs — and prints nothing: the paper's problem. *)
  let traced = ref [] in
  let result = E.execute ~trace_out:(fun s -> traced := s :: !traced) compiled in
  check string_t "result unchanged" "3" (V.to_display_string result);
  check int_t "no trace output: silently optimized away" 0 (List.length !traced)

let test_insinuated_trace_survives () =
  (* The paper's workaround: insinuate the trace into non-dead code. *)
  let compiled =
    E.compile ~compat:Xquery.Context.galax_compat
      "let $x := trace(1, 'x=') let $y := 2 return $x + $y"
  in
  let traced = ref [] in
  let result = E.execute ~trace_out:(fun s -> traced := s :: !traced) compiled in
  check string_t "result" "3" (V.to_display_string result);
  check int_t "trace survives" 1 (List.length !traced)

let test_default_mode_keeps_traces () =
  (* With the fixed optimizer (default compat), the dead let containing a
     trace is NOT eliminated. *)
  let compiled =
    E.compile "let $dummy := trace('v', 'lbl') return 7"
  in
  let traced = ref [] in
  let result = E.execute ~trace_out:(fun s -> traced := s :: !traced) compiled in
  check string_t "result" "7" (V.to_display_string result);
  check int_t "trace preserved" 1 (List.length !traced)

(* ------------------------------------------------------------------ *)
(* Static checking and treat-as                                        *)
(* ------------------------------------------------------------------ *)

let static_fails ?(external_vars = []) code q =
  match E.compile ~static_check:external_vars q with
  | exception Err.Error { code = c; _ } ->
    check string_t ("static: " ^ q) ("err:" ^ code) c
  | _ -> Alcotest.failf "expected static err:%s for %s" code q

let test_static_check () =
  static_fails "XPST0008" "$nope";
  static_fails "XPST0008" "let $x := 1 return $y";
  static_fails "XPST0017" "frobnicate(1)";
  static_fails "XPST0017" "count(1, 2)";
  (* function bodies are checked too *)
  static_fails "XPST0008" "declare function local:f($a) { $b }; local:f(1)";
  (* externally-promised variables pass *)
  ignore (E.compile ~static_check:[ "model" ] "$model/node");
  static_fails ~external_vars:[ "model" ] "XPST0008" "$model/node[@id = $missing]";
  (* valid programs pass: bindings from for/let/quantifiers/at are seen *)
  ignore
    (E.compile ~static_check:[]
       "declare variable $g := 5; declare function local:f($a) { $a + $g }; \
        for $x at $i in (1,2) let $y := local:f($x) \
        where some $q in (1) satisfies $q eq $i return $y");
  (* the paper's $n-1 confusion becomes a compile-time message *)
  static_fails "XPST0008" "let $n := 5 return $n-1"

let test_treat_as () =
  check string_t "treat passes through" "5" (run "(5 treat as xs:integer) + 0");
  check string_t "treat sequence type" "2"
    (run "count((1, 2) treat as xs:integer+) cast as xs:string");
  (match E.eval_query "('a', 'b') treat as xs:string" with
  | exception Err.Error { code; _ } -> check string_t "cardinality" "err:XPDY0050" code
  | _ -> Alcotest.fail "expected XPDY0050");
  match E.eval_query "<a/> treat as xs:integer" with
  | exception Err.Error { code; _ } -> check string_t "wrong type" "err:XPDY0050" code
  | _ -> Alcotest.fail "expected XPDY0050"

let test_instance_of () =
  check string_t "int is integer" "true" (run "5 instance of xs:integer");
  check string_t "int is not string" "false" (run "5 instance of xs:string");
  check string_t "element test" "true" (run "<a/> instance of element(a)");
  check string_t "element name mismatch" "false" (run "<a/> instance of element(b)");
  check string_t "occurrence star" "true" (run "(1,2,3) instance of xs:integer*");
  check string_t "occurrence one fails" "false" (run "(1,2) instance of xs:integer");
  check string_t "empty-sequence" "true" (run "() instance of empty-sequence()");
  check string_t "optional" "true" (run "() instance of xs:integer?")

(* ------------------------------------------------------------------ *)
(* Syntax errors                                                       *)
(* ------------------------------------------------------------------ *)

let test_syntax_errors () =
  let syntax_fails q =
    match E.eval_query q with
    | exception Err.Error { code = "err:XPST0003"; _ } -> true
    | exception Err.Error _ -> false
    | _ -> false
  in
  check bool_t "unclosed paren" true (syntax_fails "(1, 2");
  check bool_t "bad operator" true (syntax_fails "1 ! 2");
  check bool_t "dangling let" true (syntax_fails "let $x := 1");
  check bool_t "mismatched constructor" true (syntax_fails "<a></b>");
  check bool_t "unterminated string" true (syntax_fails "'abc");
  check bool_t "unterminated comment" true (syntax_fails "1 (: no end");
  check bool_t "garbage after body" true (syntax_fails "1 2")

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random simple integer-expression generator for optimizer invariance. *)
let gen_int_expr =
  let open QCheck.Gen in
  let rec expr depth =
    if depth = 0 then map string_of_int (int_range 0 20)
    else
      frequency
        [
          (2, map string_of_int (int_range 0 20));
          ( 2,
            let* a = expr (depth - 1) in
            let* b = expr (depth - 1) in
            let* op = oneofl [ "+"; "-"; "*" ] in
            return (Printf.sprintf "(%s %s %s)" a op b) );
          ( 1,
            let* a = expr (depth - 1) in
            let* b = expr (depth - 1) in
            let* c = expr (depth - 1) in
            return (Printf.sprintf "(if (%s lt %s) then %s else %s)" a b c a) );
          ( 1,
            let* a = expr (depth - 1) in
            let* b = expr (depth - 1) in
            return (Printf.sprintf "(let $v := %s return $v + %s)" a b) );
          ( 1,
            let* a = expr (depth - 1) in
            return (Printf.sprintf "sum(for $i in (1 to 3) return %s)" a) );
        ]
  in
  QCheck.make (expr 3) ~print:(fun s -> s)

let prop_optimizer_invariant =
  QCheck.Test.make ~name:"optimizer preserves random expression values" ~count:150
    gen_int_expr (fun q -> run ~optimize:true q = run ~optimize:false q)

let prop_flattening_depth_free =
  (* Sequences built from nested parentheses always flatten: count equals
     the number of leaf integers. *)
  let gen =
    let open QCheck.Gen in
    let rec seq depth =
      if depth = 0 then return ("1", 1)
      else
        frequency
          [
            (2, return ("1", 1));
            ( 2,
              let* parts = list_size (int_range 0 4) (seq (depth - 1)) in
              let strs = List.map fst parts and counts = List.map snd parts in
              return
                ( "(" ^ String.concat ", " strs ^ ")",
                  List.fold_left ( + ) 0 counts ) );
          ]
    in
    QCheck.make (seq 4) ~print:fst
  in
  QCheck.Test.make ~name:"nested sequence constructors always flatten" ~count:200 gen
    (fun (q, n) -> run ("count(" ^ q ^ ")") = string_of_int n)

let prop_general_eq_existential =
  (* a = b on integer lists iff the lists intersect. *)
  let gen = QCheck.(pair (list_of_size Gen.(int_bound 5) small_nat) (list_of_size Gen.(int_bound 5) small_nat)) in
  QCheck.Test.make ~name:"general = means nonempty intersection" ~count:200 gen
    (fun (l1, l2) ->
      let lit l = "(" ^ String.concat "," (List.map string_of_int l) ^ ")" in
      let expected = List.exists (fun x -> List.mem x l2) l1 in
      run (lit l1 ^ " = " ^ lit l2) = string_of_bool expected)

let suite =
  [
    ( "xquery.basics",
      List.map
        (fun (name, q, expected) -> Alcotest.test_case name `Quick (q_ok expected q))
        basic_cases );
    ( "xquery.quirks",
      [
        Alcotest.test_case "dash in variable names" `Quick test_dash_in_variable_name;
        Alcotest.test_case "bare name is a child step" `Quick test_name_is_child_step_not_variable;
        Alcotest.test_case "galax error message" `Quick test_galax_error_message;
        Alcotest.test_case "general = is existential" `Quick test_general_eq_is_existential;
        Alcotest.test_case "value comparisons are singleton" `Quick test_value_comparisons_are_singleton;
      ] );
    ( "xquery.paths",
      [
        Alcotest.test_case "axes and predicates" `Quick test_paths;
        Alcotest.test_case "path type errors" `Quick test_path_errors;
        Alcotest.test_case "filters on plain sequences" `Quick test_filter_on_non_step;
      ] );
    ( "xquery.flwor",
      [
        Alcotest.test_case "for/let/where/order by" `Quick test_flwor;
        Alcotest.test_case "quantified expressions" `Quick test_quantified;
        Alcotest.test_case "conditionals" `Quick test_if;
      ] );
    ( "xquery.functions-and-prolog",
      [
        Alcotest.test_case "user functions" `Quick test_user_functions;
        Alcotest.test_case "typed mode" `Quick test_typed_mode;
        Alcotest.test_case "typed FLWOR bindings" `Quick test_typed_flwor_bindings;
        Alcotest.test_case "fn:error" `Quick test_error_fn;
        Alcotest.test_case "fn:trace" `Quick test_trace_fn;
        Alcotest.test_case "position/last" `Quick test_positional_functions;
        Alcotest.test_case "fn:doc with resolver" `Quick test_doc_function;
      ] );
    ( "xquery.builtins",
      List.map
        (fun (name, q, expected) -> Alcotest.test_case name `Quick (q_ok expected q))
        function_cases );
    ( "xquery.constructors",
      [
        Alcotest.test_case "direct constructors" `Quick test_direct_constructors;
        Alcotest.test_case "computed constructors" `Quick test_computed_constructors;
        Alcotest.test_case "construction copies nodes" `Quick test_constructed_nodes_are_copies;
        Alcotest.test_case "attribute folding (paper)" `Quick test_attribute_folding;
        Alcotest.test_case "effective boolean value" `Quick test_ebv;
      ] );
    ( "xquery.optimizer",
      [
        Alcotest.test_case "results preserved" `Quick test_optimizer_preserves_results;
        Alcotest.test_case "dead let deletes trace (galax mode)" `Quick test_dead_let_elimination;
        Alcotest.test_case "insinuated trace survives" `Quick test_insinuated_trace_survives;
        Alcotest.test_case "default mode keeps traces" `Quick test_default_mode_keeps_traces;
      ] );
    ( "xquery.static-and-types",
      [
        Alcotest.test_case "static checking" `Quick test_static_check;
        Alcotest.test_case "treat as" `Quick test_treat_as;
        Alcotest.test_case "instance of" `Quick test_instance_of;
      ] );
    ( "xquery.syntax-errors",
      [ Alcotest.test_case "malformed queries" `Quick test_syntax_errors ] );
    ( "xquery.properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_optimizer_invariant; prop_flattening_depth_free; prop_general_eq_existential ] );
  ]
