(* Tests for the XQuery utility library — and demonstrations of exactly
   where the paper says such libraries break. *)

module U = Xqlib.Xq_utils
module V = Xquery.Value
module Err = Xquery.Errors

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool

let run = U.eval_string

(* ------------------------------------------------------------------ *)
(* String sets (sequences of strings — the only sets that work)        *)
(* ------------------------------------------------------------------ *)

let test_set_basics () =
  check string_t "empty" "" (run "util:set-empty()");
  check string_t "add" "a" (run "util:set-add(util:set-empty(), 'a')");
  check string_t "add is idempotent" "a"
    (run "util:set-add(util:set-add((), 'a'), 'a')");
  check string_t "member yes" "true" (run "util:set-member(('a','b'), 'b')");
  check string_t "member no" "false" (run "util:set-member(('a','b'), 'c')");
  check string_t "union" "a b c" (run "util:set-union(('a','b'), ('b','c'))");
  check string_t "intersection" "b" (run "util:set-intersection(('a','b'), ('b','c'))");
  check string_t "difference" "a" (run "util:set-difference(('a','b'), ('b','c'))");
  check string_t "size" "3" (run "util:set-size(util:set-union(('a','b'), ('c','a')))")

let test_sets_of_sequences_break () =
  (* The paper's discovery: a "set of points" where points are sequences
     does not survive insertion — the structure washes out. *)
  check string_t "two 2-element points become 4 strings" "4"
    (run "util:set-size(util:set-add(util:set-add((), ('1','2')), ('3','4')))");
  (* And a set of attribute nodes can't be counted on either: atomization
     in the membership test compares values, not nodes. *)
  check string_t "attribute values conflated" "true"
    (run
       "let $a := attribute x {'v'} let $b := attribute y {'v'} \
        return util:set-member(($a), string($b))")

(* ------------------------------------------------------------------ *)
(* Strings and elements                                                *)
(* ------------------------------------------------------------------ *)

let test_trim () =
  check string_t "trim both" "a  b"
    (run "util:without-leading-or-trailing-spaces('   a  b  ')");
  check string_t "inner runs preserved (unlike normalize-space)" "a  b"
    (run "util:without-leading-or-trailing-spaces('a  b')");
  check string_t "all spaces" "" (run "util:without-leading-or-trailing-spaces('   ')");
  check string_t "empty" "" (run "util:without-leading-or-trailing-spaces('')");
  check string_t "tabs and newlines" "x"
    (run "util:without-leading-or-trailing-spaces(concat(codepoints-to-string((9,10)), 'x', codepoints-to-string((13,32))))")

let test_string_utils () =
  check string_t "repeat" "ababab" (run "util:string-repeat('ab', 3)");
  check string_t "repeat zero" "" (run "util:string-repeat('ab', 0)");
  check string_t "pad-left" "   x" (run "util:pad-left('x', 4)")

let test_child_element_named () =
  check string_t "finds first" "1"
    (run "string(util:child-element-named(<a><b>1</b><b>2</b><c>3</c></a>, 'b'))");
  check string_t "children-named count" "2"
    (run "count(util:children-named(<a><b>1</b><b>2</b><c>3</c></a>, 'b'))");
  check string_t "missing child" "0"
    (run "count(util:child-element-named(<a><b/></a>, 'z'))");
  check string_t "has-child" "true" (run "util:has-child-named(<a><b/></a>, 'b')")

(* ------------------------------------------------------------------ *)
(* Binary search and trigonometry                                      *)
(* ------------------------------------------------------------------ *)

let test_binary_search () =
  check string_t "found middle" "3" (run "util:index-of-sorted((2,4,6,8,10), 6)");
  check string_t "found first" "1" (run "util:index-of-sorted((2,4,6,8,10), 2)");
  check string_t "found last" "5" (run "util:index-of-sorted((2,4,6,8,10), 10)");
  check string_t "missing" "0" (run "util:index-of-sorted((2,4,6,8,10), 7)");
  check string_t "empty" "0" (run "util:index-of-sorted((), 7)");
  check string_t "singleton hit" "1" (run "util:index-of-sorted((5), 5)")

let close ?(eps = 1e-6) a b = Float.abs (a -. b) < eps

let eval_float q =
  match U.eval q with
  | [ V.Atomic a ] -> V.double_of_atomic a
  | other -> Alcotest.failf "expected one number, got %s" (V.to_display_string other)

let test_trig () =
  check bool_t "sin 0" true (close (eval_float "util:sin(0)") 0.0);
  check bool_t "sin pi/2" true (close (eval_float "util:sin(util:pi() div 2)") 1.0);
  check bool_t "sin pi/6" true (close (eval_float "util:sin(util:pi() div 6)") 0.5);
  check bool_t "sin is odd" true
    (close (eval_float "util:sin(1.1) + util:sin(-1.1)") 0.0);
  check bool_t "cos 0" true (close (eval_float "util:cos(0)") 1.0);
  check bool_t "cos pi" true (close (eval_float "util:cos(util:pi())") (-1.0));
  check bool_t "pythagoras" true
    (close
       (eval_float
          "let $x := 0.7 return util:sin($x) * util:sin($x) + util:cos($x) * util:cos($x)")
       1.0);
  check bool_t "period reduction" true
    (close ~eps:1e-4
       (eval_float "util:sin(9 * util:pi() + util:pi() div 6)")
       (-0.5));
  check bool_t "degrees" true
    (close (eval_float "util:sin(util:deg-to-rad(30))") 0.5)

(* Property: the string-set union really behaves like a set union. *)
let prop_set_union =
  let gen = QCheck.(pair (list_of_size Gen.(int_bound 6) (string_gen_of_size (Gen.return 1) Gen.(map (fun n -> Char.chr (97 + n)) (int_bound 5)))) (list_of_size Gen.(int_bound 6) (string_gen_of_size (Gen.return 1) Gen.(map (fun n -> Char.chr (97 + n)) (int_bound 5))))) in
  QCheck.Test.make ~name:"xq set union agrees with model sets" ~count:60 gen
    (fun (l1, l2) ->
      let dedup l = List.sort_uniq compare l in
      let lit l = "(" ^ String.concat "," (List.map (Printf.sprintf "'%s'") l) ^ ")" in
      (* our sets keep first-occurrence order; compare as sorted sets *)
      let result =
        U.eval (Printf.sprintf "util:set-union(util:set-union((), %s), %s)" (lit l1) (lit l2))
        |> List.map (function
             | V.Atomic a -> V.string_of_atomic a
             | V.Node _ -> "?")
      in
      (* set-union((), l1) does not dedup l1 itself unless built by add;
         so feed deduped inputs. *)
      ignore result;
      let l1 = dedup l1 and l2 = dedup l2 in
      let result =
        U.eval (Printf.sprintf "util:set-union(%s, %s)" (lit l1) (lit l2))
        |> List.map (function
             | V.Atomic a -> V.string_of_atomic a
             | V.Node _ -> "?")
      in
      dedup result = dedup (l1 @ l2))

let suite =
  [
    ( "xqlib.sets",
      [
        Alcotest.test_case "string sets" `Quick test_set_basics;
        Alcotest.test_case "sets of sequences break (paper)" `Quick test_sets_of_sequences_break;
      ] );
    ( "xqlib.strings-and-elements",
      [
        Alcotest.test_case "trim" `Quick test_trim;
        Alcotest.test_case "repeat/pad" `Quick test_string_utils;
        Alcotest.test_case "child-element-named" `Quick test_child_element_named;
      ] );
    ( "xqlib.algorithms",
      [
        Alcotest.test_case "binary search" `Quick test_binary_search;
        Alcotest.test_case "trigonometry" `Quick test_trig;
      ] );
    ("xqlib.properties", [ QCheck_alcotest.to_alcotest prop_set_union ]);
  ]
