(* Tests for the XML substrate: node model, parser, serializer. *)

module N = Xml_base.Node
module P = Xml_base.Parser
module S = Xml_base.Serialize

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let parse = P.parse_string
let root_elt s = match N.children (parse s) with e :: _ -> e | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Node model                                                          *)
(* ------------------------------------------------------------------ *)

let test_construction () =
  let e =
    N.element "book"
      ~attrs:[ N.attribute "year" "1983" ]
      ~children:[ N.text "hi"; N.element "chapter" ]
  in
  check string_t "name" "book" (N.name e);
  check int_t "children" 2 (List.length (N.children e));
  check int_t "attributes" 1 (List.length (N.attributes e));
  check (Alcotest.option string_t) "attr" (Some "1983") (N.attr e "year");
  check (Alcotest.option string_t) "missing attr" None (N.attr e "missing")

let test_parent_links () =
  let kid = N.element "kid" in
  let e = N.element "parent" ~children:[ kid ] in
  (match N.parent kid with
  | Some p -> check bool_t "parent is e" true (N.same p e)
  | None -> Alcotest.fail "kid should have a parent");
  check bool_t "root" true (N.same (N.root kid) e)

let test_single_parent_enforced () =
  let kid = N.element "kid" in
  let _ = N.element "a" ~children:[ kid ] in
  Alcotest.check_raises "second attach rejected"
    (Invalid_argument
       "Xml_base.Node: node already has a parent (detach or copy it first)")
    (fun () -> ignore (N.element "b" ~children:[ kid ]))

let test_string_value () =
  let e = root_elt "<a>one<b>two<c>three</c></b><!--no-->four</a>" in
  check string_t "concatenated text" "onetwothreefour" (N.string_value e)

let test_descendants_order () =
  let e = root_elt "<a><b><c/></b><d/></a>" in
  let names = List.map N.name (N.descendants e) in
  check (Alcotest.list string_t) "document order" [ "b"; "c"; "d" ] names

let test_axes () =
  let e = root_elt "<a><b/><c/><d/><e/></a>" in
  let c = List.nth (N.children e) 1 in
  check (Alcotest.list string_t) "following" [ "d"; "e" ]
    (List.map N.name (N.following_siblings c));
  check (Alcotest.list string_t) "preceding nearest-first" [ "b" ]
    (List.map N.name (N.preceding_siblings c));
  let d = List.nth (N.children e) 2 in
  check (Alcotest.list string_t) "preceding of d" [ "c"; "b" ]
    (List.map N.name (N.preceding_siblings d));
  check (Alcotest.list string_t) "ancestors nearest-first" [ "a" ]
    (List.filter_map
       (fun n -> if N.is_element n then Some (N.name n) else None)
       (N.ancestors c));
  check int_t "document ends the chain" 2 (List.length (N.ancestors c))

let test_document_order_compare () =
  let doc = parse "<a y=\"1\"><b><c/></b><d/></a>" in
  let a = List.hd (N.children doc) in
  let b = List.hd (N.children a) in
  let c = List.hd (N.children b) in
  let d = List.nth (N.children a) 1 in
  let y = List.hd (N.attributes a) in
  check bool_t "a < b" true (N.compare_document_order a b < 0);
  check bool_t "b < c" true (N.compare_document_order b c < 0);
  check bool_t "c < d" true (N.compare_document_order c d < 0);
  check bool_t "attr after owner" true (N.compare_document_order a y < 0);
  check bool_t "attr before children" true (N.compare_document_order y b < 0);
  check int_t "reflexive" 0 (N.compare_document_order c c);
  check bool_t "antisymmetric" true (N.compare_document_order d c > 0)

let test_cross_tree_order () =
  let t1 = N.element "first" in
  let t2 = N.element "second" in
  check bool_t "creation order across trees" true (N.compare_document_order t1 t2 < 0)

let test_mutation () =
  let e = root_elt "<a><b/><c/></a>" in
  let b = List.hd (N.children e) in
  N.remove_child e b;
  check (Alcotest.list string_t) "removed" [ "c" ] (List.map N.name (N.children e));
  check bool_t "b detached" true (N.parent b = None);
  N.append_child e (N.element "z");
  N.insert_child e 0 (N.element "front");
  check (Alcotest.list string_t) "after edits" [ "front"; "c"; "z" ]
    (List.map N.name (N.children e));
  let c = List.nth (N.children e) 1 in
  N.replace_child e ~old:c [ N.element "c1"; N.element "c2" ];
  check (Alcotest.list string_t) "replaced with two" [ "front"; "c1"; "c2"; "z" ]
    (List.map N.name (N.children e))

let test_set_attribute () =
  let e = N.element "e" in
  N.set_attribute e "x" "1";
  N.set_attribute e "x" "2";
  N.set_attribute e "y" "3";
  check (Alcotest.option string_t) "overwrite" (Some "2") (N.attr e "x");
  check int_t "two attrs" 2 (List.length (N.attributes e));
  N.remove_attribute e "x";
  check (Alcotest.option string_t) "removed" None (N.attr e "x")

let test_copy_is_fresh () =
  let e = root_elt "<a x=\"1\"><b>t</b></a>" in
  let e' = N.copy e in
  check bool_t "not same node" false (N.same e e');
  check string_t "same serialization" (S.to_string e) (S.to_string e');
  check bool_t "copy parentless" true (N.parent e' = None);
  (* Mutating the copy must not affect the original. *)
  N.set_attribute e' "x" "99";
  check (Alcotest.option string_t) "original intact" (Some "1") (N.attr e "x")

let test_find_helpers () =
  let e = root_elt "<a><b/><x/><b><b/></b></a>" in
  check int_t "find_all b" 3 (List.length (N.find_all (fun n -> N.is_element n && N.name n = "b") e));
  check int_t "child_elements" 3 (List.length (N.child_elements e));
  check bool_t "child_element finds first" true
    (match N.child_element e "b" with Some _ -> true | None -> false);
  check int_t "child_elements_named" 2 (List.length (N.child_elements_named e "b"))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let e = root_elt "<a x=\"1\" y='two'><b/>text</a>" in
  check string_t "tag" "a" (N.name e);
  check (Alcotest.option string_t) "double quote" (Some "1") (N.attr e "x");
  check (Alcotest.option string_t) "single quote" (Some "two") (N.attr e "y")

let test_parse_entities () =
  let e = root_elt "<a x=\"&lt;&amp;&quot;\">&lt;hi&gt; &amp; &apos;&#65;&#x42;</a>" in
  check (Alcotest.option string_t) "attr entities" (Some "<&\"") (N.attr e "x");
  check string_t "text entities" "<hi> & 'AB" (N.string_value e)

let test_parse_cdata () =
  let e = root_elt "<a><![CDATA[<not><parsed> & raw]]></a>" in
  check string_t "cdata" "<not><parsed> & raw" (N.string_value e)

let test_parse_comment_pi () =
  let doc = parse "<?xml version=\"1.0\"?><!-- hi --><a><!--in--><?target data?></a>" in
  let e = List.hd (N.children doc) in
  let kinds = List.map N.kind (N.children e) in
  check bool_t "comment+pi kept" true
    (kinds = [ N.Comment; N.Processing_instruction ])

let test_parse_doctype_skipped () =
  let doc = parse "<!DOCTYPE html [ <!ENTITY x \"y\"> ]><a/>" in
  check int_t "root only" 1 (List.length (N.children doc))

let test_parse_errors () =
  let fails s =
    match parse s with
    | exception P.Parse_error _ -> true
    | _ -> false
  in
  check bool_t "mismatched tag" true (fails "<a></b>");
  check bool_t "unterminated" true (fails "<a>");
  check bool_t "duplicate attr" true (fails "<a x=\"1\" x=\"2\"/>");
  check bool_t "bad entity" true (fails "<a>&nope;</a>");
  check bool_t "trailing garbage" true (fails "<a/><b/>");
  check bool_t "lt in attr" true (fails "<a x=\"<\"/>")

let test_parse_error_position () =
  match parse "<a>\n  <b></c>\n</a>" with
  | exception P.Parse_error { line; _ } -> check int_t "line" 2 line
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_fragment () =
  let items = P.parse_fragment "hello <b>world</b> bye" in
  check int_t "three items" 3 (List.length items);
  check bool_t "middle is element" true (N.is_element (List.nth items 1))

let test_strip_whitespace () =
  let doc = parse "<a>\n  <b> keep me </b>\n  <c/>\n</a>" in
  let stripped = P.strip_whitespace doc in
  let a = List.hd (N.children stripped) in
  check int_t "only elements left" 2 (List.length (N.children a));
  let b = List.hd (N.children a) in
  check string_t "inner text kept verbatim" " keep me " (N.string_value b)

(* ------------------------------------------------------------------ *)
(* Serializer                                                          *)
(* ------------------------------------------------------------------ *)

let test_serialize_roundtrip () =
  let src = "<a x=\"1\"><b>hi &amp; bye</b><c/>tail</a>" in
  check string_t "roundtrip" src (S.to_string (root_elt src))

let test_serialize_escaping () =
  let e = N.element "a" ~attrs:[ N.attribute "q" "a\"b<c&d" ] ~children:[ N.text "<&>" ] in
  check string_t "escaped" "<a q=\"a&quot;b&lt;c&amp;d\">&lt;&amp;&gt;</a>" (S.to_string e)

let test_serialize_decl () =
  let doc = parse "<a/>" in
  check bool_t "decl prefix" true
    (String.length (S.to_string ~decl:true doc) > String.length (S.to_string doc))

let test_html_serialization () =
  let doc =
    parse
      "<html><head><meta charset=\"utf-8\"/><style>b &gt; i {}</style></head>\
       <body>line<br/><div/><img src=\"x.png\"/></body></html>"
  in
  let html = S.to_html_string doc in
  check bool_t "void br" true (Astring.String.is_infix ~affix:"line<br>" html);
  check bool_t "void img no slash" true (Astring.String.is_infix ~affix:"<img src=\"x.png\">" html);
  check bool_t "empty div gets closing tag" true (Astring.String.is_infix ~affix:"<div></div>" html);
  check bool_t "style content raw" true (Astring.String.is_infix ~affix:"b > i {}" html);
  check bool_t "no self-closing" false (Astring.String.is_infix ~affix:"/>" html)

let test_pretty () =
  let doc = parse "<a><b>text</b><c><d/></c></a>" in
  let pretty = S.to_pretty_string doc in
  check bool_t "has newlines" true (String.contains pretty '\n');
  (* Pretty output must re-parse to the same significant structure. *)
  let again = P.strip_whitespace (parse pretty) in
  check string_t "pretty reparses" (S.to_string (P.strip_whitespace doc)) (S.to_string again)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random XML tree generator used by round-trip properties. *)
let gen_tree : N.t QCheck.arbitrary =
  let open QCheck.Gen in
  let name_g = oneofl [ "a"; "b"; "cee"; "d-e"; "x_1" ] in
  let text_g = oneofl [ "hi"; "a&b"; "<tag>"; "  spaced  "; "q\"q"; "'" ] in
  let rec tree depth =
    if depth = 0 then map N.text text_g
    else
      frequency
        [
          (2, map N.text text_g);
          (1, map N.comment (oneofl [ "note"; "x y" ]));
          ( 3,
            let* tag = name_g in
            let* nattrs = int_bound 2 in
            let* attrnames = flatten_l (List.init nattrs (fun _ -> name_g)) in
            let attrnames = List.sort_uniq compare attrnames in
            let* attrvals = flatten_l (List.map (fun _ -> text_g) attrnames) in
            let attrs = List.map2 N.attribute attrnames attrvals in
            let* nkids = int_bound 3 in
            let* kids = flatten_l (List.init nkids (fun _ -> tree (depth - 1))) in
            return (N.element tag ~attrs ~children:kids) );
        ]
  in
  let root =
    let* tag = name_g in
    let* nkids = int_bound 3 in
    let* kids = flatten_l (List.init nkids (fun _ -> tree 3)) in
    return (N.element tag ~children:kids)
  in
  QCheck.make root ~print:S.to_string

let prop_roundtrip =
  QCheck.Test.make ~name:"serialize then parse preserves structure" ~count:200 gen_tree
    (fun t ->
      let s = S.to_string t in
      let t' = List.hd (N.children (parse s)) in
      S.to_string t' = s)

let prop_copy_equal =
  QCheck.Test.make ~name:"copy serializes identically" ~count:200 gen_tree (fun t ->
      S.to_string (N.copy t) = S.to_string t)

let prop_doc_order_total =
  QCheck.Test.make ~name:"document order is total and matches traversal" ~count:100 gen_tree
    (fun t ->
      let all = N.find_all (fun _ -> true) t in
      let sorted = List.sort N.compare_document_order all in
      List.for_all2 N.same all sorted)

let prop_string_value_parse =
  QCheck.Test.make ~name:"string_value survives a round-trip" ~count:200 gen_tree (fun t ->
      let t' = List.hd (N.children (parse (S.to_string t))) in
      N.string_value t' = N.string_value t)

(* Fuzz: garbage never crashes the parser with anything but Parse_error. *)
let prop_parser_total =
  let gen =
    QCheck.Gen.(
      string_size
        ~gen:(oneofl [ '<'; '>'; '/'; '='; '"'; '\''; '&'; ';'; '!'; '-'; '['; ']';
                       '?'; 'a'; 'b'; '1'; ' '; '\n'; '#'; 'x' ])
        (int_bound 60))
  in
  QCheck.Test.make ~name:"parser is total (clean errors only)" ~count:500
    (QCheck.make gen ~print:(fun s -> s))
    (fun s ->
      match P.parse_string s with
      | _ -> true
      | exception P.Parse_error _ -> true
      | exception _ -> false)

let suite =
  [
    ( "xml_base.node",
      [
        Alcotest.test_case "construction" `Quick test_construction;
        Alcotest.test_case "parent links" `Quick test_parent_links;
        Alcotest.test_case "single parent enforced" `Quick test_single_parent_enforced;
        Alcotest.test_case "string value" `Quick test_string_value;
        Alcotest.test_case "descendants order" `Quick test_descendants_order;
        Alcotest.test_case "sibling and ancestor axes" `Quick test_axes;
        Alcotest.test_case "document order compare" `Quick test_document_order_compare;
        Alcotest.test_case "cross-tree order" `Quick test_cross_tree_order;
        Alcotest.test_case "mutation" `Quick test_mutation;
        Alcotest.test_case "set/remove attribute" `Quick test_set_attribute;
        Alcotest.test_case "copy is fresh" `Quick test_copy_is_fresh;
        Alcotest.test_case "find helpers" `Quick test_find_helpers;
      ] );
    ( "xml_base.parser",
      [
        Alcotest.test_case "simple" `Quick test_parse_simple;
        Alcotest.test_case "entities" `Quick test_parse_entities;
        Alcotest.test_case "cdata" `Quick test_parse_cdata;
        Alcotest.test_case "comments and PIs" `Quick test_parse_comment_pi;
        Alcotest.test_case "doctype skipped" `Quick test_parse_doctype_skipped;
        Alcotest.test_case "malformed inputs rejected" `Quick test_parse_errors;
        Alcotest.test_case "error carries position" `Quick test_parse_error_position;
        Alcotest.test_case "fragments" `Quick test_parse_fragment;
        Alcotest.test_case "strip whitespace" `Quick test_strip_whitespace;
      ] );
    ( "xml_base.serialize",
      [
        Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
        Alcotest.test_case "escaping" `Quick test_serialize_escaping;
        Alcotest.test_case "declaration" `Quick test_serialize_decl;
        Alcotest.test_case "pretty printing" `Quick test_pretty;
        Alcotest.test_case "html mode" `Quick test_html_serialization;
      ] );
    ( "xml_base.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_roundtrip;
          prop_copy_equal;
          prop_doc_order_total;
          prop_string_value_parse;
          prop_parser_total;
        ] );
  ]
