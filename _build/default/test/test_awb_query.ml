(* Tests for the AWB query calculus: parser, native evaluation, the XQuery
   compilation, and the cross-implementation oracle (the paper's "it would
   be insane to have two implementations" — we have two on purpose, and
   they must agree). *)

module A = Awb_query.Ast
module P = Awb_query.Parser
module Nat = Awb_query.Native
module XQ = Awb_query.To_xquery
module M = Awb.Model

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let banking = Awb.Samples.banking_model ()

let labels ns = List.map Nat.node_label ns
let run_native q = labels (Nat.eval_string banking q)
let run_xquery q = labels (XQ.eval_string banking q)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let cases =
    [
      "start all";
      "start type(User)";
      "start node(N3)";
      "start type(User); follow likes forward";
      "start type(User); follow uses forward to(Program)";
      "start all; filter type(Document); filter not-has-prop(version)";
      "start all; filter prop(year > 1900); distinct; sort-by label; limit 3";
      "start all; sort-by prop(year) desc";
    ]
  in
  List.iter
    (fun src ->
      let q = P.parse src in
      (* to_string then reparse must be identical structure. *)
      let q2 = P.parse (A.to_string q) in
      check string_t ("roundtrip " ^ src) (A.to_string q) (A.to_string q2))
    cases

let test_parse_quoted_literal () =
  let q = P.parse "start all; filter prop(name = \"alice; bob\")" in
  match q.A.steps with
  | [ A.Filter_prop { pname = "name"; op = A.P_eq; literal = "alice; bob" } ] -> ()
  | _ -> Alcotest.fail "quoted literal with a semicolon mis-parsed"

let test_parse_errors () =
  let fails s = match P.parse s with exception P.Parse_error _ -> true | _ -> false in
  check bool_t "empty" true (fails "");
  check bool_t "no start" true (fails "follow likes");
  check bool_t "double start" true (fails "start all; start all");
  check bool_t "bad filter" true (fails "start all; filter bogus(x)");
  check bool_t "bad limit" true (fails "start all; limit many");
  check bool_t "unknown clause" true (fails "start all; zigzag")

(* ------------------------------------------------------------------ *)
(* Native evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let test_native_start () =
  check int_t "all" (M.node_count banking) (List.length (Nat.eval_string banking "start all"));
  check int_t "type includes subtypes" 3
    (List.length (Nat.eval_string banking "start type(Person)"));
  check int_t "node id" 1 (List.length (Nat.eval_string banking "start node(N1)"));
  check int_t "missing node id" 0 (List.length (Nat.eval_string banking "start node(NOPE)"))

let id_of name =
  (List.find (fun n -> M.prop_string n "name" = name) (M.nodes banking)).M.id

let test_native_follow () =
  (* The paper's example: start at a user, follow likes, then uses, but
     only to programs. *)
  check (Alcotest.list string_t) "alice -> likes" [ "bob" ]
    (run_native (Printf.sprintf "start node(%s); follow likes" (id_of "alice")));
  (* favors is a likes. *)
  check (Alcotest.list string_t) "bob -> likes (favors)" [ "carol" ]
    (run_native (Printf.sprintf "start node(%s); follow likes" (id_of "bob")));
  check (Alcotest.list string_t) "backward" [ "alice" ]
    (run_native (Printf.sprintf "start node(%s); follow likes backward" (id_of "bob")));
  check (Alcotest.list string_t) "to() type filter" [ "TellerApp" ]
    (run_native "start type(User); follow likes; follow uses to(Program)")

let test_native_filters_and_sort () =
  check (Alcotest.list string_t) "documents without version" [ "Risk Assessment" ]
    (run_native "start type(Document); filter not-has-prop(version)");
  check (Alcotest.list string_t) "prop equality" [ "alice" ]
    (run_native "start type(User); filter prop(firstName = \"Alice\")");
  check (Alcotest.list string_t) "prop numeric" [ "alice" ]
    (run_native "start type(User); filter prop(birthYear < 1980)");
  check (Alcotest.list string_t) "sorted labels" [ "alice"; "bob"; "carol" ]
    (run_native "start type(User); sort-by label");
  check (Alcotest.list string_t) "limit" [ "alice"; "bob" ]
    (run_native "start type(User); sort-by label; limit 2")

let test_native_distinct () =
  (* Both alice and bob use Core Ledger; collecting without distinct keeps
     both edges. *)
  let dup = run_native "start type(User); follow uses to(System)" in
  check int_t "multigraph duplicates" 2 (List.length dup);
  let dis = run_native "start type(User); follow uses to(System); distinct" in
  check (Alcotest.list string_t) "distinct" [ "Core Ledger" ] dis

(* ------------------------------------------------------------------ *)
(* XQuery compilation                                                  *)
(* ------------------------------------------------------------------ *)

let test_compile_mentions_subtypes () =
  let src =
    XQ.compile Awb.Samples.it_architecture (P.parse "start type(Person); follow likes")
  in
  check bool_t "expands Person subtypes" true
    (Astring.String.is_infix ~affix:"\"User\"" src);
  check bool_t "expands likes subrelations" true
    (Astring.String.is_infix ~affix:"\"favors\"" src)

let test_xquery_backend_matches_native () =
  let queries =
    [
      "start all";
      "start type(User)";
      "start type(Person); sort-by label";
      (Printf.sprintf "start node(%s); follow likes" (id_of "alice"));
      "start type(User); follow likes; follow uses to(Program)";
      "start type(User); follow uses to(System)";
      "start type(User); follow uses to(System); distinct";
      "start type(Document); filter not-has-prop(version)";
      "start type(User); filter prop(firstName = \"Alice\")";
      "start type(User); filter prop(birthYear < 1980)";
      "start type(User); filter prop(lastName contains \"ur\")";
      "start type(System); follow has backward";
      "start type(User); sort-by label; limit 2";
      "start all; filter type(DataStore); sort-by label";
      "start type(GoneType)";
    ]
  in
  List.iter
    (fun q ->
      check (Alcotest.list string_t) ("agree on: " ^ q) (run_native q) (run_xquery q))
    queries

let run_interp q = labels (Awb_query.Xq_interp.eval_string banking q)

let test_xq_interpreter_matches_native () =
  (* The calculus interpreter written IN XQuery ("not a hard exercise")
     is a third implementation; it must agree with the other two. *)
  let queries =
    [
      "start all";
      "start type(Person); sort-by label";
      "start type(User); follow likes; follow uses to(Program)";
      "start type(User); follow uses to(System); distinct";
      "start type(Document); filter not-has-prop(version)";
      "start type(User); filter prop(firstName = \"Alice\")";
      "start type(User); filter prop(birthYear < 1980)";
      "start type(User); filter prop(lastName contains \"ur\")";
      "start type(System); follow has backward";
      "start type(User); sort-by label; limit 2";
      "start type(Server); sort-by prop(cpuCount) desc";
    ]
  in
  List.iter
    (fun q ->
      check (Alcotest.list string_t) ("interp agrees on: " ^ q) (run_native q)
        (run_interp q))
    queries

let test_xq_interpreter_focus () =
  let alice =
    List.find (fun n -> M.prop_string n "name" = "alice") (M.nodes banking)
  in
  check (Alcotest.list string_t) "focus-relative" [ "bob" ]
    (labels
       (Awb_query.Xq_interp.eval ~focus:alice banking
          (P.parse "start focus; follow likes")))

let test_backends_agree_on_synthetic_models () =
  let queries =
    [
      "start type(User); follow likes; follow uses to(Program); distinct; sort-by label";
      "start type(Document); filter not-has-prop(version); sort-by label";
      "start type(System); follow runs; distinct";
      "start type(User); filter prop(superuser = \"true\")";
    ]
  in
  List.iter
    (fun seed ->
      let m = Awb.Synth.generate_of_size ~seed 60 in
      let export =
        List.hd (Xml_base.Node.children (Awb.Xml_io.export m))
      in
      List.iter
        (fun q ->
          let parsed = P.parse q in
          let native = List.map Nat.node_label (Nat.eval m parsed) in
          let via_xq =
            List.map Nat.node_label (XQ.eval_on_export m ~export_root:export parsed)
          in
          check (Alcotest.list string_t)
            (Printf.sprintf "seed %d: %s" seed q)
            native via_xq)
        queries)
    [ 1; 2; 3 ]

let suite =
  [
    ( "awb_query.parser",
      [
        Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "quoted literals" `Quick test_parse_quoted_literal;
        Alcotest.test_case "errors" `Quick test_parse_errors;
      ] );
    ( "awb_query.native",
      [
        Alcotest.test_case "start clauses" `Quick test_native_start;
        Alcotest.test_case "follow" `Quick test_native_follow;
        Alcotest.test_case "filters and sorting" `Quick test_native_filters_and_sort;
        Alcotest.test_case "distinct" `Quick test_native_distinct;
      ] );
    ( "awb_query.xquery-backend",
      [
        Alcotest.test_case "compilation expands hierarchies" `Quick test_compile_mentions_subtypes;
        Alcotest.test_case "matches native on banking" `Quick test_xquery_backend_matches_native;
        Alcotest.test_case "matches native on synthetic models" `Quick
          test_backends_agree_on_synthetic_models;
        Alcotest.test_case "interpreter-in-XQuery matches native" `Quick
          test_xq_interpreter_matches_native;
        Alcotest.test_case "interpreter-in-XQuery focus" `Quick test_xq_interpreter_focus;
      ] );
  ]
