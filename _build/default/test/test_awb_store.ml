(* Tests for the persistence store: snapshots, journal, crash recovery. *)

module M = Awb.Model
module Ed = Awb.Edit
module St = Awb.Store

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let with_tmp_store f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lopsided-store-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  let store = St.open_store ~dir Awb.Samples.it_architecture in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f store)

let canon m = Awb.Xml_io.export_string m

let test_snapshot_roundtrip () =
  with_tmp_store (fun store ->
      check (Alcotest.list int_t) "empty store" [] (St.versions store);
      check bool_t "nothing latest" true (St.load_latest store = None);
      let m = Awb.Samples.banking_model () in
      let v1 = St.save_snapshot store m in
      check int_t "first version" 1 v1;
      (match St.load_latest store with
      | Some (1, m') -> check string_t "roundtrip" (canon m) (canon m')
      | _ -> Alcotest.fail "latest missing");
      (* Another snapshot bumps the version. *)
      ignore (M.add_node m "User" ~props:[ ("name", M.V_string "dave") ]);
      let v2 = St.save_snapshot store m in
      check int_t "second version" 2 v2;
      check (Alcotest.list int_t) "versions" [ 1; 2 ] (St.versions store);
      (* Old versions stay loadable. *)
      match St.load_version store 1 with
      | Some old -> check bool_t "old lacks dave" true (not (Astring.String.is_infix ~affix:"dave" (canon old)))
      | None -> Alcotest.fail "version 1 missing")

let test_command_serialization () =
  let cmds =
    [
      Ed.Add_node
        {
          id = Some "NX";
          ntype = "User";
          props = [ ("name", M.V_string "x"); ("birthYear", M.V_int 1990); ("superuser", M.V_bool true) ];
        };
      Ed.Remove_node "NX";
      Ed.Set_property { node_id = "N1"; pname = "note"; value = M.V_html "<b>hi</b>" };
      Ed.Remove_property { node_id = "N1"; pname = "note" };
      Ed.Relate { id = None; rtype = "likes"; source_id = "N1"; target_id = "N2" };
      Ed.Unrelate "R9";
    ]
  in
  List.iter
    (fun c ->
      let c' = St.command_of_xml (St.command_to_xml c) in
      if c <> c' then Alcotest.fail "command round-trip changed")
    cmds

let test_journal_and_recovery () =
  with_tmp_store (fun store ->
      let m = Awb.Samples.banking_model () in
      ignore (St.save_snapshot store m);
      (* A session: apply + journal each command (what a real UI would do). *)
      let session = Ed.start m in
      let do_cmd c =
        Ed.apply session c;
        St.append_command store c
      in
      do_cmd
        (Ed.Add_node
           { id = Some "NJ"; ntype = "Document"; props = [ ("name", M.V_string "Journal Doc") ] });
      do_cmd (Ed.Set_property { node_id = "NJ"; pname = "version"; value = M.V_string "7" });
      do_cmd (Ed.Relate { id = Some "RJ"; rtype = "has"; source_id = "N1"; target_id = "NJ" });
      check int_t "journal length" 3 (List.length (St.journal store));
      (* "Crash": recover from disk; state matches the live session. *)
      (match St.recover store with
      | Some recovered -> check string_t "recovered = live" (canon (Ed.model session)) (canon recovered)
      | None -> Alcotest.fail "no recovery");
      (* Snapshotting clears the journal. *)
      ignore (St.save_snapshot store (Ed.model session));
      check int_t "journal cleared" 0 (List.length (St.journal store));
      match St.recover store with
      | Some recovered -> check string_t "recover = snapshot" (canon (Ed.model session)) (canon recovered)
      | None -> Alcotest.fail "no recovery after snapshot")

let test_recovery_skips_stale_commands () =
  with_tmp_store (fun store ->
      let m = Awb.Samples.banking_model () in
      ignore (St.save_snapshot store m);
      (* A journal referencing a node that is not in the snapshot. *)
      St.append_command store
        (Ed.Set_property { node_id = "GHOST"; pname = "x"; value = M.V_string "y" });
      St.append_command store
        (Ed.Add_node { id = Some "NK"; ntype = "User"; props = [ ("name", M.V_string "ok") ] });
      match St.recover store with
      | Some recovered ->
        check bool_t "good command applied" true (M.find_node recovered "NK" <> None)
      | None -> Alcotest.fail "no recovery")

let suite =
  [
    ( "awb.store",
      [
        Alcotest.test_case "snapshots round-trip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "command XML round-trip" `Quick test_command_serialization;
        Alcotest.test_case "journal + crash recovery" `Quick test_journal_and_recovery;
        Alcotest.test_case "stale journal entries skipped" `Quick test_recovery_skips_stale_commands;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Diff between versions                                               *)
(* ------------------------------------------------------------------ *)

let test_diff_basics () =
  let before = Awb.Samples.banking_model () in
  let after = Awb.Samples.banking_model () in
  let d0 = Awb.Diff.between before after in
  check bool_t "identical models: empty diff" true (Awb.Diff.is_empty d0);
  (* Mutate the second model. *)
  let carol = List.find (fun n -> M.prop_string n "name" = "carol") (M.nodes after) in
  M.set_prop carol "firstName" (M.V_string "Caroline");
  let dave = M.add_node after "User" ~props:[ ("name", M.V_string "dave") ] in
  let alice = List.find (fun n -> M.prop_string n "name" = "alice") (M.nodes after) in
  ignore (M.relate after "likes" ~source:dave ~target:alice);
  let bob = List.find (fun n -> M.prop_string n "name" = "bob") (M.nodes after) in
  M.remove_node after bob;
  let d = Awb.Diff.between before after in
  check bool_t "nonempty" false (Awb.Diff.is_empty d);
  check string_t "summary" "+1 nodes, -1 nodes, 1 changed; +1 relations, -4 relations"
    (Awb.Diff.summary d);
  let xml = Xml_base.Serialize.to_string (Awb.Diff.to_xml d) in
  check bool_t "xml mentions added node" true
    (Astring.String.is_infix ~affix:"node-added" xml);
  check bool_t "xml mentions property change" true
    (Astring.String.is_infix ~affix:"before=\"Carol\" after=\"Caroline\"" xml)

let test_diff_between_snapshots () =
  with_tmp_store (fun store ->
      let m = Awb.Samples.banking_model () in
      ignore (St.save_snapshot store m);
      ignore (M.add_node m "User" ~props:[ ("name", M.V_string "eve") ]);
      ignore (St.save_snapshot store m);
      match (St.load_version store 1, St.load_version store 2) with
      | Some v1, Some v2 ->
        let d = Awb.Diff.between v1 v2 in
        check string_t "snapshot delta" "+1 nodes, -0 nodes, 0 changed; +0 relations, -0 relations"
          (Awb.Diff.summary d)
      | _ -> Alcotest.fail "snapshots missing")

let suite =
  suite
  @ [
      ( "awb.diff",
        [
          Alcotest.test_case "basics" `Quick test_diff_basics;
          Alcotest.test_case "between snapshots" `Quick test_diff_between_snapshots;
        ] );
    ]
