(* Extended XQuery engine coverage: parser precedence (via AST golden
   tests), axis corner cases, positional predicates, constructor edge
   cases, recursion depth, FLWOR interactions, and compat-mode behaviour
   combinations. *)

module V = Xquery.Value
module E = Xquery.Engine
module A = Xquery.Ast
module Err = Xquery.Errors

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let run ?context_item ?vars q =
  V.to_display_string (E.eval_query ?context_item ?vars q)

let run_on_doc xml q =
  run ~context_item:(V.Node (Xml_base.Parser.parse_string xml)) q

(* ------------------------------------------------------------------ *)
(* Parser precedence, checked against the AST printer                  *)
(* ------------------------------------------------------------------ *)

let ast q = A.show_expr (Xquery.Parser.parse_expression q)

let test_precedence_golden () =
  let same q1 q2 =
    check string_t (q1 ^ " == " ^ q2) (ast q2) (ast q1)
  in
  same "1 + 2 * 3" "1 + (2 * 3)";
  same "1 - 2 - 3" "(1 - 2) - 3";
  same "2 * 3 idiv 4" "(2 * 3) idiv 4";
  same "1 + 2 = 3 + 4" "(1 + 2) = (3 + 4)";
  same "1 lt 2 and 3 gt 2" "(1 lt 2) and (3 gt 2)";
  same "1 eq 1 or 2 eq 2 and 3 eq 4" "(1 eq 1) or ((2 eq 2) and (3 eq 4))";
  same "1 to 3 + 2" "1 to (3 + 2)";
  same "- 2 + 3" "(- 2) + 3";
  same "$a | $b | $c" "($a | $b) | $c";
  same "$a union $b intersect $c" "$a union ($b intersect $c)";
  same "1 + 2 cast as xs:string" "1 + (2 cast as xs:string)"

let test_comparison_non_associative () =
  (* 1 = 2 = 3 is a syntax error in XPath 2.0 — comparison does not
     associate. *)
  match Xquery.Parser.parse_expression "1 = 2 = 3" with
  | exception Err.Error { code = "err:XPST0003"; _ } -> ()
  | _ -> Alcotest.fail "comparison should not chain"

let test_path_vs_division_ast () =
  (* a/b is a path; $a div $b is division; a div b is division of two
     child steps. *)
  check bool_t "a/b is a path" true
    (match Xquery.Parser.parse_expression "a/b" with
    | A.E_path (_, _) -> true
    | _ -> false);
  check bool_t "a div b is arithmetic" true
    (match Xquery.Parser.parse_expression "a div b" with
    | A.E_arith (A.Div, _, _) -> true
    | _ -> false)

let test_keywords_as_element_names () =
  (* for/if/return etc. are fine as path steps. *)
  let xml = "<root><for>1</for><if>2</if><return>3</return><element>4</element></root>" in
  check string_t "for element" "1" (run_on_doc xml "string(root/for)");
  check string_t "if element" "2" (run_on_doc xml "string(root/if)");
  check string_t "return element" "3" (run_on_doc xml "string(root/return)");
  check string_t "element element" "4" (run_on_doc xml "string(root/element)")

(* ------------------------------------------------------------------ *)
(* Axes, document order, positions                                     *)
(* ------------------------------------------------------------------ *)

let deep_xml =
  "<a><b1><c1/><c2><d/></c2></b1><b2/><b3><c3/></b3></a>"

let test_following_preceding () =
  let r q = run_on_doc deep_xml q in
  check string_t "following of c2" "b2 b3 c3"
    (r "string-join(for $n in (//c2)[1]/following::* return name($n), ' ')");
  (* Path results normalize to document order, so preceding:: in a path
     reads forward; the axis's reverse order is only visible to
     positional predicates. *)
  check string_t "preceding of b3 excludes ancestors" "b1 c1 c2 d b2"
    (r "string-join(for $n in (//b3)[1]/preceding::* return name($n), ' ')");
  check string_t "preceding positional counts nearest-first" "b2"
    (r "name((//b3)[1]/preceding::*[1])");
  check string_t "preceding-sibling positional nearest" "b2"
    (r "name((//b3)[1]/preceding-sibling::*[1])");
  check string_t "ancestor-or-self" "a b1 c2 d"
    (r "string-join(for $n in (//d)[1]/ancestor-or-self::* return name($n), ' ')")

let test_union_in_doc_order () =
  let r q = run_on_doc deep_xml q in
  check string_t "union sorts and dedups" "b1 b2 b3"
    (r "string-join(for $n in (//b3 | //b1 | //b2 | //b1) return name($n), ' ')");
  check string_t "except" "b1 b3"
    (r "string-join(for $n in (a/* except //b2) return name($n), ' ')");
  check string_t "intersect" "b2" (r "string-join(for $n in (a/* intersect (//b2 | //c1)) return name($n), ' ')")

let test_positional_predicates () =
  let r q = run_on_doc deep_xml q in
  check string_t "nested positional" "c2" (r "name(a/b1/*[2])");
  check string_t "position() in nested predicate" "c1"
    (r "name(a/b1/*[position() = 1])");
  check string_t "last() - 1" "b2" (r "name(a/*[last() - 1])");
  check string_t "predicate chain" "b2" (r "name(a/*[position() gt 1][1])");
  check string_t "boolean then positional" "b1"
    (r "name(a/*[exists(*)][1])");
  check string_t "fractional position matches nothing" "" (r "string(a/*[1.5])")

let test_double_slash_inside () =
  check string_t "x//y" "2"
    (run_on_doc "<x><y/><mid><y/></mid></x>" "count(x//y)");
  check string_t "//@attr" "2"
    (run_on_doc "<x a=\"1\"><y a=\"2\"/></x>" "count(//@a)")

(* ------------------------------------------------------------------ *)
(* Constructors, deeper                                                *)
(* ------------------------------------------------------------------ *)

let test_nested_constructor_scopes () =
  check string_t "variables reach into nested constructors"
    "<out><row i=\"1\"><v>10</v></row><row i=\"2\"><v>20</v></row></out>"
    (run "<out>{for $i in 1 to 2 return <row i=\"{$i}\"><v>{$i * 10}</v></row>}</out>");
  check string_t "constructor inside predicate" "yes"
    (run "if (exists((<a><b/></a>)/b)) then 'yes' else 'no'")

let test_computed_everything () =
  check string_t "fully computed"
    "<wrap a1=\"x\"><k1>7</k1></wrap>"
    (run
       "element { concat('wr','ap') } { attribute { concat('a','1') } { 'x' }, \
        element { 'k1' } { 3 + 4 } }");
  check string_t "comment constructor" "<c><!--note 1--></c>"
    (run "<c>{comment { concat('note ', 1) }}</c>")

let test_document_node_constructor () =
  check string_t "doc with several kids" "<a/><b/>"
    (run "document { <a/>, <b/> }");
  match E.eval_query "document { attribute x {1} }" with
  | exception Err.Error _ -> ()
  | r -> Alcotest.failf "attribute at doc top level: %s" (V.to_display_string r)

let test_boundary_space () =
  check string_t "boundary ws stripped" "<a><b/><c/></a>" (run "<a> <b/>  <c/> </a>");
  check string_t "real text kept" "<a>x <b/></a>" (run "<a>x <b/></a>");
  check string_t "entity forces keep" "<a> <b/></a>" (run "<a>&#32;<b/></a>");
  check string_t "cdata forces keep" "<a> </a>" (run "<a><![CDATA[ ]]></a>")

let test_attr_value_normalization () =
  check string_t "avt with nodes" "<a v=\"hi\"/>"
    (run "let $n := <x>hi</x> return <a v=\"{$n}\"/>");
  check string_t "avt empty seq" "<a v=\"\"/>" (run "<a v=\"{()}\"/>");
  check string_t "computed attr from seq" "<a k=\"1 2 3\"/>"
    (run "<a>{attribute k { 1 to 3 }}</a>")

(* ------------------------------------------------------------------ *)
(* FLWOR interactions and recursion                                    *)
(* ------------------------------------------------------------------ *)

let test_flwor_interactions () =
  check string_t "where sees earlier lets" "6"
    (run "for $x in (1,2,3,4) let $y := $x * 2 where $y gt 4 and $x lt 4 return $y");
  check string_t "multiple wheres" "3"
    (run "for $x in 1 to 10 where $x gt 2 where $x lt 4 return $x");
  check string_t "order by on computed key" "30 21 12"
    (run
       "string-join(for $p in ('12','21','30') order by number($p) descending return $p, ' ')");
  check string_t "stable sort preserves input order on ties" "a1 b1 a2 b2"
    (run
       "string-join(for $s in ('a1','b1','a2','b2') order by substring($s, 2) return $s, ' ')");
  check string_t "empty greatest" "b a"
    (run
       "string-join(for $s in (<k><v>a</v></k>, <k/>) order by string($s/v) empty greatest \
        return (string($s/v), 'b')[. ne ''][1], ' ')")

let test_deep_recursion () =
  (* A thousand-deep recursion must not blow anything up. *)
  check string_t "sum 1..1000" "500500"
    (run
       "declare function local:go($n) { if ($n eq 0) then 0 else $n + local:go($n - 1) }; \
        local:go(1000)")

let test_function_shadowing_and_scope () =
  (* Function bodies do not see the caller's locals — only params and
     globals. *)
  (match
     E.eval_query
       "declare function local:f() { $x }; let $x := 1 return local:f()"
   with
  | exception Err.Error { code; _ } ->
    check string_t "no dynamic scope" "err:XPST0008" code
  | r -> Alcotest.failf "expected unbound $x, got %s" (V.to_display_string r));
  check string_t "params shadow globals" "7"
    (run "declare variable $x := 1; declare function local:f($x) { $x }; local:f(7)")

let test_quantified_shadowing () =
  check string_t "inner binding shadows" "true"
    (run "let $x := 0 return some $x in (1,2) satisfies $x eq 2")

(* ------------------------------------------------------------------ *)
(* Compat-mode combinations                                            *)
(* ------------------------------------------------------------------ *)

let test_galax_flags_are_independent () =
  (* Only duplicate_attributes differs here. *)
  let q = "let $a := attribute k {1} let $b := attribute k {2} return <e>{$a}{$b}</e>" in
  let default = V.to_display_string (E.eval_query q) in
  let galax =
    V.to_display_string (E.eval_query ~compat:Xquery.Context.galax_compat q)
  in
  check string_t "default keeps last" "<e k=\"2\"/>" default;
  check string_t "galax keeps both" "<e k=\"1\" k=\"2\"/>" galax;
  (* Strict (REC) mode raises. *)
  let strict =
    { Xquery.Context.default_compat with Xquery.Context.duplicate_attributes = Xquery.Context.Raise_error }
  in
  match E.eval_query ~compat:strict q with
  | exception Err.Error { code; _ } -> check string_t "strict raises" "err:XQDY0025" code
  | r -> Alcotest.failf "expected XQDY0025, got %s" (V.to_display_string r)

let test_trace_in_sequence_not_eliminated () =
  (* Dead-code elimination only touches dead LETs; a trace in result
     position always survives, in both modes. *)
  let traced = ref 0 in
  let r =
    E.eval_query ~compat:Xquery.Context.galax_compat
      ~trace_out:(fun _ -> incr traced)
      "(trace(1, 'a'), trace(2, 'b'))"
  in
  check string_t "values" "1 2" (V.to_display_string r);
  check int_t "both traced" 2 !traced

(* ------------------------------------------------------------------ *)
(* Bigger programs                                                     *)
(* ------------------------------------------------------------------ *)

let library_xml =
  "<library>\
   <book year=\"1998\" genre=\"db\"><title>Query Things</title><price>31</price></book>\
   <book year=\"2003\" genre=\"pl\"><title>Lambda Lore</title><price>25</price></book>\
   <book year=\"2001\" genre=\"db\"><title>Join Joy</title><price>40</price></book>\
   <book year=\"2004\" genre=\"pl\"><title>Type Tales</title><price>18</price></book>\
   </library>"

let test_report_query () =
  (* A report query of the shape the use-cases document contains:
     grouping by genre via distinct-values. *)
  let q =
    "string-join(\
     for $g in distinct-values(library/book/@genre) \
     order by $g \
     return concat($g, ':', \
       string(count(library/book[@genre = $g])), ':', \
       string(sum(for $b in library/book[@genre = $g] return number($b/price)))), \
     ' | ')"
  in
  check string_t "grouped report" "db:2:71 | pl:2:43" (run_on_doc library_xml q)

let test_restructuring_query () =
  let q =
    "<by-genre>{\
     for $g in distinct-values(library/book/@genre) order by $g return \
     <genre name=\"{$g}\">{\
       for $b in library/book[@genre = $g] order by number($b/price) return \
       <entry>{string($b/title)}</entry>\
     }</genre>}</by-genre>"
  in
  check string_t "restructured"
    "<by-genre><genre name=\"db\"><entry>Query Things</entry><entry>Join Joy</entry></genre>\
     <genre name=\"pl\"><entry>Type Tales</entry><entry>Lambda Lore</entry></genre></by-genre>"
    (String.concat ""
       (String.split_on_char '\n' (run_on_doc library_xml q)))

let test_join_query () =
  (* A two-document join through variables. *)
  let orders = Xml_base.Parser.parse_string
    "<orders><o book=\"Join Joy\" qty=\"2\"/><o book=\"Type Tales\" qty=\"5\"/></orders>" in
  let books = Xml_base.Parser.parse_string library_xml in
  let result =
    E.eval_query
      ~vars:[ ("orders", V.of_node orders); ("books", V.of_node books) ]
      "string-join(\
       for $o in $orders/orders/o \
       for $b in $books/library/book[string(title) = string($o/@book)] \
       order by string($o/@book) \
       return concat(string($o/@book), '=', \
         string(number($o/@qty) * number($b/price))), ', ')"
  in
  check string_t "join" "Join Joy=80, Type Tales=90" (V.to_display_string result)

(* ------------------------------------------------------------------ *)
(* typeswitch                                                          *)
(* ------------------------------------------------------------------ *)

let test_typeswitch () =
  check string_t "dispatch on type" "int"
    (run "typeswitch (5) case xs:integer return 'int' case xs:string return 'str' default return 'other'");
  check string_t "string case" "str"
    (run "typeswitch ('x') case xs:integer return 'int' case xs:string return 'str' default return 'other'");
  check string_t "default" "other"
    (run "typeswitch (<a/>) case xs:integer return 'int' case xs:string return 'str' default return 'other'");
  check string_t "case variable binds" "10"
    (run "typeswitch (5) case $n as xs:integer return $n * 2 default return 0");
  check string_t "default variable binds" "1"
    (run "typeswitch (<a/>) case xs:integer return 0 default $v return count($v)");
  check string_t "element name cases" "b-ish"
    (run "typeswitch (<b/>) case element(a) return 'a-ish' case element(b) return 'b-ish' default return '?'");
  check string_t "occurrence cases" "many"
    (run "typeswitch ((1,2,3)) case xs:integer return 'one' case xs:integer+ return 'many' default return '?'");
  (* the paper's wish: dispatching on the error-value convention without
     stepping on atomics. *)
  check string_t "error-value dispatch" "error!"
    (run
       "declare function local:risky() { <error><message>bad</message></error> };         typeswitch (local:risky()) case element(error) return 'error!' default return 'ok'");
  (* Round-trips through the unparser. *)
  let q = "typeswitch (5) case $n as xs:integer return $n default $d return count($d)" in
  let p1 = Xquery.Parser.parse_program q in
  let p2 = Xquery.Parser.parse_program (Xquery.Unparse.program p1) in
  check bool_t "unparse roundtrip" true (A.equal_expr p1.A.body p2.A.body)

(* ------------------------------------------------------------------ *)
(* Unparser round-trips                                                *)
(* ------------------------------------------------------------------ *)

let unparse_corpus =
  [
    "1 + 2 * 3";
    "-5 + 2";
    "(1,(2,3),())";
    "1 to 10";
    "'it''s' ";
    "\"a&amp;b\"";
    "2.5 * 2";
    "$x - 1";
    "for $x at $i in (1,2,3) let $y := $x * $i where $y gt 1 order by $y descending return ($y, $i)";
    "some $a in (1,2), $b in (3,4) satisfies $a + $b eq 5";
    "if (1 lt 2) then 'a' else 'b'";
    "count((1,2)) + string-length('xy')";
    "a/b//c[@k = 'v'][2]/../text()";
    "/top/kid";
    "//anywhere";
    "$n/preceding-sibling::item[1]";
    "1 eq 1 and 2 ne 3 or not(4 gt 5)";
    "(1,2) union (3,4)";
    "'12' cast as xs:integer";
    "'x' castable as xs:integer";
    "5 instance of xs:integer";
    "(1,2) treat as xs:integer+";
    "element foo { attribute k { 1 }, 'body' }";
    "document { element r {} }";
    "<a x=\"1\" y=\"{2+3}\">t<b/>{4,5}</a>";
    "text { 'hi' }";
    "comment { 'note' }";
    "declare variable $g := 10; declare function local:f($x as xs:integer) as xs:integer { $x + $g }; local:f(5)";
  ]

let test_unparse_roundtrip () =
  List.iter
    (fun q ->
      let p1 = Xquery.Parser.parse_program q in
      let printed = Xquery.Unparse.program p1 in
      let p2 =
        try Xquery.Parser.parse_program printed
        with Err.Error { message; _ } ->
          Alcotest.failf "unparse of %S produced unparseable %S: %s" q printed message
      in
      (* Direct-constructor content desugars to a singleton E_seq when it
         comes back through the computed form; that is semantically
         identity (sequences flatten). Assert convergence instead:
         unparse∘parse is a fixed point after one round. *)
      let p3 = Xquery.Parser.parse_program (Xquery.Unparse.program p2) in
      if not (A.equal_expr p2.A.body p3.A.body) then
        Alcotest.failf "round-trip did not converge for %S:\n  printed: %s\n  ast2: %s\n  ast3: %s"
          q printed (A.show_expr p2.A.body) (A.show_expr p3.A.body))
    unparse_corpus

let test_unparse_evaluates_same () =
  let needs_env q =
    List.exists (fun frag -> Astring.String.is_infix ~affix:frag q)
      [ "$x - 1"; "$n/"; "a/b//c"; "/top"; "//anywhere"; "union" ]
  in
  List.iter
    (fun q ->
      let direct = run q in
      let via = run (Xquery.Unparse.program (Xquery.Parser.parse_program q)) in
      check string_t ("same value: " ^ q) direct via)
    (List.filter (fun q -> not (needs_env q)) unparse_corpus)

(* Optimizer invariance over queries that exercise paths, constructors,
   predicates, and FLWOR against a fixed document. *)
let prop_optimizer_invariant_rich =
  let doc = Xml_base.Parser.parse_string
    "<shop><item k=\"a\"><p>3</p></item><item k=\"b\"><p>5</p></item><item><p>2</p></item></shop>" in
  let gen =
    let open QCheck.Gen in
    let leaf = oneofl [ "shop/item"; "shop/item[@k]"; "shop/item/p"; "//p"; "shop/*" ] in
    let rec q depth =
      if depth = 0 then map (fun p -> Printf.sprintf "count(%s)" p) leaf
      else
        frequency
          [
            (2, map (fun p -> Printf.sprintf "count(%s)" p) leaf);
            ( 2,
              let* p = leaf in
              return (Printf.sprintf "sum(for $i in %s return number($i/descendant-or-self::p[1]))" p) );
            ( 2,
              let* a = q (depth - 1) in
              let* b = q (depth - 1) in
              let* op = oneofl [ "+"; "-"; "*" ] in
              return (Printf.sprintf "(%s %s %s)" a op b) );
            ( 1,
              let* a = q (depth - 1) in
              return (Printf.sprintf "number(string(<w n=\"{%s}\">{%s}</w>/@n))" a a) );
            ( 1,
              let* a = q (depth - 1) in
              let* b = q (depth - 1) in
              return (Printf.sprintf "(let $v := %s return if ($v ge %s) then $v else 0)" a b) );
          ]
    in
    QCheck.make (q 3) ~print:(fun s -> s)
  in
  QCheck.Test.make ~name:"optimizer invariant on path/constructor queries" ~count:120 gen
    (fun q ->
      let run opt =
        V.to_display_string
          (E.eval_query ~optimize:opt ~context_item:(V.Node doc) q)
      in
      run true = run false)

(* Parser robustness: arbitrary garbage either parses or raises a clean
   engine error - never an assertion failure or Invalid_argument. *)
let prop_parser_total =
  let gen =
    QCheck.Gen.(
      string_size
        ~gen:
          (oneofl
             [ 'a'; 'b'; '$'; '('; ')'; '{'; '}'; '<'; '>'; '/'; '*'; '+'; '-'; '=';
               '!'; '\''; '"'; ' '; ':'; ';'; ','; '['; ']'; '.'; '1'; '9'; 'e' ])
        (int_bound 40))
  in
  QCheck.Test.make ~name:"parser is total (clean errors only)" ~count:500
    (QCheck.make gen ~print:(fun s -> s))
    (fun s ->
      match Xquery.Parser.parse_program s with
      | _ -> true
      | exception Err.Error _ -> true
      | exception _ -> false)

let suite =
  [
    ( "xquery-extra.parser",
      [
        Alcotest.test_case "precedence golden" `Quick test_precedence_golden;
        Alcotest.test_case "comparison non-associative" `Quick test_comparison_non_associative;
        Alcotest.test_case "path vs division" `Quick test_path_vs_division_ast;
        Alcotest.test_case "keywords as element names" `Quick test_keywords_as_element_names;
      ] );
    ( "xquery-extra.axes",
      [
        Alcotest.test_case "following/preceding" `Quick test_following_preceding;
        Alcotest.test_case "set ops in document order" `Quick test_union_in_doc_order;
        Alcotest.test_case "positional predicates" `Quick test_positional_predicates;
        Alcotest.test_case "descendant shorthand" `Quick test_double_slash_inside;
      ] );
    ( "xquery-extra.constructors",
      [
        Alcotest.test_case "nested scopes" `Quick test_nested_constructor_scopes;
        Alcotest.test_case "fully computed" `Quick test_computed_everything;
        Alcotest.test_case "document nodes" `Quick test_document_node_constructor;
        Alcotest.test_case "boundary whitespace" `Quick test_boundary_space;
        Alcotest.test_case "attribute value normalization" `Quick test_attr_value_normalization;
      ] );
    ( "xquery-extra.flwor",
      [
        Alcotest.test_case "clause interactions" `Quick test_flwor_interactions;
        Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
        Alcotest.test_case "function scope" `Quick test_function_shadowing_and_scope;
        Alcotest.test_case "quantifier shadowing" `Quick test_quantified_shadowing;
      ] );
    ( "xquery-extra.compat",
      [
        Alcotest.test_case "duplicate-attribute policies" `Quick test_galax_flags_are_independent;
        Alcotest.test_case "live traces survive" `Quick test_trace_in_sequence_not_eliminated;
      ] );
    ( "xquery-extra.typeswitch",
      [ Alcotest.test_case "typeswitch" `Quick test_typeswitch ] );
    ( "xquery-extra.unparse",
      [
        Alcotest.test_case "round-trip preserves structure" `Quick test_unparse_roundtrip;
        Alcotest.test_case "round-trip preserves values" `Quick test_unparse_evaluates_same;
        QCheck_alcotest.to_alcotest prop_parser_total;
        QCheck_alcotest.to_alcotest prop_optimizer_invariant_rich;
      ] );
    ( "xquery-extra.programs",
      [
        Alcotest.test_case "grouped report" `Quick test_report_query;
        Alcotest.test_case "restructuring" `Quick test_restructuring_query;
        Alcotest.test_case "two-document join" `Quick test_join_query;
      ] );
  ]
