(* The W3C "XML Query Use Cases" [UC] — the corpus the paper cites as the
   scale XQuery was designed for ("a few tens of lines"). A selection of
   the XMP (experiences-and-exemplars) queries, adapted to the engine's
   subset, run against the canonical bib.xml. *)

module V = Xquery.Value
module E = Xquery.Engine

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int

let bib_xml =
  {|<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>|}

let reviews_xml =
  {|<reviews>
  <entry><title>Data on the Web</title><price>34.95</price>
    <review>A very good discussion of semi-structured database systems and XML.</review></entry>
  <entry><title>Advanced Programming in the Unix environment</title><price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review></entry>
  <entry><title>TCP/IP Illustrated</title><price>65.95</price>
    <review>One of the best books on TCP/IP.</review></entry>
</reviews>|}

let bib = Xml_base.Parser.parse_string bib_xml
let reviews = Xml_base.Parser.parse_string reviews_xml

let run q =
  V.to_display_string
    (E.eval_query ~context_item:(V.Node bib)
       ~vars:[ ("reviews", V.of_node reviews) ]
       q)

let flat s = String.concat "" (String.split_on_char '\n' s)

(* Q1: books published by Addison-Wesley after 1991. *)
let test_q1 () =
  let q =
    {|<bib>{
       for $b in bib/book
       where number($b/@year) gt 1991 and string($b/publisher) eq "Addison-Wesley"
       return <book year="{$b/@year}">{$b/title}</book>
     }</bib>|}
  in
  check string_t "q1"
    "<bib><book year=\"1994\"><title>TCP/IP Illustrated</title></book>\
     <book year=\"1992\"><title>Advanced Programming in the Unix environment</title></book></bib>"
    (flat (run q))

(* Q2: flat list of title-author pairs. *)
let test_q2 () =
  let q =
    {|count(<results>{
       for $b in bib/book, $t in $b/title, $a in $b/author
       return <result>{$t}{$a}</result>
     }</results>/result)|}
  in
  check string_t "q2: one result per (title, author) pair" "5" (run q)

(* Q3: titles with all their authors, grouped. *)
let test_q3 () =
  let q =
    {|string-join(
       for $b in bib/book
       where exists($b/author)
       return concat(string($b/title), '#', string(count($b/author))), '|')|}
  in
  check string_t "q3"
    "TCP/IP Illustrated#1|Advanced Programming in the Unix environment#1|Data on the Web#3"
    (run q)

(* Q4: for each author, the titles they wrote (grouping by value). *)
let test_q4 () =
  let q =
    {|string-join(
       for $last in distinct-values(bib/book/author/last/text())
       order by $last
       return concat($last, ':',
         string(count(bib/book[author/last = $last]))), ' ')|}
  in
  check string_t "q4" "Abiteboul:1 Buneman:1 Stevens:2 Suciu:1" (run q)

(* Q5: join between bib and the reviews document. *)
let test_q5 () =
  let q =
    {|string-join(
       for $b in bib/book
       for $e in $reviews/reviews/entry
       where string($b/title) eq string($e/title)
       order by string($b/title)
       return concat(string($b/title), '=', string($e/price)), '; ')|}
  in
  check string_t "q5"
    "Advanced Programming in the Unix environment=65.95; Data on the Web=34.95; \
     TCP/IP Illustrated=65.95"
    (run q)

(* Q6: books with a title and at most two authors shown plus et-al. *)
let test_q6 () =
  let q =
    {|string-join(
       for $b in bib/book
       where count($b/author) gt 2
       return concat(string($b/title), ': ',
         string-join((for $a in subsequence($b/author, 1, 2) return string($a/last)), ', '),
         ', et al.'), '#')|}
  in
  check string_t "q6" "Data on the Web: Abiteboul, Buneman, et al." (run q)

(* Q7: titles and prices sorted by price descending. *)
let test_q7 () =
  let q =
    {|string-join(
       for $b in bib/book
       order by number($b/price) descending, string($b/title)
       return string($b/title), ' << ')|}
  in
  check string_t "q7"
    "The Economics of Technology and Content for Digital TV << \
     Advanced Programming in the Unix environment << TCP/IP Illustrated << Data on the Web"
    (run q)

(* Q8: books mentioning a keyword anywhere (full-text-ish via contains). *)
let test_q8 () =
  let q =
    {|string-join(
       for $b in bib/book
       where some $t in $b//text() satisfies contains(string($t), "Unix")
       return string($b/title), ', ')|}
  in
  check string_t "q8" "Advanced Programming in the Unix environment" (run q)

(* Q9: structural transformation — swap element shapes. *)
let test_q9 () =
  let q =
    {|<pricelist>{
       for $b in bib/book
       order by number($b/price)
       return <item title="{$b/title}" usd="{$b/price}"/>
     }</pricelist>|}
  in
  check string_t "q9"
    "<pricelist><item title=\"Data on the Web\" usd=\"39.95\"/>\
     <item title=\"TCP/IP Illustrated\" usd=\"65.95\"/>\
     <item title=\"Advanced Programming in the Unix environment\" usd=\"65.95\"/>\
     <item title=\"The Economics of Technology and Content for Digital TV\" usd=\"129.95\"/></pricelist>"
    (flat (run q))

(* Q10: books without authors (editors only). *)
let test_q10 () =
  let q =
    {|string-join(
       for $b in bib/book where empty($b/author)
       return concat(string($b/title), ' [ed. ', string($b/editor/last), ']'), '')|}
  in
  check string_t "q10"
    "The Economics of Technology and Content for Digital TV [ed. Gerbarg]" (run q)

(* Q11: min/max/avg aggregates. *)
let test_q11 () =
  check string_t "max price" "129.95" (run "string(max(bib/book/price))");
  check string_t "min price" "39.95" (run "string(min(bib/book/price))");
  check string_t "avg price" "75.45"
    (run "string(avg(for $p in bib/book/price return number($p)))");
  check string_t "count" "4" (run "string(count(bib/book))")

(* Q12: a user-defined function over the data (depth of a tree), in the
   use-cases' "parts explosion" spirit. *)
let test_q12 () =
  let q =
    {|declare function local:depth($n) {
        if (empty($n/*)) then 1
        else 1 + max(for $k in $n/* return local:depth($k))
      };
      local:depth((bib)[1])|}
  in
  check string_t "q12 depth" "4" (run q)

let suite =
  [
    ( "use-cases.xmp",
      [
        Alcotest.test_case "q1 selection + construction" `Quick test_q1;
        Alcotest.test_case "q2 flattened pairs" `Quick test_q2;
        Alcotest.test_case "q3 grouped counts" `Quick test_q3;
        Alcotest.test_case "q4 group by author" `Quick test_q4;
        Alcotest.test_case "q5 two-document join" `Quick test_q5;
        Alcotest.test_case "q6 et-al truncation" `Quick test_q6;
        Alcotest.test_case "q7 ordered listing" `Quick test_q7;
        Alcotest.test_case "q8 keyword search" `Quick test_q8;
        Alcotest.test_case "q9 structural transform" `Quick test_q9;
        Alcotest.test_case "q10 negative selection" `Quick test_q10;
        Alcotest.test_case "q11 aggregates" `Quick test_q11;
        Alcotest.test_case "q12 recursive function" `Quick test_q12;
      ] );
  ]
