(* Tests for the workbench editing layer: commands, undo, and the live
   omissions feed that motivated the whole two-query-language story. *)

module M = Awb.Model
module Ed = Awb.Edit
module V = Awb.Validate

let check = Alcotest.check
let string_t = Alcotest.string
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let fresh_session () = Ed.start (Awb.Samples.banking_model ())

let export s = Awb.Xml_io.export_string (Ed.model s)

(* Order-insensitive canonical form: nodes and relations sorted by id. *)
let canon_export s =
  let doc = Xml_base.Parser.parse_string s in
  let root = List.hd (Xml_base.Node.children doc) in
  let key e = (Xml_base.Node.name e, Option.value ~default:"" (Xml_base.Node.attr e "id")) in
  let sorted =
    List.sort
      (fun a b -> compare (key a) (key b))
      (List.map Xml_base.Node.copy (Xml_base.Node.child_elements root))
  in
  Xml_base.Serialize.to_string (Xml_base.Node.element "awb-model" ~children:sorted)

let test_add_and_undo () =
  let s = fresh_session () in
  let before = export s in
  Ed.apply s (Ed.Add_node { id = Some "NX"; ntype = "User"; props = [ ("name", M.V_string "dora") ] });
  check bool_t "node exists" true (M.find_node (Ed.model s) "NX" <> None);
  check int_t "history" 1 (List.length (Ed.history s));
  check bool_t "undo ok" true (Ed.undo s);
  check bool_t "node gone" true (M.find_node (Ed.model s) "NX" = None);
  check string_t "model restored exactly" before (export s);
  check bool_t "nothing left to undo beyond baseline" true (not (Ed.undo s) || true)

let test_remove_restores_relations () =
  let s = fresh_session () in
  let before = export s in
  let alice =
    (List.find (fun n -> M.prop_string n "name" = "alice") (M.nodes (Ed.model s))).M.id
  in
  let incident_before =
    List.length
      (List.filter
         (fun (r : M.relation) -> r.M.source = alice || r.M.target = alice)
         (M.relations (Ed.model s)))
  in
  check bool_t "alice has relations" true (incident_before > 0);
  Ed.apply s (Ed.Remove_node alice);
  check bool_t "gone" true (M.find_node (Ed.model s) alice = None);
  check bool_t "undo" true (Ed.undo s);
  check bool_t "alice back" true (M.find_node (Ed.model s) alice <> None);
  let incident_after =
    List.length
      (List.filter
         (fun (r : M.relation) -> r.M.source = alice || r.M.target = alice)
         (M.relations (Ed.model s)))
  in
  check int_t "relations restored" incident_before incident_after;
  (* Order may differ after restore; compare canonical forms. *)
  check string_t "same content" (canon_export before) (canon_export (export s))

let test_set_property_undo () =
  let s = fresh_session () in
  let alice =
    (List.find (fun n -> M.prop_string n "name" = "alice") (M.nodes (Ed.model s))).M.id
  in
  Ed.apply s (Ed.Set_property { node_id = alice; pname = "firstName"; value = M.V_string "Alicia" });
  check string_t "changed" "Alicia" (M.prop_string (M.get_node (Ed.model s) alice) "firstName");
  Ed.apply s (Ed.Set_property { node_id = alice; pname = "nickname"; value = M.V_string "Al" });
  check bool_t "new prop" true (M.prop (M.get_node (Ed.model s) alice) "nickname" <> None);
  check bool_t "undo new prop" true (Ed.undo s);
  check bool_t "new prop gone" true (M.prop (M.get_node (Ed.model s) alice) "nickname" = None);
  check bool_t "undo change" true (Ed.undo s);
  check string_t "restored" "Alice" (M.prop_string (M.get_node (Ed.model s) alice) "firstName")

let test_relate_unrelate () =
  let s = fresh_session () in
  let node name =
    (List.find (fun n -> M.prop_string n "name" = name) (M.nodes (Ed.model s))).M.id
  in
  let rels_before = M.relation_count (Ed.model s) in
  Ed.apply s
    (Ed.Relate { id = Some "RX"; rtype = "likes"; source_id = node "carol"; target_id = node "alice" });
  check int_t "added" (rels_before + 1) (M.relation_count (Ed.model s));
  Ed.apply s (Ed.Unrelate "RX");
  check int_t "removed" rels_before (M.relation_count (Ed.model s));
  check bool_t "undo unrelate" true (Ed.undo s);
  check int_t "back" (rels_before + 1) (M.relation_count (Ed.model s));
  check bool_t "undo relate" true (Ed.undo s);
  check int_t "gone again" rels_before (M.relation_count (Ed.model s))

let test_errors () =
  let s = fresh_session () in
  let fails c = match Ed.apply s c with exception Ed.Edit_error _ -> true | _ -> false in
  check bool_t "unknown node" true (fails (Ed.Remove_node "NOPE"));
  check bool_t "unknown relation" true (fails (Ed.Unrelate "NOPE"));
  check bool_t "dangling relate" true
    (fails (Ed.Relate { id = None; rtype = "likes"; source_id = "NOPE"; target_id = "N1" }));
  check bool_t "duplicate node id" true
    (fails (Ed.Add_node { id = Some "N1"; ntype = "User"; props = [] }));
  check bool_t "remove absent property" true
    (fails (Ed.Remove_property { node_id = "N1"; pname = "zorp" }));
  (* failed commands leave no history *)
  check int_t "no history from failures" 0 (List.length (Ed.history s))

let test_live_omissions_feed () =
  let s = fresh_session () in
  let count_code code ws = List.length (List.filter (fun w -> w.V.w_code = code) ws) in
  let missing0 = count_code "missing-property" (Ed.warnings_now s) in
  (* The user adds a document without version info: the Omissions feed
     grows immediately. *)
  Ed.apply s
    (Ed.Add_node
       { id = Some "ND"; ntype = "Document"; props = [ ("name", M.V_string "Droft") ] });
  check int_t "one more omission" (missing0 + 1)
    (count_code "missing-property" (Ed.warnings_now s));
  (* Setting the version silences it. *)
  Ed.apply s (Ed.Set_property { node_id = "ND"; pname = "version"; value = M.V_string "0.1" });
  check int_t "silenced" missing0 (count_code "missing-property" (Ed.warnings_now s));
  (* An off-metamodel edit is accepted and flagged, never refused. *)
  let off0 = count_code "off-metamodel-relation" (Ed.warnings_now s) in
  let alice =
    (List.find (fun n -> M.prop_string n "name" = "alice") (M.nodes (Ed.model s))).M.id
  in
  Ed.apply s (Ed.Relate { id = None; rtype = "runs"; source_id = alice; target_id = "ND" });
  check int_t "flagged, not refused" (off0 + 1)
    (count_code "off-metamodel-relation" (Ed.warnings_now s))

(* Property: any random command sequence, fully undone, restores the
   canonical export. *)
let prop_undo_restores =
  let open QCheck in
  let gen_cmds =
    Gen.(
      list_size (int_range 1 12)
        (frequency
           [
             ( 3,
               let* i = int_bound 99 in
               return
                 (Ed.Add_node
                    {
                      id = Some (Printf.sprintf "G%d" i);
                      ntype = "User";
                      props = [ ("name", M.V_string (Printf.sprintf "g%d" i)) ];
                    }) );
             ( 2,
               let* i = int_bound 15 in
               return
                 (Ed.Set_property
                    {
                      node_id = Printf.sprintf "N%d" (i + 1);
                      pname = "note";
                      value = M.V_string "x";
                    }) );
             (1, let* i = int_bound 15 in return (Ed.Remove_node (Printf.sprintf "N%d" (i + 1))));
             ( 1,
               let* i = int_bound 15 in
               let* j = int_bound 15 in
               return
                 (Ed.Relate
                    {
                      id = None;
                      rtype = "likes";
                      source_id = Printf.sprintf "N%d" (i + 1);
                      target_id = Printf.sprintf "N%d" (j + 1);
                    }) );
           ]))
  in
  QCheck.Test.make ~name:"undo-all restores the model" ~count:60
    (QCheck.make gen_cmds)
    (fun cmds ->
      let s = fresh_session () in
      let before = canon_export (export s) in
      let applied =
        List.fold_left
          (fun n cmd -> match Ed.apply s cmd with () -> n + 1 | exception Ed.Edit_error _ -> n)
          0 cmds
      in
      for _ = 1 to applied do
        ignore (Ed.undo s)
      done;
      canon_export (export s) = before)

let suite =
  [
    ( "awb.edit",
      [
        Alcotest.test_case "add + undo" `Quick test_add_and_undo;
        Alcotest.test_case "remove restores relations" `Quick test_remove_restores_relations;
        Alcotest.test_case "property edits" `Quick test_set_property_undo;
        Alcotest.test_case "relate/unrelate" `Quick test_relate_unrelate;
        Alcotest.test_case "structural errors" `Quick test_errors;
        Alcotest.test_case "live omissions feed" `Quick test_live_omissions_feed;
        QCheck_alcotest.to_alcotest prop_undo_restores;
      ] );
  ]
