test/test_xquery.ml: Alcotest Gen List Printf QCheck QCheck_alcotest String Xml_base Xquery
