test/test_golden.ml: Alcotest Astring Awb Docgen Xml_base
