test/test_xslt.ml: Alcotest Astring Awb Docgen List Printf QCheck QCheck_alcotest String Xml_base Xslt
