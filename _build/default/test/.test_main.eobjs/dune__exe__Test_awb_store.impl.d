test/test_awb_store.ml: Alcotest Array Astring Awb Filename Fun List Printf Random Sys Unix Xml_base
