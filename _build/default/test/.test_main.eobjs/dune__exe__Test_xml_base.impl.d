test/test_xml_base.ml: Alcotest Astring List QCheck QCheck_alcotest String Xml_base
