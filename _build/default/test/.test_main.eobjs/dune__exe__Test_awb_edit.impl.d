test/test_awb_edit.ml: Alcotest Awb Gen List Option Printf QCheck QCheck_alcotest Xml_base
