test/test_awb_query.ml: Alcotest Astring Awb Awb_query List Printf Xml_base
