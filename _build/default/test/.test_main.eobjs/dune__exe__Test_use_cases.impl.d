test/test_use_cases.ml: Alcotest String Xml_base Xquery
