test/test_docgen_random.ml: Awb Docgen List QCheck QCheck_alcotest Xml_base
