test/test_docgen.ml: Alcotest Astring Awb Docgen List Printf Str Xml_base
