test/test_awb.ml: Alcotest Astring Awb Awb_query Docgen List Option QCheck QCheck_alcotest Xml_base
