test/test_paper_tables.ml: Alcotest Astring Buffer List Printf Xquery
