test/test_xquery_extra.ml: Alcotest Astring List Printf QCheck QCheck_alcotest String Xml_base Xquery
