test/test_xqlib.ml: Alcotest Char Float Gen List Printf QCheck QCheck_alcotest String Xqlib Xquery
