(* awbq — run AWB query-calculus queries against a model.

   Examples:
     dune exec bin/awbq.exe -- -q 'start type(User); sort-by label' --sample banking
     dune exec bin/awbq.exe -- -q '...' --model model.xml --backend xquery
     dune exec bin/awbq.exe -- -q '...' --sample banking --compile   # show the XQuery *)

open Cmdliner

let load_model sample model_file synth_size =
  match (sample, model_file, synth_size) with
  | Some "banking", None, None -> Ok (Awb.Samples.banking_model ())
  | Some "glass", None, None -> Ok (Awb.Samples.glass_model ())
  | Some other, None, None -> Error (Printf.sprintf "unknown sample %S (banking|glass)" other)
  | None, Some path, None -> (
    try Ok (Awb.Xml_io.import Awb.Samples.it_architecture (Xml_base.Parser.parse_file path))
    with Failure m | Sys_error m -> Error m)
  | None, None, Some n -> Ok (Awb.Synth.generate_of_size n)
  | None, None, None -> Ok (Awb.Samples.banking_model ())
  | _ -> Error "choose one of --sample, --model, --synth"

let run query sample model_file synth_size backend compile_only =
  match load_model sample model_file synth_size with
  | Error m ->
    prerr_endline ("awbq: " ^ m);
    1
  | Ok model -> (
    match Awb_query.Parser.parse query with
    | exception Awb_query.Parser.Parse_error m ->
      prerr_endline ("awbq: " ^ m);
      1
    | parsed ->
      if compile_only then begin
        print_endline (Awb_query.To_xquery.compile (Awb.Model.metamodel model) parsed);
        0
      end
      else begin
        let results =
          match backend with
          | "native" -> Awb_query.Native.eval model parsed
          | "xquery" -> Awb_query.To_xquery.eval model parsed
          | other ->
            prerr_endline (Printf.sprintf "awbq: unknown backend %S" other);
            exit 1
        in
        Printf.printf "%d result(s)\n" (List.length results);
        List.iter
          (fun (n : Awb.Model.node) ->
            Printf.printf "  %-8s %-24s %s\n" n.Awb.Model.id n.Awb.Model.ntype
              (Awb.Model.label model n))
          results;
        0
      end)

let query =
  Arg.(
    required & opt (some string) None & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Calculus text.")

let sample =
  Arg.(value & opt (some string) None & info [ "sample" ] ~docv:"NAME" ~doc:"banking or glass.")

let model_file =
  Arg.(value & opt (some file) None & info [ "model" ] ~docv:"XML" ~doc:"awb-model export.")

let synth_size =
  Arg.(value & opt (some int) None & info [ "synth" ] ~docv:"N" ~doc:"Synthetic model of ~N nodes.")

let backend =
  Arg.(value & opt string "native" & info [ "backend" ] ~docv:"B" ~doc:"native or xquery.")

let compile_only =
  Arg.(value & flag & info [ "compile" ] ~doc:"Print the compiled XQuery and exit.")

let cmd =
  let doc = "run AWB query-calculus queries" in
  Cmd.v
    (Cmd.info "awbq" ~doc)
    Term.(const run $ query $ sample $ model_file $ synth_size $ backend $ compile_only)

let () = exit (Cmd.eval' cmd)
