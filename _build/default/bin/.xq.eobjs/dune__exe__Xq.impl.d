bin/xq.ml: Arg Cmd Cmdliner List Printf Term Xml_base Xquery
