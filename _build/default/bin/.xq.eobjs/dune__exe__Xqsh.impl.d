bin/xqsh.ml: List Printf String Unix Xml_base Xquery
