bin/awbdoc.ml: Arg Awb Cmd Cmdliner Docgen List Printf Term Xml_base
