bin/xsltproc.ml: Arg Cmd Cmdliner List Printf Term Xml_base Xslt
