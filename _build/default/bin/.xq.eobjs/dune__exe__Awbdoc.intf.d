bin/awbdoc.mli:
