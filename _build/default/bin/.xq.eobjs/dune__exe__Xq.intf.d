bin/xq.mli:
