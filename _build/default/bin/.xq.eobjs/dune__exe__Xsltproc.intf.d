bin/xsltproc.mli:
