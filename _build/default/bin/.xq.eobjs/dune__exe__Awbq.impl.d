bin/awbq.ml: Arg Awb Awb_query Cmd Cmdliner List Printf Term Xml_base
