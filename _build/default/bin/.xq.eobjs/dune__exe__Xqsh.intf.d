bin/xqsh.mli:
