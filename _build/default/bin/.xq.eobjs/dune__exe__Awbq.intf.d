bin/awbq.mli:
