(* xsltproc — apply an XSLT-lite stylesheet to an XML document.

   Example:
     dune exec bin/xsltproc.exe -- --stylesheet split.xsl --input streams.xml *)

open Cmdliner

let run stylesheet_file input_file pretty =
  match
    ( Xml_base.Parser.parse_file stylesheet_file,
      Xml_base.Parser.parse_file input_file )
  with
  | exception Xml_base.Parser.Parse_error { line; col; message } ->
    Printf.eprintf "xsltproc: line %d col %d: %s\n" line col message;
    1
  | exception Sys_error m ->
    prerr_endline ("xsltproc: " ^ m);
    1
  | sheet_doc, source -> (
    match Xslt.compile sheet_doc with
    | exception Xslt.Error m ->
      prerr_endline ("xsltproc: stylesheet: " ^ m);
      1
    | sheet -> (
      match Xslt.apply sheet source with
      | exception Xslt.Error m ->
        prerr_endline ("xsltproc: " ^ m);
        2
      | results ->
        List.iter
          (fun n ->
            print_endline
              (if pretty then Xml_base.Serialize.to_pretty_string n
               else Xml_base.Serialize.to_string n))
          results;
        0))

let stylesheet_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "s"; "stylesheet" ] ~docv:"XSL" ~doc:"Stylesheet file.")

let input_file =
  Arg.(required & opt (some file) None & info [ "i"; "input" ] ~docv:"XML" ~doc:"Source document.")

let pretty = Arg.(value & flag & info [ "pretty" ] ~doc:"Indent the output.")

let cmd =
  let doc = "apply XSLT-lite stylesheets" in
  Cmd.v (Cmd.info "xsltproc" ~doc) Term.(const run $ stylesheet_file $ input_file $ pretty)

let () = exit (Cmd.eval' cmd)
